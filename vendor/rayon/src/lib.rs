//! Vendored minimal stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate, providing the parallel-iterator surface the CLIMBER workspace
//! uses: `par_iter().map().collect()`, `par_iter().for_each()`,
//! `into_par_iter()` over vectors and ranges, `chunks`, `par_chunks`,
//! [`ThreadPool`] / [`ThreadPoolBuilder`] with `install`,
//! [`current_num_threads`], and the fork-join [`scope`] / [`Scope::spawn`]
//! work-queue used by the batched query executor.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it needs. Unlike a toy sequential
//! shim, this implementation genuinely fans work out across OS threads
//! (`std::thread::scope`), splitting inputs into contiguous blocks — one
//! per worker — and reassembling results in input order, so the
//! determinism guarantees the callers rely on hold for any worker count.
//!
//! One uniform divergence from real rayon: live workers are capped at
//! the hardware thread count everywhere (parallel
//! iterators and [`scope`] alike). Real rayon spawns exactly the
//! requested thread count; this shim spawns a fresh set of scoped OS
//! threads per operation instead of keeping a pool, so over-subscription
//! would pay spawn cost for threads that cannot run concurrently.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;

thread_local! {
    /// Worker count installed by the innermost active [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will use on this thread:
/// the installed pool's size, or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Worker threads an operation will actually spawn: the ambient
/// [`current_num_threads`], capped at the hardware thread count (see the
/// module docs for why the shim caps over-subscribed requests).
fn max_workers() -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    current_num_threads().min(hardware).max(1)
}

/// Error building a [`ThreadPool`] (never produced by this shim; kept for
/// API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped worker-count context: operations run inside
/// [`ThreadPool::install`] split work across this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed as the ambient
    /// parallelism for the duration of the call.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 means "use available parallelism").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A task spawned into a [`Scope`]: it receives the scope again so it can
/// spawn further tasks (fork-join), exactly like `rayon::Scope::spawn`.
type ScopeTask<'env> = Box<dyn FnOnce(&Scope<'env>) + Send + 'env>;

/// Queue + in-flight accounting behind the scope's mutex.
struct ScopeState<'env> {
    queue: VecDeque<ScopeTask<'env>>,
    /// Tasks spawned but not yet completed (queued + running).
    pending: usize,
}

/// A fork-join scope distributing spawned tasks over a shared work queue
/// (the `rayon::scope` API).
///
/// Unlike the block-splitting parallel iterators below, tasks are pulled
/// from one queue by all workers, so skewed task costs balance naturally —
/// the right shape for fanning *partitions* of very different sizes out
/// across threads. Idle workers sleep on a condvar rather than spinning,
/// so over-subscribing threads beyond the core count stays cheap.
pub struct Scope<'env> {
    state: Mutex<ScopeState<'env>>,
    idle: std::sync::Condvar,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pending = self.state.lock().map(|s| s.pending).unwrap_or(0);
        f.debug_struct("Scope").field("pending", &pending).finish()
    }
}

impl<'env> Scope<'env> {
    /// Spawns a task into the scope. The task may borrow anything that
    /// outlives the [`scope`] call and may itself spawn further tasks.
    pub fn spawn(&self, body: impl FnOnce(&Scope<'env>) + Send + 'env) {
        let mut state = self.state.lock().unwrap();
        state.pending += 1;
        state.queue.push_back(Box::new(body));
        drop(state);
        self.idle.notify_one();
    }

    /// Marks one task complete, waking sleepers when the scope drains.
    /// Runs from a drop guard so a panicking task cannot strand workers.
    fn complete_one(&self) {
        let mut state = self.state.lock().unwrap();
        state.pending -= 1;
        if state.pending == 0 {
            drop(state);
            self.idle.notify_all();
        }
    }

    /// Worker loop: pop and run tasks until none are queued *and* none are
    /// still running (a running task may spawn more).
    fn work(&self) {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(task) = state.queue.pop_front() {
                drop(state);
                struct Done<'s, 'env>(&'s Scope<'env>);
                impl Drop for Done<'_, '_> {
                    fn drop(&mut self) {
                        self.0.complete_one();
                    }
                }
                let _done = Done(self);
                task(self);
                drop(_done);
                state = self.state.lock().unwrap();
            } else if state.pending == 0 {
                break;
            } else {
                state = self.idle.wait(state).unwrap();
            }
        }
    }
}

/// Creates a fork-join scope: `op` spawns tasks via [`Scope::spawn`], and
/// `scope` returns only after every spawned task (including nested spawns)
/// has completed. Tasks run on up to [`current_num_threads`] scoped OS
/// threads (never more threads than initially queued tasks).
///
/// Divergence from real rayon: spawned tasks start only after `op`
/// returns, instead of concurrently with it — callers in this workspace
/// use `op` purely to enqueue work, so the observable behaviour matches.
pub fn scope<'env, R>(op: impl FnOnce(&Scope<'env>) -> R) -> R {
    let s = Scope {
        state: Mutex::new(ScopeState {
            queue: VecDeque::new(),
            pending: 0,
        }),
        idle: std::sync::Condvar::new(),
    };
    let result = op(&s);
    let queued = s.state.lock().unwrap().pending;
    // Never more workers than queued tasks or hardware threads (see
    // max_workers): an over-subscribed request (install(8) on a 1-core
    // box) would only pay spawn cost for threads that can never run
    // concurrently.
    let workers = max_workers().clamp(1, queued.max(1));
    if workers <= 1 || queued <= 1 {
        s.work();
    } else {
        std::thread::scope(|ts| {
            for _ in 0..workers {
                ts.spawn(|| s.work());
            }
        });
    }
    result
}

/// Runs `task` over `threads` contiguous index blocks of `0..len` on scoped
/// OS threads, returning per-block outputs in block order.
fn run_blocks<R: Send>(len: usize, task: impl Fn(Range<usize>) -> R + Sync) -> Vec<R> {
    let threads = max_workers().clamp(1, len.max(1));
    let per = len.div_ceil(threads.max(1)).max(1);
    let blocks: Vec<Range<usize>> = (0..threads)
        .map(|t| (t * per).min(len)..((t + 1) * per).min(len))
        .filter(|r| !r.is_empty())
        .collect();
    if blocks.len() <= 1 {
        return blocks.into_iter().map(&task).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| {
                let task = &task;
                scope.spawn(move || task(block))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Parallel indexed map: applies `f` to every index of `0..len`, returning
/// outputs in index order.
fn par_map_indexed<R: Send>(len: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let mut out = Vec::with_capacity(len);
    for block in run_blocks(len, |range| range.map(&f).collect::<Vec<R>>()) {
        out.extend(block);
    }
    out
}

pub mod iter {
    //! The parallel-iterator types. Each pipeline the workspace uses gets a
    //! concrete eager type; all of them reduce to block-parallel execution
    //! with order-preserving reassembly.

    use super::{par_map_indexed, run_blocks};
    use std::ops::Range;

    /// Conversion of an owned collection into a parallel iterator.
    pub trait IntoParallelIterator {
        /// The parallel iterator produced.
        type Iter;

        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Conversion of a borrowed collection into a parallel iterator over
    /// references.
    pub trait IntoParallelRefIterator<'a> {
        /// The parallel iterator produced.
        type Iter;

        /// Converts `&self`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// `par_chunks` over slices.
    pub trait ParallelSlice<T: Sync> {
        /// A parallel iterator over contiguous chunks of length `size`
        /// (the last chunk may be shorter).
        fn par_chunks(&self, size: usize) -> ChunksIter<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> ChunksIter<'_, T> {
            assert!(size > 0, "chunk size must be positive");
            ChunksIter { data: self, size }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { data: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { data: self }
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { data: self }
        }
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = RangeIter;
        fn into_par_iter(self) -> RangeIter {
            RangeIter { range: self }
        }
    }

    /// Parallel iterator over `&[T]`.
    #[derive(Debug)]
    pub struct SliceIter<'a, T> {
        data: &'a [T],
    }

    impl<'a, T: Sync> SliceIter<'a, T> {
        /// Maps every element through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> SliceMap<'a, T, F>
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
        {
            SliceMap { data: self.data, f }
        }

        /// Applies `f` to every element in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a T) + Sync,
        {
            run_blocks(self.data.len(), |range| {
                for item in &self.data[range] {
                    f(item);
                }
            });
        }
    }

    /// Mapped parallel iterator over `&[T]`.
    #[derive(Debug)]
    pub struct SliceMap<'a, T, F> {
        data: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> SliceMap<'a, T, F> {
        /// Executes the pipeline and collects results in input order.
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
            C: FromIterator<R>,
        {
            let data = self.data;
            let f = &self.f;
            par_map_indexed(data.len(), |i| f(&data[i]))
                .into_iter()
                .collect()
        }
    }

    /// Parallel iterator over an owned `Vec<T>`.
    #[derive(Debug)]
    pub struct VecIter<T> {
        data: Vec<T>,
    }

    impl<T: Send> VecIter<T> {
        /// Maps every element through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> VecMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            VecMap { data: self.data, f }
        }
    }

    /// Mapped parallel iterator over an owned `Vec<T>`.
    #[derive(Debug)]
    pub struct VecMap<T, F> {
        data: Vec<T>,
        f: F,
    }

    impl<T: Send, F> VecMap<T, F> {
        /// Executes the pipeline and collects results in input order.
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(T) -> R + Sync,
            C: FromIterator<R>,
        {
            let len = self.data.len();
            let f = &self.f;
            // Moving items out of the vector from worker threads: wrap each
            // slot in an Option and take per index. To stay safe-only, the
            // vector is converted into per-block sub-vectors first.
            let mut blocks: Vec<Vec<T>> = Vec::new();
            {
                let threads = super::max_workers().clamp(1, len.max(1));
                let per = len.div_ceil(threads.max(1)).max(1);
                let mut rest = self.data;
                while rest.len() > per {
                    let tail = rest.split_off(per);
                    blocks.push(std::mem::replace(&mut rest, tail));
                }
                blocks.push(rest);
            }
            if blocks.len() <= 1 {
                return blocks.into_iter().flatten().map(f).collect();
            }
            let mapped: Vec<Vec<R>> = std::thread::scope(|scope| {
                let handles: Vec<_> = blocks
                    .into_iter()
                    .map(|block| scope.spawn(move || block.into_iter().map(f).collect::<Vec<R>>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("parallel worker panicked"))
                    .collect()
            });
            mapped.into_iter().flatten().collect()
        }
    }

    /// Parallel iterator over `Range<usize>`.
    #[derive(Debug)]
    pub struct RangeIter {
        range: Range<usize>,
    }

    impl RangeIter {
        /// Groups the range into `Vec<usize>` chunks of length `size`.
        pub fn chunks(self, size: usize) -> RangeChunks {
            assert!(size > 0, "chunk size must be positive");
            RangeChunks {
                range: self.range,
                size,
            }
        }

        /// Maps every index through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> RangeMap<F>
        where
            R: Send,
            F: Fn(usize) -> R + Sync,
        {
            RangeMap {
                range: self.range,
                f,
            }
        }
    }

    /// Mapped parallel iterator over a range of indices.
    #[derive(Debug)]
    pub struct RangeMap<F> {
        range: Range<usize>,
        f: F,
    }

    impl<F> RangeMap<F> {
        /// Executes the pipeline and collects results in index order.
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(usize) -> R + Sync,
            C: FromIterator<R>,
        {
            let start = self.range.start;
            let f = &self.f;
            par_map_indexed(self.range.len(), |i| f(start + i))
                .into_iter()
                .collect()
        }
    }

    /// Chunked parallel iterator over a range of indices.
    #[derive(Debug)]
    pub struct RangeChunks {
        range: Range<usize>,
        size: usize,
    }

    impl RangeChunks {
        /// Maps every chunk (a `Vec<usize>` of consecutive indices) through
        /// `f` in parallel.
        pub fn map<R, F>(self, f: F) -> RangeChunksMap<F>
        where
            R: Send,
            F: Fn(Vec<usize>) -> R + Sync,
        {
            RangeChunksMap {
                range: self.range,
                size: self.size,
                f,
            }
        }
    }

    /// Mapped chunked parallel iterator over a range of indices.
    #[derive(Debug)]
    pub struct RangeChunksMap<F> {
        range: Range<usize>,
        size: usize,
        f: F,
    }

    impl<F> RangeChunksMap<F> {
        /// Executes the pipeline and collects results in chunk order.
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(Vec<usize>) -> R + Sync,
            C: FromIterator<R>,
        {
            let Self { range, size, f } = self;
            let n_chunks = range.len().div_ceil(size);
            let f = &f;
            par_map_indexed(n_chunks, |c| {
                let lo = range.start + c * size;
                let hi = (lo + size).min(range.end);
                f((lo..hi).collect())
            })
            .into_iter()
            .collect()
        }
    }

    /// Parallel iterator over slice chunks.
    #[derive(Debug)]
    pub struct ChunksIter<'a, T> {
        data: &'a [T],
        size: usize,
    }

    impl<'a, T: Sync> ChunksIter<'a, T> {
        /// Maps every chunk through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ChunksMap<'a, T, F>
        where
            R: Send,
            F: Fn(&'a [T]) -> R + Sync,
        {
            ChunksMap {
                data: self.data,
                size: self.size,
                f,
            }
        }
    }

    /// Mapped parallel iterator over slice chunks.
    #[derive(Debug)]
    pub struct ChunksMap<'a, T, F> {
        data: &'a [T],
        size: usize,
        f: F,
    }

    impl<'a, T: Sync, F> ChunksMap<'a, T, F> {
        /// Executes the pipeline and collects results in chunk order.
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(&'a [T]) -> R + Sync,
            C: FromIterator<R>,
        {
            let chunks: Vec<&'a [T]> = self.data.chunks(self.size).collect();
            let f = &self.f;
            par_map_indexed(chunks.len(), |i| f(chunks[i]))
                .into_iter()
                .collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_into_par_map_preserves_order() {
        let v: Vec<String> = (0..5_000).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out[9], 1);
        assert_eq!(out[4999], 4);
        assert_eq!(out.len(), 5_000);
    }

    #[test]
    fn range_chunks_cover_everything() {
        let sums: Vec<usize> = (0..1000usize)
            .into_par_iter()
            .chunks(64)
            .map(|ids| ids.into_iter().sum::<usize>())
            .collect();
        assert_eq!(sums.iter().sum::<usize>(), 499_500);
        assert_eq!(sums.len(), 16);
    }

    #[test]
    fn par_chunks_matches_serial() {
        let data: Vec<i64> = (0..777).collect();
        let par: Vec<i64> = data.par_chunks(50).map(|c| c.iter().sum()).collect();
        let ser: Vec<i64> = data.chunks(50).map(|c| c.iter().sum()).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        crate::scope(|s| {
            for i in 1..=100u64 {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(i, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn scope_supports_nested_spawns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..8 {
                let count = &count;
                s.spawn(move |inner| {
                    count.fetch_add(1, Ordering::SeqCst);
                    for _ in 0..3 {
                        inner.spawn(move |_| {
                            count.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 8 + 8 * 3);
    }

    #[test]
    fn scope_respects_installed_pool_and_returns_op_result() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let out = pool.install(|| {
            crate::scope(|s| {
                s.spawn(|_| {});
                21 * 2
            })
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn for_each_visits_every_element() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let v: Vec<u64> = (0..2_000).collect();
        let sum = AtomicU64::new(0);
        v.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1_999_000);
    }

    #[test]
    fn pool_install_sets_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(super::current_num_threads), 3);
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let out2: Vec<usize> = (0..0usize).into_par_iter().map(|x| x).collect();
        assert!(out2.is_empty());
    }
}
