//! Vendored minimal stand-in for the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate: poison-free
//! `RwLock` and `Mutex` built on `std::sync`, exposing the panic-free
//! `read()` / `write()` / `lock()` API the workspace relies on.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it needs.

/// A reader-writer lock whose guards are acquired without a `Result`
/// (a poisoned std lock is recovered transparently, matching
/// `parking_lot`'s no-poisoning semantics).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose guard is acquired without a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
