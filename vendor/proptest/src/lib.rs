//! Vendored minimal stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, providing the
//! surface the CLIMBER property-test suites use: the [`proptest!`] macro,
//! `prop_assert!` / `prop_assert_eq!`, range and tuple strategies,
//! `any::<T>()`, `Just`, `prop_map` / `prop_perturb`, and the
//! `prop::collection::{vec, hash_set, btree_map}` constructors.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it needs. Shrinking is not
//! implemented: a failing case reports its values (via the assertion
//! message) and the deterministic case number so it can be replayed. Case
//! generation is fully deterministic per test (seeded from the test's
//! module path), so failures are reproducible run to run.

pub mod test_runner {
    //! Test execution state: configuration, RNG, and failure plumbing.

    /// Deterministic RNG handed to strategies (xoshiro256++, like the
    //  workspace's vendored `rand`, but independent of it).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator for one test case, derived from a per-test seed and
        /// the case index.
        pub fn for_case(test_seed: u64, case: u32) -> Self {
            let mut sm = test_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// The next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)` (`bound` must be positive).
        pub fn next_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// RNG algorithm selector (API compatibility; this shim always uses
    /// its own deterministic generator).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RngAlgorithm {
        /// The default algorithm of the real crate.
        ChaCha,
        /// Pass-through/recorded entropy (unused here).
        PassThrough,
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// The case count a run actually uses: the `PROPTEST_CASES`
        /// environment variable (the real crate's global override, which
        /// CI lanes pin for reproducible wall time) when set and
        /// parseable, otherwise this config's `cases`.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Result of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// FNV-1a hash of a test's identifying string — the per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Transforms generated values through `f`, which additionally
        /// receives a fresh RNG.
        fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> O,
        {
            Perturb { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_perturb`].
    #[derive(Debug, Clone)]
    pub struct Perturb<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Perturb<S, F>
    where
        S: Strategy,
        F: Fn(S::Value, TestRng) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            let value = self.inner.generate(rng);
            let fork = TestRng::for_case(rng.next_u64(), 0);
            (self.f)(value, fork)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.next_below(span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.next_unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
    impl_tuple_strategy!(A, B, C, D, E, G, H);
    impl_tuple_strategy!(A, B, C, D, E, G, H, I);
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy of a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy of `T` (full domain for integers/bool).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec`, `hash_set`, `btree_map`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, HashSet};
    use std::hash::Hash;
    use std::ops::Range;

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                self.lo
            } else {
                self.lo + rng.next_below((self.hi - self.lo) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    /// Gives up growing (returning a smaller set) if the element domain is
    /// exhausted, after a bounded number of attempts.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with a size drawn from
    /// `size` (duplicate keys collapse, so the map may come out smaller).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Output of [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! The `prop::` module alias used by `prop::collection::…` paths.
        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with a formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, …)`
/// item becomes a regular test that runs the body over `cases` generated
/// inputs (deterministically seeded per test).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let strategies = ($($strategy,)*);
                let cases = config.resolved_cases();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                    #[allow(unused_variables)]
                    let ($($arg,)*) = strategies.generate(&mut rng);
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_collections_generate_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..200 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
        let vs = prop::collection::vec(0u64..5, 7usize).generate(&mut rng);
        assert_eq!(vs.len(), 7);
        let hs = prop::collection::hash_set(0u16..40, 10usize).generate(&mut rng);
        assert_eq!(hs.len(), 10);
        let bm = prop::collection::btree_map(0u64..50, 0u8..3, 0usize..6).generate(&mut rng);
        assert!(bm.len() < 6);
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..1000, 5usize..20);
        let a = strat.generate(&mut TestRng::for_case(9, 3));
        let b = strat.generate(&mut TestRng::for_case(9, 3));
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u64..100, v in prop::collection::vec(0u8..10, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn macro_with_config(pair in (any::<u8>(), 1usize..4)) {
            let (_byte, n) = pair;
            prop_assert!((1..4).contains(&n), "n={n}");
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "failed at case")]
        fn failing_property_panics_with_case_number(x in 0u64..10) {
            prop_assert!(x > 100);
        }
    }
}
