//! Vendored minimal stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! providing the surface the CLIMBER bench targets use: [`Criterion`],
//! [`BenchmarkGroup`], `Bencher::{iter, iter_batched}`, [`BatchSize`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it needs. Measurement is honest
//! but simple: each benchmark is warmed up, then timed over enough
//! iterations to fill a wall-clock budget, and the per-iteration mean,
//! minimum and sample count are printed. No HTML reports or statistical
//! regression analysis.
//!
//! Command-line flags understood (everything else is ignored for
//! compatibility with `cargo bench` and the real harness):
//!
//! * `--quick` — shrink warm-up and measurement budgets ~50×, for CI smoke
//!   lanes that only need to prove the benchmark executes;
//! * any bare (non-flag) argument — a substring filter on benchmark names.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost (API compatibility; this shim
/// re-runs setup per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    warm_up: Duration,
    budget: Duration,
    min_samples: u64,
}

impl Settings {
    fn standard() -> Self {
        Self {
            warm_up: Duration::from_millis(60),
            budget: Duration::from_millis(300),
            min_samples: 10,
        }
    }

    fn quick() -> Self {
        Self {
            warm_up: Duration::from_millis(1),
            budget: Duration::from_millis(5),
            min_samples: 1,
        }
    }
}

/// The benchmark driver: owns CLI-derived configuration and runs
/// registered benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    settings: Settings,
    filter: Option<String>,
    ran: u64,
    skipped: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            settings: Settings::standard(),
            filter: None,
            ran: 0,
            skipped: 0,
        }
    }
}

impl Criterion {
    /// Applies `cargo bench`-style command-line arguments (`--quick`,
    /// name filters); unknown flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => self.settings = Settings::quick(),
                a if a.starts_with('-') => {} // ignore harness flags
                a => self.filter = Some(a.to_string()),
            }
        }
        self
    }

    /// Opens a named group; benchmarks inside it are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Registers and runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, None, f);
        self
    }

    fn run_one(&mut self, name: &str, sample_size: Option<usize>, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                self.skipped += 1;
                return;
            }
        }
        let mut settings = self.settings.clone();
        if let Some(n) = sample_size {
            settings.min_samples = (n as u64).max(1);
        }
        let mut bencher = Bencher {
            settings,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.ran += 1;
        report(name, &bencher.samples);
    }

    /// Prints a one-line summary; called by [`criterion_main!`].
    pub fn final_summary(&self) {
        eprintln!(
            "criterion(shim): {} benchmark(s) run, {} filtered out",
            self.ran, self.skipped
        );
    }
}

/// Prints the measurement line for one benchmark.
fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        eprintln!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    eprintln!(
        "{name:<40} time: [mean {} min {}] ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Registers and runs one benchmark in this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, f);
        self
    }

    /// Closes the group (reporting is live, so this is a no-op).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, calling it repeatedly until the measurement budget
    /// is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget is spent, counting calls
        // to size the measured batches.
        let warm_start = Instant::now();
        let mut warm_calls: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up || warm_calls == 0 {
            std::hint::black_box(routine());
            warm_calls += 1;
            if warm_calls >= 1_000_000 {
                break;
            }
        }
        let per_call = warm_start.elapsed() / warm_calls.max(1) as u32;
        // Aim for ~min_samples samples inside the budget; each sample is a
        // batch of `batch` calls.
        let budget = self.settings.budget;
        let target_sample = budget / (self.settings.min_samples.max(1) as u32);
        let batch = if per_call.is_zero() {
            1_000
        } else {
            (target_sample.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let run_start = Instant::now();
        while run_start.elapsed() < budget
            || (self.samples.len() as u64) < self.settings.min_samples
        {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
            if self.samples.len() >= 1_000_000 {
                break;
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // One warm-up call.
        std::hint::black_box(routine(setup()));
        let budget = self.settings.budget;
        let run_start = Instant::now();
        while run_start.elapsed() < budget
            || (self.samples.len() as u64) < self.settings.min_samples
        {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
            if self.samples.len() >= 1_000_000 {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into a runnable group function, mirroring
/// the real crate's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_criterion() -> Criterion {
        Criterion {
            settings: Settings::quick(),
            ..Criterion::default()
        }
    }

    #[test]
    fn iter_collects_samples() {
        let mut c = quick_criterion();
        c.bench_function("trivial_add", |b| {
            b.iter(|| std::hint::black_box(1u64) + std::hint::black_box(2u64))
        });
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn groups_prefix_names_and_filter_applies() {
        let mut c = quick_criterion();
        c.filter = Some("match_me".to_string());
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("match_me", |b| b.iter(|| 1 + 1));
            g.bench_function("not_this_one", |b| b.iter(|| 2 + 2));
            g.finish();
        }
        assert_eq!(c.ran, 1);
        assert_eq!(c.skipped, 1);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = quick_criterion();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.into_iter().map(u64::from).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(c.ran, 1);
    }
}
