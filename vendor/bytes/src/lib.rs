//! Vendored minimal stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, providing exactly the surface the CLIMBER workspace uses:
//! [`Bytes`] (cheaply cloneable, sliceable, immutable byte buffer),
//! [`BytesMut`] (growable builder) and the [`BufMut`] write trait.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it needs. Swap this for the real
//! crate by pointing `[workspace.dependencies] bytes` back at the registry.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning and slicing are
/// O(1) and share the same backing allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Wraps a static byte slice without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer sharing the same allocation.
    ///
    /// # Panics
    /// If the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds for Bytes of length {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Write-side trait: little-endian primitive appends onto a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes (mirrors `Vec::extend_from_slice`).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(7);
        b.put_u64_le(99);
        b.put_f32_le(1.5);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 16);
        assert_eq!(u32::from_le_bytes(frozen[0..4].try_into().unwrap()), 7);
        let tail = frozen.slice(4..16);
        assert_eq!(tail.len(), 12);
        assert_eq!(u64::from_le_bytes(tail[0..8].try_into().unwrap()), 99);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2, 3]).slice(0..4);
    }

    #[test]
    fn slice_of_slice_shares_data() {
        let b = Bytes::from((0u8..32).collect::<Vec<_>>());
        let mid = b.slice(8..24);
        let inner = mid.slice(4..8);
        assert_eq!(&inner[..], &[12, 13, 14, 15]);
    }
}
