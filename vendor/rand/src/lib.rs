//! Vendored minimal stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing the surface the CLIMBER workspace uses: a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), [`SeedableRng`],
//! the [`RngExt`] extension trait (`random`, `random_range`, `random_bool`)
//! and [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it needs. All generators are fully
//! deterministic for a given seed, which the test suite and benchmark
//! harness depend on.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the `Standard`/`StandardUniform` distribution of the real crate).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (the `SampleRange` of the real
/// crate, restricted to half-open and inclusive integer ranges).
pub trait SampleRange {
    /// Element type produced.
    type Output;

    /// Draws one value from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, span)` via 128-bit widening multiply with
/// rejection (Lemire's method): unbiased for every span.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = StandardSample::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A value drawn from the standard distribution of `T` (uniform
    /// `[0, 1)` for floats, uniform over all values for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded from a single `u64` via SplitMix64 (the reference seeding
    /// procedure recommended by the xoshiro authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence utilities.

    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }
}
