//! Batched query execution: serve a burst of queries partition-major and
//! compare its throughput (QPS) against the sequential per-query engine.
//!
//! ```sh
//! cargo run --release --example batch_search
//! ```

use climber_core::series::gen::{query_workload, Domain};
use climber_core::{BatchRequest, Climber, ClimberConfig};
use std::time::Instant;

fn main() {
    let n = 10_000;
    println!("generating {n} RandomWalk series ...");
    let data = Domain::RandomWalk.generate(n, 42);

    let config = ClimberConfig::default()
        .with_paa_segments(16)
        .with_pivots(200)
        .with_prefix_len(10)
        .with_capacity(500)
        .with_alpha(0.1)
        .with_max_centroids(10)
        .with_seed(7);
    let climber = Climber::build_in_memory(&data, config);

    // A burst of 128 queries, as a throughput-oriented service sees them.
    let (k, factor) = (100, 4);
    let qids = query_workload(&data, 128, 1);
    let queries: Vec<Vec<f32>> = qids.iter().map(|&q| data.get(q).to_vec()).collect();

    // Sequential: one query at a time, each decoding its own partitions.
    let t = Instant::now();
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| climber.knn_adaptive(q, k, factor))
        .collect();
    let seq_secs = t.elapsed().as_secs_f64();

    // Batched: the union of all plans, partition-major across threads.
    let t = Instant::now();
    let batch = climber.batch(&BatchRequest::adaptive(&queries, k, factor));
    let batch_secs = t.elapsed().as_secs_f64();

    // Same answers, down to the last bit and counter.
    assert_eq!(batch.outcomes, sequential, "batch must equal sequential");

    println!(
        "sequential: {:7.1} QPS  ({} queries in {:.3}s)",
        queries.len() as f64 / seq_secs,
        queries.len(),
        seq_secs
    );
    println!(
        "batched:    {:7.1} QPS  ({} queries in {:.3}s)  -> {:.2}x",
        queries.len() as f64 / batch_secs,
        queries.len(),
        batch_secs,
        seq_secs / batch_secs
    );
    println!(
        "sharing: {} records decoded once served {} per-query scans ({:.1}x reuse) across {} partition opens",
        batch.records_decoded,
        batch.records_scanned,
        batch.sharing_factor(),
        batch.partitions_opened
    );
}
