//! Genome subsequence matching: where does this motif-like fragment recur?
//!
//! The paper's DNA workload converts genome assemblies into 192-point
//! series. A biologist's question — "find the k archive subsequences most
//! similar to this fragment" — is an approximate kNN query. This example
//! also demonstrates the accuracy/cost dial the paper studies in
//! Figure 11(b): plain CLIMBER-kNN vs Adaptive-4X vs the OD-Smallest
//! whole-group scan, reporting recall *and* data accessed for each.
//!
//! ```sh
//! cargo run --release --example genome_motif
//! ```

use climber_core::series::gen::{query_workload, Domain};
use climber_core::series::ground_truth::exact_knn;
use climber_core::series::recall::recall_of_results;
use climber_core::{Climber, ClimberConfig};

fn main() {
    let n = 8_000;
    let k = 50;
    println!("indexing {n} genome subsequences (192 points each) ...\n");
    let archive = Domain::Dna.generate(n, 31);
    let climber = Climber::build_in_memory(
        &archive,
        ClimberConfig::default()
            .with_paa_segments(16)
            .with_pivots(200)
            .with_prefix_len(10)
            .with_capacity(400)
            .with_alpha(0.15)
            .with_max_centroids(8)
            .with_seed(13),
    );

    let queries = query_workload(&archive, 10, 9);
    println!(
        "{:<22} {:>8} {:>14} {:>12}",
        "algorithm", "recall", "records read", "partitions"
    );
    let mut rows: Vec<(&str, f64, f64, f64)> = Vec::new();
    for (name, factor) in [
        ("CLIMBER-kNN", 0usize),
        ("Adaptive-2X", 2),
        ("Adaptive-4X", 4),
    ] {
        let (mut r, mut recs, mut parts) = (0.0, 0.0, 0.0);
        for &qid in &queries {
            let out = if factor == 0 {
                climber.knn(archive.get(qid), k)
            } else {
                climber.knn_adaptive(archive.get(qid), k, factor)
            };
            let exact = exact_knn(&archive, archive.get(qid), k);
            r += recall_of_results(&out.results, &exact) / queries.len() as f64;
            recs += out.records_scanned as f64 / queries.len() as f64;
            parts += out.partitions_opened as f64 / queries.len() as f64;
        }
        rows.push((name, r, recs, parts));
    }
    {
        let (mut r, mut recs, mut parts) = (0.0, 0.0, 0.0);
        for &qid in &queries {
            let out = climber.od_smallest(archive.get(qid), k);
            let exact = exact_knn(&archive, archive.get(qid), k);
            r += recall_of_results(&out.results, &exact) / queries.len() as f64;
            recs += out.records_scanned as f64 / queries.len() as f64;
            parts += out.partitions_opened as f64 / queries.len() as f64;
        }
        rows.push(("OD-Smallest (scan)", r, recs, parts));
    }
    for (name, r, recs, parts) in &rows {
        println!("{name:<22} {r:>8.3} {recs:>14.0} {parts:>12.1}");
    }
    let knn = rows[0];
    let ods = rows[3];
    println!(
        "\nOD-Smallest reads {:.1}x the data of CLIMBER-kNN for {:+.1}% recall — \
         the trade-off Figure 11(b) reports.",
        ods.2 / knn.2.max(1.0),
        100.0 * (ods.1 - knn.1)
    );
}
