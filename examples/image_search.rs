//! Image feature search: CLIMBER vs the ANN alternatives on SIFT-like
//! descriptors (the TexMex workload of §VII).
//!
//! Vector search engines face the same trade-off triangle the paper maps:
//! exact engines (Odyssey-like) recall 1.0 but must hold everything in
//! memory; graphs (HNSW) recall ~0.9 but construct slowly and also live in
//! memory; LSH builds instantly but recalls ~0.3; CLIMBER sits between —
//! disk-resident, sampled construction, recall well above LSH. This
//! example measures all four on one corpus.
//!
//! ```sh
//! cargo run --release --example image_search
//! ```

use climber_core::baselines::hnsw::{HnswConfig, HnswIndex};
use climber_core::baselines::lsh::{LshConfig, LshIndex};
use climber_core::baselines::odyssey::{OdysseyConfig, OdysseyIndex};
use climber_core::series::gen::{query_workload, Domain};
use climber_core::series::ground_truth::exact_knn;
use climber_core::series::recall::recall_of_results;
use climber_core::{Climber, ClimberConfig};
use std::time::Instant;

fn main() {
    let n = 6_000;
    let k = 20;
    println!("generating {n} SIFT-like descriptors (128-d) ...\n");
    let corpus = Domain::TexMex.generate(n, 77);
    let queries = query_workload(&corpus, 12, 5);

    println!(
        "{:<16} {:>10} {:>10} {:>8}",
        "system", "build(s)", "query(ms)", "recall"
    );

    // CLIMBER (disk-class system, measured with in-memory store here).
    let t = Instant::now();
    let climber = Climber::build_in_memory(
        &corpus,
        ClimberConfig::default()
            .with_paa_segments(16)
            .with_pivots(200)
            .with_prefix_len(10)
            .with_capacity(300)
            .with_alpha(0.15)
            .with_max_centroids(10)
            .with_seed(5),
    );
    let build = t.elapsed().as_secs_f64();
    report("CLIMBER-4X", build, &queries, &corpus, k, |q| {
        climber.knn_adaptive(q, k, 4).results
    });

    // HNSW graph.
    let t = Instant::now();
    let (hnsw, _) = HnswIndex::build(&corpus, HnswConfig::default()).expect("fits in memory");
    let build = t.elapsed().as_secs_f64();
    report("HNSW", build, &queries, &corpus, k, |q| {
        hnsw.query(&corpus, q, k).results
    });

    // Odyssey-like exact in-memory engine.
    let t = Instant::now();
    let (ody, _) = OdysseyIndex::build(&corpus, OdysseyConfig::default()).expect("fits");
    let build = t.elapsed().as_secs_f64();
    report("Odyssey(exact)", build, &queries, &corpus, k, |q| {
        ody.query(&corpus, q, k).results
    });

    // ChainLink-like LSH.
    let t = Instant::now();
    let (lsh, _) = LshIndex::build(&corpus, LshConfig::default());
    let build = t.elapsed().as_secs_f64();
    report("LSH", build, &queries, &corpus, k, |q| {
        lsh.query(&corpus, q, k).results
    });
}

fn report<F>(
    name: &str,
    build_secs: f64,
    queries: &[u64],
    corpus: &climber_core::series::Dataset,
    k: usize,
    mut run: F,
) where
    F: FnMut(&[f32]) -> Vec<(u64, f64)>,
{
    let mut recall = 0.0;
    let t = Instant::now();
    for &qid in queries {
        let got = run(corpus.get(qid));
        let want = exact_knn(corpus, corpus.get(qid), k);
        recall += recall_of_results(&got, &want) / queries.len() as f64;
    }
    let ms = 1000.0 * t.elapsed().as_secs_f64() / queries.len() as f64;
    println!("{name:<16} {build_secs:>10.2} {ms:>10.2} {recall:>8.3}");
}
