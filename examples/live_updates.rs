//! Live updates on a CLIMBER index: append → delete → flush → reopen.
//!
//! Builds a disk-backed index, absorbs appends and deletes while serving
//! queries (O(record) appends into the delta segment, tombstoned
//! deletes), persists the pending updates as a journal, reopens the
//! directory *writable* with `Climber::open_rw`, folds everything into
//! the sealed partitions with `flush`/`compact`, and proves the answers
//! never changed across any of it.
//!
//! Run: `cargo run --release --example live_updates`

use climber_core::dfs::store::PartitionStore;
use climber_core::series::gen::Domain;
use climber_core::{Climber, ClimberConfig};

fn main() {
    let dir = std::env::temp_dir().join(format!("climber-live-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // 1. batch-build the base index on disk, as usual
    let data = Domain::RandomWalk.generate(4_000, 7);
    let config = ClimberConfig::default()
        .with_pivots(64)
        .with_prefix_len(8)
        .with_capacity(250)
        .with_alpha(0.2);
    let climber = Climber::build_on_disk(&data, &dir, config).unwrap();
    println!(
        "built: {} series across {} partitions at {}",
        4_000,
        climber.store().len(),
        dir.display()
    );

    // 2. live traffic: appends route into the in-memory delta segment —
    //    no sealed partition is touched — and deletes tombstone ids
    let novel: Vec<f32> = data.get(100).iter().map(|v| v + 0.01).collect();
    let new_id = climber.append(&novel).unwrap();
    let more: Vec<Vec<f32>> = (0..64u64).map(|i| data.get(i * 31).to_vec()).collect();
    climber.append_batch(&more).unwrap();
    climber.delete(100).unwrap();
    println!(
        "ingested {} appends + 1 delete (delta={} tombstones={})",
        1 + more.len(),
        climber.delta().record_count(),
        climber.tombstones().len()
    );

    // queries merge the delta and filter tombstones transparently
    let answer = climber.knn(&novel, 5);
    assert_eq!(answer.results[0], (new_id, 0.0), "appended record served");
    assert!(answer.results.iter().all(|&(id, _)| id != 100));
    println!("query sees the new record and not the deleted one");

    // 3. persist: the manifest gains a journal of the pending updates
    climber.save(&dir).unwrap();
    drop(climber);

    // 4. reopen WRITABLE: the journal is replayed, ingest continues
    let reopened = Climber::open_rw(&dir).unwrap();
    assert_eq!(reopened.knn(&novel, 5).results[0], (new_id, 0.0));
    let before = reopened.knn(&novel, 10);

    // 5. fold: flush appends into the sealed partitions, compact purges
    //    tombstones; the directory is re-sealed at a new generation
    let report = reopened.compact().unwrap();
    println!(
        "compacted: {} partitions rewritten, {} records folded, {} purged -> generation {}",
        report.partitions_rewritten,
        report.records_folded,
        report.records_purged,
        report.generation
    );
    assert_eq!(
        before, // folding never changes answers
        reopened.knn(&novel, 10),
        "fold changed query results"
    );

    // 6. a cold read-only open of the folded directory agrees
    let cold = Climber::open(&dir).unwrap();
    assert_eq!(cold.knn(&novel, 10).results, before.results);
    println!("cold reopen agrees: generation {}", cold.generation());

    std::fs::remove_dir_all(&dir).ok();
}
