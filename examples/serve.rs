//! Serve a CLIMBER index over TCP with micro-batched execution.
//!
//! ```sh
//! # self-contained demo: build an in-memory index, serve it, drive it
//! # with concurrent clients, verify, print the stats endpoint:
//! cargo run --release --example serve
//!
//! # or serve a persisted index (what the CI serve lane does; build one
//! # first with `persist_and_serve build <dir>`):
//! cargo run --release --example serve -- /tmp/climber-index
//! ```
//!
//! Either way the process is its own smoke test: it starts a
//! [`Server`], runs a pool of concurrent clients through real sockets,
//! asserts one served outcome is bit-identical to a direct
//! [`Climber::search`], prints the metrics snapshot, and shuts down
//! drain-clean.

use climber_core::dfs::store::PartitionStore;
use climber_core::series::gen::Domain;
use climber_core::{Climber, ClimberConfig, SearchRequest};
use climber_serve::{ServeClient, ServeConfig, Server};
use std::path::Path;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Recovers probe queries from the stored partitions themselves, so the
/// serve path needs no dataset in scope.
fn probes<S: PartitionStore>(climber: &Climber<S>, n: usize) -> Vec<Vec<f32>> {
    let mut records = Vec::new();
    for pid in climber.store().ids() {
        let reader = climber.store().open(pid).expect("partition readable");
        reader.for_each(|_, vals| records.push(vals.to_vec()));
    }
    records.into_iter().step_by(31).take(n).collect()
}

/// Starts a server on `climber`, drives it with a concurrent client pool,
/// verifies the serving guarantee, and prints the stats snapshot.
fn serve<S: PartitionStore + 'static>(climber: Arc<Climber<S>>) {
    let queries = probes(&climber, 24);
    let k = 10;
    let server = Server::start(Arc::clone(&climber), "127.0.0.1:0", ServeConfig::default())
        .expect("start server");
    let addr = server.local_addr();
    println!("serving on {addr} ({} probe queries)", queries.len());

    let t = Instant::now();
    let handles: Vec<_> = queries
        .into_iter()
        .map(|q| {
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let req = SearchRequest::new(q, k);
                let outcome = client.search(&req).expect("serve");
                (req, outcome)
            })
        })
        .collect();
    let answered: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let secs = t.elapsed().as_secs_f64();

    // The serving guarantee: a served outcome is bit-identical to a direct
    // search on the same handle.
    for (req, served) in &answered {
        assert_eq!(served, &climber.search(req), "served outcome diverged");
    }
    println!(
        "served {} queries in {:.3}s ({:.1} QPS), all bit-identical to direct search",
        answered.len(),
        secs,
        answered.len() as f64 / secs
    );

    let stats = server.stats();
    println!(
        "stats: admitted={} completed={} rejected={} batches={} mean_batch={:.2} \
         p50={}us p95={}us p99={}us",
        stats.admitted,
        stats.completed,
        stats.rejected,
        stats.batches,
        stats.mean_batch,
        stats.p50_us,
        stats.p95_us,
        stats.p99_us
    );
    server.shutdown();
    println!("OK: drain-clean shutdown");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1) {
        Some(dir) => {
            // Serve a persisted index: validated cold start, then sockets.
            let t = Instant::now();
            let climber = Climber::open(Path::new(dir)).expect("open persisted index");
            println!("cold-opened {dir} in {:.3}s", t.elapsed().as_secs_f64());
            serve(Arc::new(climber));
        }
        None => {
            // Self-contained demo on an in-memory index.
            let n = 3_000;
            let data = Domain::RandomWalk.generate(n, 42);
            let config = ClimberConfig::default()
                .with_paa_segments(16)
                .with_pivots(64)
                .with_prefix_len(6)
                .with_capacity(200)
                .with_alpha(0.3)
                .with_seed(7);
            let climber = Arc::new(Climber::build_in_memory(&data, config));
            println!("built an in-memory index over {n} series");
            serve(climber);
        }
    }
}
