//! Sharded CLIMBER: scatter-gather over N shards, served unchanged.
//!
//! Builds the same dataset as one index and as a 3-shard
//! `ShardedClimber`, proves the sharded answers are bit-identical (the
//! scatter-gather contract), pushes live appends/deletes and a
//! shard-set-wide flush through it, persists and cold-opens the set
//! (per-shard directories + super-manifest), and finally serves the
//! sharded index over TCP through the exact same `Server::start` call a
//! single index uses — the serving layer is generic over
//! `SearchBackend`, so clients cannot tell the difference.
//!
//! Run: `cargo run --release --example sharded`

use climber_core::dfs::store::PartitionStore;
use climber_core::series::gen::Domain;
use climber_core::{Climber, ClimberConfig, SearchRequest, ShardedClimber};
use climber_serve::{ServeClient, ServeConfig, Server};
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join(format!("climber-sharded-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // 1. one dataset, two builds: a single index and a 3-shard set
    let data = Domain::RandomWalk.generate(4_000, 7);
    let config = ClimberConfig::default()
        .with_pivots(64)
        .with_prefix_len(8)
        .with_capacity(250)
        .with_alpha(0.2);
    let single = Climber::build_in_memory(&data, config);
    let sharded = ShardedClimber::build_in_memory(&data, config, 3);
    println!(
        "built {} shards (router seed {:#x}); shard 0 holds {} partitions",
        sharded.num_shards(),
        sharded.router_seed(),
        sharded.shards()[0].store().len()
    );

    // 2. the scatter-gather contract: bit-identical outcomes — same
    //    neighbours, same distances, same scan accounting, same plan
    let reqs: Vec<SearchRequest> = (0..32u64)
        .map(|i| SearchRequest::new(data.get(i * 113), 10))
        .collect();
    assert_eq!(sharded.search_many(&reqs), single.search_many(&reqs));
    println!(
        "scatter-gather answers == single-index answers on {} requests",
        reqs.len()
    );

    // 3. live updates route by record id to exactly one shard
    let novel: Vec<f32> = data.get(100).iter().map(|v| v + 0.01).collect();
    let id = sharded.append(&novel).unwrap();
    sharded.delete(100).unwrap();
    println!("appended record {id} -> shard {}", sharded.shard_of(id));
    let answer = sharded.search(&SearchRequest::new(novel.clone(), 5));
    assert_eq!(answer.results[0], (id, 0.0), "appended record served");
    assert!(answer.results.iter().all(|&(rid, _)| rid != 100));

    // 4. fold every shard and persist the whole set: shard-000/,
    //    shard-001/, ... plus the SHARDS.clsm super-manifest
    sharded.flush().unwrap();
    sharded.save(&dir).unwrap();
    let cold = ShardedClimber::open(&dir).unwrap();
    assert_eq!(
        cold.search(&SearchRequest::new(novel.clone(), 5)).results[0],
        (id, 0.0)
    );
    println!("cold reopen at generations {:?} agrees", cold.generations());

    // 5. serve the sharded set — the identical call a single index uses
    let server = Server::start(Arc::new(cold), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let served = client.search(&SearchRequest::new(novel, 5)).unwrap();
    assert_eq!(served.results[0], (id, 0.0), "served == direct");
    println!("served over TCP at {}: same answer", server.local_addr());
    server.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}
