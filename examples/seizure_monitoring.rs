//! Seizure monitoring: a disk-backed CLIMBER index over an EEG archive.
//!
//! The scenario from the paper's introduction: an ECG/EEG device produces
//! ~1 GB of series per hour; a monitoring service wants to ask "which past
//! episodes looked like the last 640 ms of this channel?" without scanning
//! the archive. We build a *persistent* index (the paper's deployment mode:
//! disk partitions + a tiny in-memory skeleton), close it, reopen it — as a
//! long-running service would after a restart — and run similarity queries
//! on noisy probes.
//!
//! ```sh
//! cargo run --release --example seizure_monitoring
//! ```

use climber_core::series::gen::{noisy_query_workload, Domain};
use climber_core::series::ground_truth::exact_knn_serial;
use climber_core::series::recall::recall_of_results;
use climber_core::{Climber, ClimberConfig};
use std::time::Instant;

fn main() {
    let n = 8_000;
    println!("collecting {n} EEG episodes (256 samples @ 400 Hz each) ...");
    let archive = Domain::Eeg.generate(n, 2024);

    let dir = std::env::temp_dir().join("climber-eeg-archive");
    let config = ClimberConfig::default()
        .with_paa_segments(16)
        .with_pivots(150)
        .with_prefix_len(10)
        .with_capacity(400)
        .with_alpha(0.15)
        .with_max_centroids(8)
        .with_seed(11);

    let t = Instant::now();
    let built = Climber::build_on_disk(&archive, &dir, config).expect("disk build");
    println!(
        "archive indexed on disk in {:.2}s at {} ({} partitions)",
        t.elapsed().as_secs_f64(),
        dir.display(),
        built.report().unwrap().num_partitions
    );
    drop(built); // service restarts ...

    let service = Climber::open(&dir).expect("reopen index");
    println!(
        "index reopened; skeleton is {} bytes in memory",
        service.global_index_bytes()
    );

    // Probes: noisy versions of real episodes (a live channel never exactly
    // repeats an archived one).
    let k = 50;
    let probes = noisy_query_workload(&archive, 8, 0.05, 3);
    let mut mean_recall = 0.0;
    for (i, probe) in probes.iter().enumerate() {
        let t = Instant::now();
        let hits = service.knn_adaptive(probe, k, 4);
        let exact = exact_knn_serial(&archive, probe, k);
        let r = recall_of_results(&hits.results, &exact);
        mean_recall += r / probes.len() as f64;
        println!(
            "  probe {i}: {} similar episodes in {:.1} ms ({} partitions read, recall {r:.2}); closest episode id {}",
            hits.results.len(),
            1000.0 * t.elapsed().as_secs_f64(),
            hits.partitions_opened,
            hits.results.first().map(|&(id, _)| id as i64).unwrap_or(-1),
        );
    }
    println!("mean recall over noisy probes: {mean_recall:.3}");
    std::fs::remove_dir_all(&dir).ok();
}
