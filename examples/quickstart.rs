//! Quickstart: build a CLIMBER index over the RandomWalk benchmark and run
//! approximate kNN queries, comparing against the exact answer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use climber_core::series::gen::{query_workload, Domain};
use climber_core::series::ground_truth::exact_knn;
use climber_core::series::recall::recall_of_results;
use climber_core::{Climber, ClimberConfig};
use std::time::Instant;

fn main() {
    // 10 000 random-walk series of 256 points — the benchmark every data-
    // series index paper uses (scaled from the paper's 1 billion).
    let n = 10_000;
    println!("generating {n} RandomWalk series ...");
    let data = Domain::RandomWalk.generate(n, 42);

    // Paper defaults, scaled: 200 pivots, prefix length 10; the 64 MB HDFS
    // block becomes a 500-record partition capacity.
    let config = ClimberConfig::default()
        .with_paa_segments(16)
        .with_pivots(200)
        .with_prefix_len(10)
        .with_capacity(500)
        .with_alpha(0.1)
        .with_max_centroids(10)
        .with_seed(7);

    let t = Instant::now();
    let climber = Climber::build_in_memory(&data, config);
    let report = climber.report().expect("fresh build has a report");
    println!(
        "index built in {:.2}s ({} groups, {} partitions, {} trie nodes, skeleton {:.1} KiB)",
        t.elapsed().as_secs_f64(),
        report.num_groups,
        report.num_partitions,
        report.num_trie_nodes,
        report.skeleton_bytes as f64 / 1024.0
    );

    // Query 10 random members of the dataset (the paper's workload).
    let k = 100;
    let queries = query_workload(&data, 10, 1);
    let mut mean_recall = 0.0;
    let mut mean_partitions = 0.0;
    let t = Instant::now();
    for &qid in &queries {
        let approx = climber.knn_adaptive(data.get(qid), k, 4);
        let exact = exact_knn(&data, data.get(qid), k);
        let r = recall_of_results(&approx.results, &exact);
        mean_recall += r / queries.len() as f64;
        mean_partitions += approx.partitions_opened as f64 / queries.len() as f64;
        println!(
            "  query {qid:>5}: recall {r:.2}, {} partitions, {} records scanned",
            approx.partitions_opened, approx.records_scanned
        );
    }
    println!(
        "CLIMBER-kNN-Adaptive-4X, k={k}: mean recall {:.3}, {:.1} partitions/query, {:.1} ms/query",
        mean_recall,
        mean_partitions,
        1000.0 * t.elapsed().as_secs_f64() / queries.len() as f64
    );
}
