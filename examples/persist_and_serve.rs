//! Build-once, query-many: persist a CLIMBER index, drop every in-memory
//! structure, and cold-start a serving path that never touches the
//! original raw dataset.
//!
//! ```sh
//! # full demo in one process (build → drop → reopen → serve):
//! cargo run --release --example persist_and_serve
//!
//! # or split across processes (what the CI persistence lane does):
//! cargo run --release --example persist_and_serve -- build /tmp/climber-index
//! cargo run --release --example persist_and_serve -- serve /tmp/climber-index
//! ```
//!
//! The serve phase derives its probe queries and its exact ground truth
//! from the *stored partitions alone* — proof that a reopened index is
//! self-contained.

use climber_core::dfs::store::PartitionStore;
use climber_core::series::gen::Domain;
use climber_core::{BuildOptions, Climber, ClimberConfig, SearchRequest};
use std::path::Path;
use std::time::Instant;

fn build(dir: &Path) {
    let n = 4_000;
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    println!(
        "building: {n} RandomWalk series -> {} ({threads} threads)",
        dir.display()
    );
    let data = Domain::RandomWalk.generate(n, 42);
    let config = ClimberConfig::default()
        .with_paa_segments(16)
        .with_pivots(100)
        .with_prefix_len(8)
        .with_capacity(250)
        .with_alpha(0.25)
        .with_max_centroids(8)
        .with_seed(7);
    let t = Instant::now();
    // Every build phase fans out across the machine's cores; the index
    // bytes are identical to a 1-thread build.
    let climber = Climber::build_on_disk_with(
        &data,
        dir,
        config,
        BuildOptions::default().with_threads(threads),
    )
    .expect("build_on_disk");
    let report = climber.report().expect("fresh build has a report");
    println!(
        "built in {:.2}s on {} threads ({} partitions, {} trie nodes, skeleton {} B, \
         {:.0} records/s converted) and sealed the manifest",
        t.elapsed().as_secs_f64(),
        report.threads,
        report.num_partitions,
        report.num_trie_nodes,
        report.skeleton_bytes,
        report.conversion_records_per_sec,
    );
}

fn serve(dir: &Path) {
    // Cold start: manifest + checksum validation, skeleton decode, no
    // dataset anywhere in scope.
    let t = Instant::now();
    let climber = Climber::open(dir).expect("open persisted index");
    let open_secs = t.elapsed().as_secs_f64();
    println!(
        "cold-opened {} in {:.3}s (read-only: {})",
        dir.display(),
        open_secs,
        climber.store().is_read_only()
    );

    // Recover every stored record from the partitions themselves — the
    // serve process's only data source.
    let mut records: Vec<(u64, Vec<f32>)> = Vec::new();
    for pid in climber.store().ids() {
        let reader = climber.store().open(pid).expect("partition readable");
        reader.for_each(|id, vals| records.push((id, vals.to_vec())));
    }
    println!("index holds {} records", records.len());

    // Probe with a sample of stored series (every 251st record).
    let queries: Vec<Vec<f32>> = records
        .iter()
        .step_by(251)
        .take(16)
        .map(|(_, v)| v.clone())
        .collect();
    let k = 10;
    let requests: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::new(q.clone(), k).adaptive(4))
        .collect();
    let t = Instant::now();
    let outcomes = climber.search_many(&requests);
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(outcomes.len(), queries.len());

    // Exact ground truth by brute force over the stored records.
    let mut recall_sum = 0.0f64;
    for (q, out) in queries.iter().zip(outcomes.iter()) {
        let mut exact: Vec<(u64, f64)> = records
            .iter()
            .map(|(id, v)| {
                let d: f64 = q
                    .iter()
                    .zip(v.iter())
                    .map(|(a, b)| ((a - b) as f64).powi(2))
                    .sum();
                (*id, d)
            })
            .collect();
        exact.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        exact.truncate(k);
        let hits = out
            .results
            .iter()
            .filter(|(id, _)| exact.iter().any(|(eid, _)| eid == id))
            .count();
        recall_sum += hits as f64 / k as f64;
    }
    let recall = recall_sum / queries.len() as f64;
    let io = climber.serve_io();
    println!(
        "served {} queries in {:.3}s ({:.1} QPS), recall@{k} = {:.3}",
        queries.len(),
        secs,
        queries.len() as f64 / secs,
        recall
    );
    println!(
        "serve-phase I/O: {} partition opens, {} records decoded, {} bytes read",
        io.partitions_opened, io.records_read, io.bytes_read
    );
    assert!(recall > 0.0, "reopened index must overlap the exact answer");
    println!("OK: reopened index serves with recall@{k} > 0");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("build") => build(Path::new(args.get(2).expect("usage: build <dir>"))),
        Some("serve") => serve(Path::new(args.get(2).expect("usage: serve <dir>"))),
        Some(other) => {
            eprintln!("unknown mode {other:?}; usage: persist_and_serve [build|serve <dir>]");
            std::process::exit(2);
        }
        None => {
            // Single-process demo: build in an inner scope, drop every
            // in-memory structure, then cold-start the serve path.
            let dir = std::env::temp_dir().join(format!("climber-persist-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            build(&dir);
            // nothing of the build survives this point but the directory
            serve(&dir);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
