//! End-to-end integration: build + query on every evaluation domain.

use climber_core::series::gen::{query_workload, Domain};
use climber_core::series::ground_truth::exact_knn;
use climber_core::series::recall::recall_of_results;
use climber_core::{Climber, ClimberConfig};

fn cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(16)
        .with_pivots(96)
        .with_prefix_len(8)
        .with_capacity(200)
        .with_alpha(0.25)
        .with_epsilon(2)
        .with_max_centroids(8)
        .with_seed(101)
        .with_workers(2)
}

#[test]
fn all_domains_build_and_answer_queries() {
    for domain in Domain::ALL {
        let ds = domain.generate(2_500, 7);
        let climber = Climber::build_in_memory(&ds, cfg());
        let report = climber.report().unwrap();
        assert!(report.num_groups >= 1, "{}", domain.name());
        assert!(report.num_partitions >= 2, "{}", domain.name());

        let k = 25;
        for &qid in &query_workload(&ds, 5, 3) {
            let out = climber.knn_adaptive(ds.get(qid), k, 4);
            assert_eq!(out.results.len(), k, "{} q{qid}", domain.name());
            // results sorted, distances non-negative
            for w in out.results.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
            assert!(out.results[0].1 >= 0.0);
        }
    }
}

#[test]
fn recall_exceeds_scan_fraction_on_every_domain() {
    // The index must provide genuine locality: recall well above the
    // fraction of records it actually reads.
    for domain in Domain::ALL {
        let ds = domain.generate(3_000, 13);
        let climber = Climber::build_in_memory(&ds, cfg());
        let k = 30;
        let queries = query_workload(&ds, 8, 5);
        let mut recall = 0.0;
        let mut scanned = 0u64;
        for &qid in &queries {
            let out = climber.knn_adaptive(ds.get(qid), k, 4);
            let exact = exact_knn(&ds, ds.get(qid), k);
            recall += recall_of_results(&out.results, &exact) / queries.len() as f64;
            scanned += out.records_scanned;
        }
        let frac = scanned as f64 / (queries.len() as f64 * ds.num_series() as f64);
        assert!(
            recall > 1.5 * frac,
            "{}: recall {recall:.3} vs scan fraction {frac:.3} — no locality",
            domain.name()
        );
        assert!(
            recall > 0.2,
            "{}: recall {recall:.3} below sanity floor",
            domain.name()
        );
    }
}

#[test]
fn every_record_is_indexed_exactly_once() {
    let ds = Domain::RandomWalk.generate(2_000, 17);
    let climber = Climber::build_in_memory(&ds, cfg());
    use climber_core::dfs::store::PartitionStore;
    let mut seen: Vec<u64> = Vec::new();
    for pid in climber.store().ids() {
        climber
            .store()
            .open(pid)
            .unwrap()
            .for_each(|id, _| seen.push(id));
    }
    seen.sort_unstable();
    assert_eq!(seen, (0..2_000u64).collect::<Vec<_>>());
    assert_eq!(
        climber.store().ids().len(),
        climber.skeleton().num_partitions()
    );
}

#[test]
fn self_query_returns_zero_distance_first() {
    let ds = Domain::Eeg.generate(1_500, 19);
    let climber = Climber::build_in_memory(&ds, cfg());
    let mut hits = 0;
    let queries = query_workload(&ds, 20, 7);
    for &qid in &queries {
        let out = climber.knn(ds.get(qid), 5);
        if out.results.first() == Some(&(qid, 0.0)) {
            hits += 1;
        }
    }
    assert!(
        hits >= 17,
        "only {hits}/20 self-queries returned themselves first"
    );
}

#[test]
fn skeleton_metrics_are_consistent() {
    let ds = Domain::Dna.generate(2_000, 23);
    let climber = Climber::build_in_memory(&ds, cfg());
    let sk = climber.skeleton();
    let report = climber.report().unwrap();
    assert_eq!(report.num_groups + 1, sk.groups.len()); // + fallback
    assert_eq!(report.num_trie_nodes, sk.num_trie_nodes());
    assert_eq!(report.skeleton_bytes, sk.size_bytes());
    // group 0 is the fallback with no centroid; the rest have centroids of
    // prefix length m
    assert!(sk.groups[0].centroid.is_none());
    for g in &sk.groups[1..] {
        assert_eq!(g.centroid.as_ref().unwrap().len(), sk.prefix_len);
    }
}
