//! Invariants of the simulated distributed substrate: worker-count
//! independence, shuffle accounting, placement replay.

use climber_core::dfs::store::{MemStore, PartitionStore};
use climber_core::index::builder::IndexBuilder;
use climber_core::series::gen::Domain;
use climber_core::{Climber, ClimberConfig};

fn cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(48)
        .with_prefix_len(6)
        .with_capacity(100)
        .with_alpha(0.3)
        .with_epsilon(1)
        .with_seed(4242)
}

#[test]
fn builds_identical_across_worker_counts() {
    let ds = Domain::RandomWalk.generate(1_500, 3);
    let mut skeletons = Vec::new();
    let mut partition_dumps = Vec::new();
    for workers in [1usize, 2, 8] {
        let store = MemStore::new();
        let (skeleton, _) = IndexBuilder::new(cfg().with_workers(workers)).build(&ds, &store);
        let mut dump: Vec<(u32, Vec<u64>)> = Vec::new();
        for pid in store.ids() {
            let mut ids = Vec::new();
            store.open(pid).unwrap().for_each(|id, _| ids.push(id));
            dump.push((pid, ids));
        }
        skeletons.push(skeleton);
        partition_dumps.push(dump);
    }
    assert_eq!(skeletons[0], skeletons[1]);
    assert_eq!(skeletons[1], skeletons[2]);
    assert_eq!(partition_dumps[0], partition_dumps[1]);
    assert_eq!(partition_dumps[1], partition_dumps[2]);
}

#[test]
fn build_shuffles_every_record_once() {
    let ds = Domain::Eeg.generate(900, 5);
    let store = MemStore::new();
    let builder = IndexBuilder::new(cfg().with_workers(4));
    let (_, report) = builder.build(&ds, &store);
    // Step 4 shuffles each record to its partition exactly once.
    assert_eq!(report.io.partitions_written as usize, store.ids().len());
    assert!(report.io.bytes_written > 0);
}

#[test]
fn query_io_accounting_matches_plan() {
    let ds = Domain::TexMex.generate(1_200, 7);
    let climber = Climber::build_in_memory(&ds, cfg().with_workers(2));
    let stats = climber.store().stats();
    let before = stats.snapshot();
    let out = climber.knn(ds.get(11), 10);
    let diff = stats.snapshot().since(&before);
    assert_eq!(diff.partitions_opened as usize, out.partitions_opened);
    assert!(diff.bytes_read > 0);
    assert!(diff.records_read >= out.records_scanned);
}

#[test]
fn placement_replay_reconstructs_storage() {
    // The skeleton alone determines where every record lives: replaying
    // place() over the raw data must reproduce the store contents.
    let ds = Domain::Dna.generate(800, 9);
    let climber = Climber::build_in_memory(&ds, cfg().with_workers(2));
    for pid in climber.store().ids() {
        let reader = climber.store().open(pid).unwrap();
        reader.for_each(|id, vals| {
            let p = climber.skeleton().place(vals, id);
            assert_eq!(p.partition, pid, "record {id}");
        });
    }
}

#[test]
fn fallback_group_exists_and_is_group_zero() {
    let ds = Domain::RandomWalk.generate(600, 11);
    let climber = Climber::build_in_memory(&ds, cfg());
    let sk = climber.skeleton();
    assert!(sk.groups[0].centroid.is_none(), "G0 must be the fallback");
    assert!(sk.groups.len() >= 2, "no real groups were formed");
    // the fallback's default partition exists in the store
    let pid = sk.groups[0].default_partition;
    assert!(climber.store().open(pid).is_ok());
}
