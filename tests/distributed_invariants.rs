//! Invariants of the real distributed substrate: a [`ShardedClimber`]'s
//! routing is a stable partition of the record set, its scatter-gather
//! accounting sums to the single-index totals, and its k-way merge never
//! drops ties at the k-boundary.

use climber_core::dfs::store::PartitionStore;
use climber_core::series::gen::Domain;
use climber_core::{Climber, ClimberConfig, SearchRequest, ShardedClimber};

fn cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(48)
        .with_prefix_len(6)
        .with_capacity(100)
        .with_alpha(0.3)
        .with_epsilon(1)
        .with_seed(4242)
        .with_workers(2)
}

/// Every record id stored in shard `s`, straight from the shard stores.
fn shard_contents<S: PartitionStore>(sharded: &ShardedClimber<S>) -> Vec<Vec<u64>> {
    sharded
        .shards()
        .iter()
        .map(|shard| {
            let mut ids = Vec::new();
            for pid in shard.store().ids() {
                shard
                    .store()
                    .open(pid)
                    .unwrap()
                    .for_each(|id, _| ids.push(id));
            }
            ids.sort_unstable();
            ids
        })
        .collect()
}

#[test]
fn every_record_routes_to_exactly_one_shard() {
    let n = 900u64;
    let ds = Domain::Eeg.generate(n as usize, 5);
    let sharded = ShardedClimber::build_in_memory(&ds, cfg(), 3);
    let contents = shard_contents(&sharded);
    let mut owners = vec![0u32; n as usize];
    for (si, ids) in contents.iter().enumerate() {
        assert!(!ids.is_empty(), "shard {si} owns no records at n={n}");
        for &id in ids {
            owners[id as usize] += 1;
            assert_eq!(sharded.shard_of(id), si, "record {id} stored off its shard");
        }
    }
    assert!(
        owners.iter().all(|&c| c == 1),
        "routing is not a partition of the record set"
    );
}

#[test]
fn routing_is_stable_across_reopen() {
    let dir = std::env::temp_dir().join(format!("climber-route-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let ds = Domain::RandomWalk.generate(400, 3);
    let built = ShardedClimber::build_on_disk(&ds, &dir, cfg(), 3).unwrap();
    let before = shard_contents(&built);
    let reopened = ShardedClimber::open(&dir).unwrap();
    assert_eq!(reopened.router_seed(), built.router_seed());
    assert_eq!(
        shard_contents(&reopened),
        before,
        "a reopen moved records between shards"
    );
    for id in 0..400u64 {
        assert_eq!(reopened.shard_of(id), built.shard_of(id), "record {id}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn per_shard_accounting_sums_to_single_index_totals() {
    let ds = Domain::TexMex.generate(1_200, 7);
    let single = Climber::build_in_memory(&ds, cfg());
    let sharded = ShardedClimber::build_in_memory(&ds, cfg(), 4);
    let reqs: Vec<SearchRequest> = (0..8u64)
        .map(|i| SearchRequest::new(ds.get(i * 131).to_vec(), 10))
        .collect();
    let want = single.search_many(&reqs);
    let (got, statuses) = sharded.search_many_with_status(&reqs, 0);
    assert_eq!(got, want, "sharded outcomes diverged from the single index");
    // Shards are record-disjoint, so what each shard scanned must sum
    // exactly to the single-index plan totals — nothing double-counted,
    // nothing dropped.
    let per_shard: u64 = statuses.iter().map(|s| s.records_scanned).sum();
    let per_query: u64 = want.iter().map(|o| o.records_scanned).sum();
    assert_eq!(
        per_shard, per_query,
        "shard accounting diverged from plan totals"
    );
    for s in &statuses {
        assert!(s.healthy, "shard {} unhealthy on a pristine store", s.shard);
        assert!(s.failed_partitions.is_empty());
    }
}

#[test]
fn merge_never_drops_ties_at_the_k_boundary() {
    let ds = Domain::RandomWalk.generate(300, 11);
    let single = Climber::build_in_memory(&ds, cfg());
    let sharded = ShardedClimber::build_in_memory(&ds, cfg(), 3);
    // Twelve byte-identical copies of one series: twelve records at the
    // exact same (duplicated) distance to the probe, spread across shards
    // by the router, with k cutting through the middle of the tie.
    let probe = ds.get(42).to_vec();
    let copies: Vec<Vec<f32>> = (0..12).map(|_| probe.clone()).collect();
    let ids_single = single.append_batch(&copies).unwrap();
    let ids_sharded = sharded.append_batch(&copies).unwrap();
    assert_eq!(ids_single, ids_sharded);
    let shards_hit: std::collections::BTreeSet<usize> =
        ids_sharded.iter().map(|&id| sharded.shard_of(id)).collect();
    assert!(
        shards_hit.len() > 1,
        "tie set landed on one shard; the test would not exercise the merge"
    );
    for k in [5usize, 8, 13] {
        let req = SearchRequest::new(probe.clone(), k);
        let (got, want) = (sharded.search(&req), single.search(&req));
        assert_eq!(got, want, "k={k}");
        // The boundary sits inside the duplicated-distance run: ties must
        // be broken by ascending id, identically on both sides.
        let dup: Vec<_> = got
            .results
            .iter()
            .filter(|r| ids_sharded.contains(&r.0) || r.0 == 42)
            .collect();
        assert!(dup.len() >= k.min(13), "k={k} answer lost tied records");
        assert!(
            dup.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 == w[1].1),
            "tied records must come back in ascending id order at equal distance"
        );
        // The tie run the merge preserved must genuinely cross shards —
        // otherwise this test would not exercise the k-way merge at all.
        let result_shards: std::collections::BTreeSet<usize> =
            dup.iter().map(|r| sharded.shard_of(r.0)).collect();
        assert!(result_shards.len() > 1, "k={k} tie run came from one shard");
    }
    // Folding the tie set into sealed partitions must not re-break ties.
    single.flush().unwrap();
    sharded.flush().unwrap();
    let req = SearchRequest::new(probe, 8).exact();
    assert_eq!(sharded.search(&req), single.search(&req));
}

#[test]
fn scatter_is_thread_count_independent() {
    let ds = Domain::Dna.generate(800, 9);
    let single = Climber::build_in_memory(&ds, cfg());
    let sharded = ShardedClimber::build_in_memory(&ds, cfg(), 2);
    let reqs: Vec<SearchRequest> = (0..6u64)
        .map(|i| SearchRequest::new(ds.get(i * 113).to_vec(), 7).adaptive(2))
        .collect();
    let want = single.search_many(&reqs);
    for threads in [1usize, 2, 8] {
        assert_eq!(
            sharded.search_many_with_threads(&reqs, threads),
            want,
            "{threads} threads"
        );
    }
}
