//! The crash-consistency torture harness.
//!
//! Every durable protocol the index runs — save-with-journal, a fresh
//! flush, a flush that folds a committed journal, and a compact — is
//! first executed fault-free through a counting
//! [`FaultFs`](climber_core::dfs::fsio::FaultFs) to learn its exact
//! filesystem-operation count, then re-executed once per operation index
//! with the disk **frozen** at that op (a power cut mid-protocol), and
//! once more per *write* op with a torn prefix landing before the freeze
//! (a torn page cut by the power cut).
//!
//! The invariant under every single fault point:
//!
//! 1. the mutating call returns a typed error — it never panics;
//! 2. reopening the directory with the real filesystem succeeds;
//! 3. the recovered index is **bit-identical** — same manifest
//!    generation, same answers to a probe set chosen to tell the two
//!    states apart — to either the pre-crash committed state A or the
//!    post-crash committed state B; never a third state;
//! 4. if recovery lands on state A, the mutating call must have reported
//!    failure (a success whose effects vanish would be a lost write);
//! 5. recovery leaves no stage droppings (`*.tmp.*`, `*.new`) behind.
//!
//! The manifest write is the commit point: every fault strictly before it
//! recovers to A, every fault at or after it rolls forward to B.

use climber_core::dfs::fsio::{FaultAction, FaultFs, FaultTrigger, FsOp, FsRef};
use climber_core::dfs::store::DiskStore;
use climber_core::series::gen::Domain;
use climber_core::{Climber, ClimberConfig, ClimberError, QueryOutcome, SearchRequest};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(32)
        .with_prefix_len(5)
        .with_capacity(60)
        .with_alpha(0.5)
        .with_epsilon(1)
        .with_seed(99)
        .with_workers(2)
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("climber-crash-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::remove_dir_all(dst).ok();
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_dir(&from, &to);
        } else {
            fs::copy(&from, &to).unwrap();
        }
    }
}

/// A committed state's fingerprint: manifest generation plus the exact
/// answers to the scenario's probe set. Two states an op separates must
/// differ in at least one component (appended series answer exactly in
/// B, deleted series answer exactly in A, folds bump the generation).
type Fingerprint = (u64, Vec<QueryOutcome>);

/// Builds a committed baseline directory for a scenario.
type SetupFn = dyn Fn(&Path);

/// The durable protocol a scenario tortures on top of the baseline.
type CrashOp = dyn Fn(&Climber<DiskStore>) -> Result<(), ClimberError>;

/// Recovers `dir` with the real filesystem (the crashed "process" is
/// gone, its frozen disk is what survived) and fingerprints the
/// committed state. The writable open rolls staged commits forward and
/// sweeps interrupted temp files — recovery IS this open.
fn recovered_state(dir: &Path, probes: &[Vec<f32>]) -> Fingerprint {
    let c = Climber::open_rw(dir).unwrap_or_else(|e| {
        panic!("recovery open of {} failed: {e}", dir.display());
    });
    let answers = probes
        .iter()
        .map(|q| c.search(&SearchRequest::new(q.clone(), 5)))
        .collect();
    (c.generation(), answers)
}

/// Asserts the recovery open swept every stage dropping.
fn assert_no_droppings(dir: &Path) {
    for entry in fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            !name.contains(".tmp."),
            "temp dropping survived recovery: {name}"
        );
        assert!(
            !name.ends_with(".new"),
            "stray stage survived recovery: {name}"
        );
    }
}

/// One torture scenario: a committed baseline directory, the durable
/// protocol to torture on top of it, and probes that tell the pre-op
/// state A from the post-op state B.
struct Torture<'a> {
    root: PathBuf,
    probes: Vec<Vec<f32>>,
    op: &'a CrashOp,
    state_a: Fingerprint,
    state_b: Fingerprint,
    /// Fault-free op count of the protocol (crash sweep domain).
    op_count: u64,
    /// Indices of `FsOp::Write` ops (torn-write sweep domain).
    write_ops: Vec<u64>,
}

impl<'a> Torture<'a> {
    /// Builds the baseline via `setup`, learns the protocol's op count
    /// and both committed states from one fault-free run.
    fn prepare(tag: &str, setup: &SetupFn, op: &'a CrashOp, probes: Vec<Vec<f32>>) -> Self {
        let root = tmp_root(tag);
        let golden = root.join("A");
        setup(&golden);
        let state_a = recovered_state(&golden, &probes);

        let dry = root.join("dry");
        copy_dir(&golden, &dry);
        let ff = FaultFs::over_std();
        let fsref: FsRef = ff.clone();
        let c = Climber::open_rw_with_fs(&dry, fsref).unwrap();
        ff.arm();
        op(&c).expect("fault-free run of the protocol under test");
        ff.disarm();
        drop(c);
        let op_count = ff.op_count();
        assert!(op_count > 0, "protocol performed no filesystem operations");
        let write_ops: Vec<u64> = ff
            .trace()
            .iter()
            .enumerate()
            .filter(|(_, (kind, _))| *kind == FsOp::Write)
            .map(|(i, _)| i as u64)
            .collect();
        let state_b = recovered_state(&dry, &probes);
        assert_ne!(
            state_a, state_b,
            "the probe set must tell the committed states apart"
        );
        Self {
            root,
            probes,
            op,
            state_a,
            state_b,
            op_count,
            write_ops,
        }
    }

    /// One torture iteration: crash (optionally torn) at `crash_op`,
    /// recover, assert the two-state invariant.
    fn crash_once(&self, crash_op: u64, torn_keep: Option<usize>) {
        let work = self.root.join("work");
        copy_dir(&self.root.join("A"), &work);
        let ff = FaultFs::over_std();
        let fsref: FsRef = ff.clone();
        let c = Climber::open_rw_with_fs(&work, fsref).expect("pre-crash open is fault-free");
        match torn_keep {
            Some(keep) => ff.torn_crash_at(crash_op, keep),
            None => ff.crash_at(crash_op),
        }
        ff.arm();
        let result = (self.op)(&c);
        ff.disarm();
        drop(c);

        let got = recovered_state(&work, &self.probes);
        let label = format!("crash at op {crash_op} (torn: {torn_keep:?})");
        if got == self.state_a {
            assert!(
                result.is_err(),
                "{label}: op claimed success but its effects vanished (state A)"
            );
        } else if got != self.state_b {
            panic!(
                "{label}: third state — generation {} is neither A (gen {}) nor B (gen {}), \
                 or the probe answers diverged from both",
                got.0, self.state_a.0, self.state_b.0
            );
        }
        assert_no_droppings(&work);
    }

    /// Sweeps a pure crash across every op, then a torn crash across
    /// every write op (prefixes of 1 byte and of most-of-the-file).
    fn sweep(&self) {
        for i in 0..self.op_count {
            self.crash_once(i, None);
        }
        for &w in &self.write_ops {
            for keep in [1, 4096] {
                self.crash_once(w, Some(keep));
            }
        }
    }

    fn cleanup(self) {
        fs::remove_dir_all(&self.root).ok();
    }
}

/// Baseline: a freshly built, committed on-disk index.
fn setup_plain(dir: &Path) {
    let ds = Domain::RandomWalk.generate(200, 21);
    Climber::build_on_disk(&ds, dir, cfg()).unwrap();
}

/// Baseline with a committed journal: built, then appends saved without
/// a flush, so `journal.cldj` is referenced by the manifest.
fn setup_journaled(dir: &Path) {
    setup_plain(dir);
    let c = Climber::open_rw(dir).unwrap();
    let extra = Domain::RandomWalk.generate(6, 77);
    for i in 0..6 {
        c.append(extra.get(i)).unwrap();
    }
    c.save(dir).unwrap();
}

/// Probes no scenario is sensitive to (background coverage) — the
/// scenario-specific ones that actually discriminate A from B follow.
fn generic_probes() -> Vec<Vec<f32>> {
    let ds = Domain::RandomWalk.generate(4, 555);
    (0..4).map(|i| ds.get(i).to_vec()).collect()
}

/// The six series the mutating ops append (seed 33): exact-match hits
/// in state B, absent in state A.
fn appended_probes() -> Vec<Vec<f32>> {
    let ds = Domain::RandomWalk.generate(6, 33);
    (0..6).map(|i| ds.get(i).to_vec()).collect()
}

/// The base-dataset series `op_delete_compact` deletes: exact-match
/// hits in state A, gone in state B.
fn deleted_probes() -> Vec<Vec<f32>> {
    let ds = Domain::RandomWalk.generate(200, 21);
    (5..15).map(|i| ds.get(i).to_vec()).collect()
}

fn op_append_save(c: &Climber<DiskStore>) -> Result<(), ClimberError> {
    let extra = Domain::RandomWalk.generate(6, 33);
    for i in 0..6 {
        c.append(extra.get(i))?;
    }
    let dir = c.store().dir().to_path_buf();
    c.save(dir)?;
    Ok(())
}

fn op_append_flush(c: &Climber<DiskStore>) -> Result<(), ClimberError> {
    let extra = Domain::RandomWalk.generate(6, 33);
    for i in 0..6 {
        c.append(extra.get(i))?;
    }
    c.flush()?;
    Ok(())
}

fn op_flush(c: &Climber<DiskStore>) -> Result<(), ClimberError> {
    c.flush()?;
    Ok(())
}

fn op_delete_compact(c: &Climber<DiskStore>) -> Result<(), ClimberError> {
    for id in 5..15 {
        c.delete(id)?;
    }
    c.compact()?;
    Ok(())
}

fn probes_with(extra: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let mut probes = generic_probes();
    probes.extend(extra);
    probes
}

#[test]
fn save_with_journal_survives_every_crash_point() {
    let t = Torture::prepare(
        "save",
        &setup_plain,
        &op_append_save,
        probes_with(appended_probes()),
    );
    t.sweep();
    t.cleanup();
}

#[test]
fn flush_survives_every_crash_point() {
    let t = Torture::prepare(
        "flush",
        &setup_plain,
        &op_append_flush,
        probes_with(appended_probes()),
    );
    t.sweep();
    t.cleanup();
}

#[test]
fn flush_that_folds_a_journal_survives_every_crash_point() {
    let t = Torture::prepare(
        "jflush",
        &setup_journaled,
        &op_flush,
        // The journaled records answer identically in A and B (folds are
        // bit-identical); the fold's generation bump discriminates.
        probes_with({
            let ds = Domain::RandomWalk.generate(6, 77);
            (0..6).map(|i| ds.get(i).to_vec()).collect()
        }),
    );
    t.sweep();
    t.cleanup();
}

#[test]
fn compact_survives_every_crash_point() {
    let t = Torture::prepare(
        "compact",
        &setup_plain,
        &op_delete_compact,
        probes_with(deleted_probes()),
    );
    t.sweep();
    t.cleanup();
}

/// Satellite regression: a flush whose partition write fails must
/// restore the drained delta records — an acknowledged append is never
/// dropped — and the next fault-free flush must land them.
#[test]
fn failed_flush_restores_drained_records_then_retries_clean() {
    let root = tmp_root("drain");
    let dir = root.join("idx");
    setup_plain(&dir);
    let ff = FaultFs::over_std();
    let fsref: FsRef = ff.clone();
    let c = Climber::open_rw_with_fs(&dir, fsref).unwrap();
    let extra = Domain::RandomWalk.generate(4, 91);
    let mut ids = Vec::new();
    for i in 0..4 {
        ids.push(c.append(extra.get(i)).unwrap());
    }
    // Fail the fold's first partition write (transiently), leaving the
    // disk usable afterwards.
    ff.inject(FaultTrigger::Kind(FsOp::Write, 0), FaultAction::ErrorOnce);
    ff.arm();
    let err = c.flush().unwrap_err();
    assert!(
        err.to_string()
            .contains(climber_core::dfs::fsio::INJECTED_FAULT),
        "{err}"
    );
    // The appended records are still answerable right now (restored to
    // the delta), and a retry folds them for real.
    for (i, id) in ids.iter().enumerate() {
        let hit = c.search(&SearchRequest::new(extra.get(i as u64).to_vec(), 1));
        assert_eq!(hit.results[0].0, *id, "append {id} lost after failed flush");
    }
    c.flush().expect("retry flush after a transient fault");
    ff.disarm();
    drop(c);
    // Cold truth: the reopened directory serves every acknowledged append.
    let cold = Climber::open(&dir).unwrap();
    for (i, id) in ids.iter().enumerate() {
        let hit = cold.search(&SearchRequest::new(extra.get(i as u64).to_vec(), 1));
        assert_eq!(hit.results[0].0, *id, "append {id} lost after recovery");
    }
    fs::remove_dir_all(&root).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random protocol × random crash position × random torn prefix:
    /// the same two-state invariant, driven from arbitrary coordinates
    /// instead of the exhaustive sweep (cases pinned; `PROPTEST_CASES`
    /// widens it in the faults CI lane).
    #[test]
    fn random_crash_coordinates_never_yield_a_third_state(
        scenario in 0usize..4,
        frac in 0.0f64..1.0,
        torn in any::<bool>(),
        keep in 1usize..256,
    ) {
        let (tag, setup, op, probes): (&str, &SetupFn, &CrashOp, Vec<Vec<f32>>) = match scenario {
            0 => ("p-save", &setup_plain, &op_append_save, probes_with(appended_probes())),
            1 => ("p-flush", &setup_plain, &op_append_flush, probes_with(appended_probes())),
            2 => ("p-jflush", &setup_journaled, &op_flush, generic_probes()),
            _ => ("p-compact", &setup_plain, &op_delete_compact, probes_with(deleted_probes())),
        };
        let t = Torture::prepare(tag, setup, op, probes);
        let crash_op = ((t.op_count as f64 - 1.0) * frac).round() as u64;
        t.crash_once(crash_op, torn.then_some(keep));
        t.cleanup();
    }
}
