//! Property test: a sharded index is indistinguishable from a single one.
//!
//! The scatter-gather contract: for **any** shard count, any dataset
//! domain, and any interleaving of appends, deletes, flushes and
//! compactions applied identically to both sides, a [`ShardedClimber`]
//! answers every [`SearchRequest`] — all four [`SearchMode`]s, budgeted
//! and not, through the single-request path and the micro-batch path at
//! any thread count — with outcomes **bit-identical** to a single
//! [`Climber`] over the same records: same neighbour ids, same distances,
//! same `records_scanned` and `partitions_opened`, same plan.
//!
//! The same equivalence is then pushed through persistence: the set is
//! saved (per-shard directories + super-manifest) and cold-opened, the
//! reopened set compacted shard-set-wide, and cold-opened again — each
//! checkpoint compared against the live single index.

use climber_core::series::gen::Domain;
use climber_core::{Climber, ClimberConfig, SearchRequest, ShardedClimber};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

/// The shard counts the property sweeps (1 = the degenerate set that must
/// trivially match; 8 > typical record spread per partition).
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("climber-sheq-{tag}-{}", std::process::id()))
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Every mode in the unified surface, budgeted and not, over `queries`.
fn requests(queries: &[Vec<f32>], k: usize) -> Vec<SearchRequest> {
    let mut reqs = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        reqs.push(SearchRequest::new(q.clone(), k));
        reqs.push(SearchRequest::new(q.clone(), k).exact());
        reqs.push(SearchRequest::new(q.clone(), k).smallest());
        reqs.push(
            SearchRequest::new(q.clone(), k)
                .adaptive(2)
                .with_budget(2 + i),
        );
        // Resampled takes any query length; drop a sample to exercise it.
        let short: Vec<f32> = q.iter().step_by(2).copied().collect();
        reqs.push(SearchRequest::new(short, k).resampled(2));
    }
    reqs
}

/// Asserts the sharded set and the single index answer identically —
/// full outcomes, single-request and batch paths, 1 and 8 threads.
fn assert_equivalent(
    sharded: &ShardedClimber<impl climber_core::dfs::store::PartitionStore>,
    single: &Climber<impl climber_core::dfs::store::PartitionStore>,
    queries: &[Vec<f32>],
    k: usize,
    ctx: &str,
) -> Result<(), TestCaseError> {
    let reqs = requests(queries, k);
    let want: Vec<_> = reqs.iter().map(|r| single.search(r)).collect();
    for (req, want) in reqs.iter().zip(&want) {
        let got = sharded.search(req);
        prop_assert_eq!(&got, want, "single-request path diverged ({})", ctx);
    }
    prop_assert_eq!(
        &sharded.search_many(&reqs),
        &want,
        "batch path diverged ({})",
        ctx
    );
    for threads in [1usize, 8] {
        prop_assert_eq!(
            &sharded.search_many_with_threads(&reqs, threads),
            &want,
            "batch path at {} threads diverged ({})",
            threads,
            ctx
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_equals_single_index(
        seed in 0u64..400,
        n in 120usize..220,
        appends in 4usize..24,
        deletes in 2usize..20,
        capacity in 40u64..90,
        k in 1usize..12,
        pick in 0usize..16,
        flush_every in 5usize..40,
    ) {
        // One draw covers both axes: domain × shard count.
        let num_shards = SHARD_COUNTS[pick / 4];
        let domain = [Domain::RandomWalk, Domain::Eeg, Domain::Dna, Domain::TexMex][pick % 4];
        let ds = domain.generate(n, seed);
        let extra = domain.generate(appends, seed ^ 0xE17A);
        let config = ClimberConfig::default()
            .with_paa_segments(8)
            .with_pivots(24)
            .with_prefix_len(4)
            .with_capacity(capacity)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(seed ^ 0x5EED)
            .with_workers(2);
        let single = Climber::build_in_memory(&ds, config);
        let sharded = ShardedClimber::build_in_memory(&ds, config, num_shards);

        // The identical interleaving of appends (singly and in batches),
        // deletes, and flush/compact folds, applied to both sides. The
        // set-wide id counter must hand out the single index's ids.
        let mut state = seed ^ 0xC11B;
        let mut live: Vec<u64> = (0..n as u64).collect();
        let (mut appended, mut deleted) = (0usize, 0usize);
        let mut op = 0usize;
        while appended < appends || deleted < deletes {
            let r = splitmix(&mut state);
            let do_append = if appended < appends && deleted < deletes {
                r % 2 == 0
            } else {
                appended < appends
            };
            if do_append {
                if r % 5 == 0 && appends - appended >= 3 {
                    let batch: Vec<Vec<f32>> = (0..3)
                        .map(|j| extra.get((appended + j) as u64).to_vec())
                        .collect();
                    let ids_single = single.append_batch(&batch).unwrap();
                    let ids_sharded = sharded.append_batch(&batch).unwrap();
                    prop_assert_eq!(&ids_single, &ids_sharded, "batch ids diverged");
                    live.extend(ids_single);
                    appended += 3;
                } else {
                    let vals = extra.get(appended as u64).to_vec();
                    let id_single = single.append(&vals).unwrap();
                    let id_sharded = sharded.append(&vals).unwrap();
                    prop_assert_eq!(id_single, id_sharded, "append ids diverged");
                    live.push(id_single);
                    appended += 1;
                }
            } else {
                let at = (r % live.len() as u64) as usize;
                let id = live.swap_remove(at);
                prop_assert!(single.delete(id).unwrap());
                prop_assert!(sharded.delete(id).unwrap());
                deleted += 1;
            }
            op += 1;
            if op % flush_every == 0 {
                if r % 3 == 0 {
                    single.compact().unwrap();
                    sharded.compact().unwrap();
                } else {
                    single.flush().unwrap();
                    sharded.flush().unwrap();
                }
            }
        }

        // Queries: survivors, perturbed probes, and appended records.
        let queries: Vec<Vec<f32>> = (0..4u64)
            .map(|i| {
                let mut q = ds.get((i * 37) % n as u64).to_vec();
                if i % 2 == 1 {
                    q[0] += 0.25;
                }
                q
            })
            .chain(std::iter::once(extra.get(0).to_vec()))
            .collect();

        assert_equivalent(&sharded, &single, &queries, k, "in memory")?;

        // Persistence: per-shard directories + super-manifest, then the
        // full cold-start validation of every shard.
        let dir = tmp_dir(&format!("{seed}-{n}-{num_shards}"));
        fs::remove_dir_all(&dir).ok();
        sharded.save(&dir).unwrap();
        let cold = ShardedClimber::open(&dir).unwrap();
        prop_assert!(!cold.is_writable());
        prop_assert_eq!(cold.num_shards(), num_shards);
        prop_assert_eq!(cold.router_seed(), sharded.router_seed());
        assert_equivalent(&cold, &single, &queries, k, "cold open")?;

        // Set-wide compaction on a writable reopen must change nothing
        // and leave the directory cold-openable at the new generations.
        let rw = ShardedClimber::open_rw(&dir).unwrap();
        prop_assert!(rw.is_writable());
        rw.compact().unwrap();
        assert_equivalent(&rw, &single, &queries, k, "after compaction")?;
        let cold2 = ShardedClimber::open(&dir).unwrap();
        assert_equivalent(&cold2, &single, &queries, k, "cold reopen after compaction")?;

        fs::remove_dir_all(&dir).ok();
    }
}
