//! Ablation of the dual-representation metrics (§IV-A challenge 3 /
//! §IV-C): Algorithm 1's OD + decay-weighted WD versus the naive adoption
//! of a rank metric (Spearman footrule against the centroid's id order).
//!
//! The mechanism that drives query recall is *co-assignment*: a query finds
//! its true neighbours only if they land in the same group. This test
//! measures the co-assignment rate of true-NN pairs under both policies —
//! the paper's design must match or beat the naive one on every domain,
//! and beat it clearly somewhere.

use climber_core::pivot::assignment::{assign_group, assign_group_naive_footrule, Assignment};
use climber_core::pivot::decay::DecayFunction;
use climber_core::pivot::pivots::PivotSet;
use climber_core::pivot::signature::{DualSignature, RankInsensitive};
use climber_core::repr::paa::paa;
use climber_core::series::gen::Domain;
use climber_core::series::ground_truth::exact_knn;

const N: usize = 1_200;
const W: usize = 16;
const M: usize = 8;

fn centroid_of(a: &Assignment) -> i64 {
    a.centroid().map(|c| c as i64).unwrap_or(-1)
}

/// Builds signatures + a plausible centroid set (the most frequent
/// insensitive signatures, ε-separated) for one domain.
fn setup(domain: Domain) -> (Vec<DualSignature>, Vec<RankInsensitive>) {
    let ds = domain.generate(N, 97);
    let pivots = PivotSet::select_random(&ds, W, 96, 5);
    let sigs: Vec<DualSignature> = (0..N as u64)
        .map(|i| DualSignature::extract_from_paa(&paa(ds.get(i), W), &pivots, M))
        .collect();
    // frequency-ranked centroids, like Algorithm 2
    let mut freq: std::collections::HashMap<Vec<u16>, u64> = std::collections::HashMap::new();
    for s in &sigs {
        *freq.entry(s.insensitive.0.clone()).or_insert(0) += 1;
    }
    let list: Vec<(RankInsensitive, u64)> = freq
        .into_iter()
        .map(|(ids, f)| (RankInsensitive(ids), f))
        .collect();
    let sel = climber_core::index::centroids::compute_centroids(&list, 1.0, 40, 2, Some(12));
    (sigs, sel.centroids)
}

/// Fraction of (query, true-NN) pairs co-assigned to one group.
fn co_assignment_rate<F>(domain: Domain, sigs: &[DualSignature], assign: F) -> f64
where
    F: Fn(&DualSignature) -> i64,
{
    let ds = domain.generate(N, 97);
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in (0..60u64).map(|i| i * (N as u64 / 60)) {
        let nn = exact_knn(&ds, ds.get(q), 2)[1].0; // skip self
        let gq = assign(&sigs[q as usize]);
        let gn = assign(&sigs[nn as usize]);
        if gq >= 0 {
            total += 1;
            if gq == gn {
                hits += 1;
            }
        }
    }
    assert!(total > 0);
    hits as f64 / total as f64
}

#[test]
fn od_wd_co_assignment_compares_favourably_to_naive_footrule() {
    // Measured at repo scale the picture is nuanced (the induced footrule
    // degenerates towards an overlap count when ids are absent, so it is
    // not a strawman): OD/WD must win clearly on at least one domain and
    // never collapse anywhere. Per-domain rates are printed for
    // EXPERIMENTS.md.
    let mut wins = 0;
    let mut losses = 0;
    for domain in Domain::ALL {
        let (sigs, centroids) = setup(domain);
        let od = co_assignment_rate(domain, &sigs, |s| {
            centroid_of(&assign_group(&centroids, s, DecayFunction::DEFAULT, 0))
        });
        let naive = co_assignment_rate(domain, &sigs, |s| {
            centroid_of(&assign_group_naive_footrule(&centroids, s))
        });
        println!(
            "{:<11} co-assignment: OD/WD {od:.3} vs naive footrule {naive:.3}",
            domain.name()
        );
        assert!(
            od > 0.3,
            "{}: OD/WD co-assignment collapsed to {od:.3}",
            domain.name()
        );
        if od > naive + 0.02 {
            wins += 1;
        }
        if naive > od + 0.02 {
            losses += 1;
        }
    }
    assert!(
        wins >= 1,
        "OD/WD never clearly beat the naive metric on any domain"
    );
    assert!(
        wins >= losses,
        "naive footrule won more domains ({losses}) than OD/WD ({wins})"
    );
}

#[test]
fn decay_functions_agree_on_unambiguous_cases() {
    // Ablation of Definition 9: exponential and linear decay may differ on
    // ties, but whenever OD alone decides (unique minimum), the decay
    // choice must not change the assignment.
    for domain in [Domain::TexMex, Domain::RandomWalk] {
        let (sigs, centroids) = setup(domain);
        let mut checked = 0;
        for s in sigs.iter().take(300) {
            let exp = assign_group(&centroids, s, DecayFunction::DEFAULT, 1);
            let lin = assign_group(&centroids, s, DecayFunction::Linear, 1);
            if let Assignment::ByOverlap(i) = exp {
                assert_eq!(lin, Assignment::ByOverlap(i), "{}", domain.name());
                checked += 1;
            }
        }
        assert!(checked > 0, "no OD-unambiguous assignments found");
    }
}
