//! Cross-system comparison: the orderings the paper's Figure 7 reports
//! must hold at repo scale — Dss exact, CLIMBER above the iSAX systems.

use climber_core::baselines::dpisax::{DpisaxConfig, DpisaxIndex};
use climber_core::baselines::dss::dss_query;
use climber_core::baselines::tardis::{TardisConfig, TardisIndex};
use climber_core::dfs::store::MemStore;
use climber_core::series::gen::{query_workload, Domain};
use climber_core::series::ground_truth::exact_knn;
use climber_core::series::recall::recall_of_results;
use climber_core::{Climber, ClimberConfig};

const N: usize = 4_000;
const K: usize = 40;
const CAPACITY: u64 = 250;

fn climber_cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(16)
        .with_pivots(128)
        .with_prefix_len(10)
        .with_capacity(CAPACITY)
        .with_alpha(0.2)
        .with_epsilon(2)
        .with_max_centroids(8)
        .with_seed(301)
        .with_workers(2)
}

/// Mean recall of a query closure over a fixed workload.
fn mean_recall<F>(ds: &climber_core::series::Dataset, queries: &[u64], mut run: F) -> f64
where
    F: FnMut(&[f32]) -> Vec<(u64, f64)>,
{
    let mut r = 0.0;
    for &qid in queries {
        let got = run(ds.get(qid));
        let want = exact_knn(ds, ds.get(qid), K);
        r += recall_of_results(&got, &want) / queries.len() as f64;
    }
    r
}

#[test]
fn dss_is_exact_and_climber_beats_isax_systems() {
    // TexMex (clustered) is the paper's clearest separation.
    let ds = Domain::TexMex.generate(N, 501);
    let queries = query_workload(&ds, 10, 77);

    let climber = Climber::build_in_memory(&ds, climber_cfg());
    let r_climber = mean_recall(&ds, &queries, |q| climber.knn_adaptive(q, K, 4).results);

    let dstore = MemStore::new();
    let (dpisax, _) = DpisaxIndex::build(
        &ds,
        &dstore,
        DpisaxConfig {
            segments: 16,
            max_bits: 8,
            capacity: CAPACITY,
            alpha: 0.2,
            seed: 502,
        },
    );
    let r_dpisax = mean_recall(&ds, &queries, |q| dpisax.query(&dstore, q, K).results);

    let tstore = MemStore::new();
    let (tardis, _) = TardisIndex::build(
        &ds,
        &tstore,
        TardisConfig {
            segments: 8,
            max_bits: 6,
            capacity: CAPACITY,
            alpha: 0.2,
            seed: 503,
        },
    );
    let r_tardis = mean_recall(&ds, &queries, |q| tardis.query(&tstore, q, K).results);

    // Dss on CLIMBER's own partitions is exact.
    use climber_core::dfs::store::PartitionStore;
    let r_dss = mean_recall(&ds, &queries, |q| dss_query(climber.store(), q, K).results);
    assert!((r_dss - 1.0).abs() < 1e-9, "Dss recall {r_dss} != 1.0");

    // Paper Figure 7(b): CLIMBER 25-35 recall points above both baselines.
    assert!(
        r_climber > r_dpisax + 0.1,
        "CLIMBER {r_climber:.3} not clearly above DPiSAX {r_dpisax:.3}"
    );
    assert!(
        r_climber > r_tardis + 0.05,
        "CLIMBER {r_climber:.3} not clearly above TARDIS {r_tardis:.3}"
    );
    let _ = climber.store().ids(); // silence unused trait import on some paths
}

#[test]
fn dss_scans_everything_and_is_slowest_in_records() {
    let ds = Domain::RandomWalk.generate(2_000, 601);
    let climber = Climber::build_in_memory(&ds, climber_cfg());
    let q = ds.get(4);
    let full = dss_query(climber.store(), q, K);
    let fast = climber.knn_adaptive(q, K, 4);
    assert_eq!(full.records_scanned, 2_000);
    assert!(
        fast.records_scanned < full.records_scanned / 2,
        "index read {} of {} records",
        fast.records_scanned,
        full.records_scanned
    );
}

#[test]
fn odyssey_is_exact_on_climber_data() {
    use climber_core::baselines::odyssey::{OdysseyConfig, OdysseyIndex};
    let ds = Domain::Eeg.generate(1_500, 701);
    let (ody, _) = OdysseyIndex::build(&ds, OdysseyConfig::default()).unwrap();
    for &qid in &query_workload(&ds, 6, 9) {
        let got = ody.query(&ds, ds.get(qid), K);
        let want = exact_knn(&ds, ds.get(qid), K);
        assert_eq!(got.results, want, "query {qid}");
    }
}

#[test]
fn hnsw_recalls_more_than_lsh() {
    use climber_core::baselines::hnsw::{HnswConfig, HnswIndex};
    use climber_core::baselines::lsh::{LshConfig, LshIndex};
    let ds = Domain::TexMex.generate(2_000, 801);
    let queries = query_workload(&ds, 8, 11);
    let (hnsw, _) = HnswIndex::build(&ds, HnswConfig::default()).unwrap();
    let (lsh, _) = LshIndex::build(&ds, LshConfig::default());
    let r_hnsw = mean_recall(&ds, &queries, |q| hnsw.query(&ds, q, K).results);
    let r_lsh = mean_recall(&ds, &queries, |q| lsh.query(&ds, q, K).results);
    // §II: graphs ~0.9+, LSH ~0.3.
    assert!(r_hnsw > 0.75, "HNSW recall {r_hnsw:.3}");
    assert!(r_hnsw > r_lsh + 0.2, "HNSW {r_hnsw:.3} vs LSH {r_lsh:.3}");
}
