//! Property test: the paged block cache is **invisible**.
//!
//! Three contracts, checked independently:
//!
//! 1. **End-to-end equality.** A [`Climber`] and a [`ShardedClimber`]
//!    opened through [`Climber::open_with_cache`] answer every
//!    [`SearchRequest`] — all four `SearchMode`s, budgeted and not,
//!    single-request and batch paths — **bit-identically** to a
//!    cacheless baseline over a byte-identical directory: same
//!    neighbour ids, same distances, same `records_scanned`, same plan.
//!    The comparison runs cold (miss path), warm (hit path), with a
//!    pending delta, after flush and compaction (invalidation), under a
//!    one-page budget that forces eviction on nearly every read, and
//!    with compressed (CLBP v2) rewrites on or off.
//!
//! 2. **Budget unification.** The block cache and the quantized record
//!    cache draw from one [`CacheLedger`]; disabling the quantized
//!    cache releases exactly its bytes back to the shared budget.
//!
//! 3. **Crash consistency.** The compressed-rewrite flush protocol is
//!    tortured with the same two-state invariant as
//!    `crash_consistency.rs` — frozen disk at every op, torn prefixes at
//!    every write — and the recovered directory must answer identically
//!    whether it is reopened with or without a cache.

use climber_core::dfs::fsio::{FaultFs, FsRef};
use climber_core::dfs::page::{is_compressed, PAGE_SIZE};
use climber_core::dfs::store::{partition_file_name, DiskStore, PartitionStore};
use climber_core::series::gen::Domain;
use climber_core::{
    CacheConfig, Climber, ClimberConfig, ClimberError, QueryOutcome, RecoveryPolicy, SearchRequest,
    ShardedClimber,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::fs;
use std::path::{Path, PathBuf};

const DOMAINS: [Domain; 4] = [Domain::RandomWalk, Domain::Eeg, Domain::Dna, Domain::TexMex];

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("climber-cacheq-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::remove_dir_all(dst).ok();
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_dir(&from, &to);
        } else {
            fs::copy(&from, &to).unwrap();
        }
    }
}

/// Every mode in the unified surface, budgeted and not, over `queries`
/// (mirrors the request matrix of `quantized_equivalence`).
fn requests(queries: &[Vec<f32>], k: usize) -> Vec<SearchRequest> {
    let mut reqs = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        reqs.push(SearchRequest::new(q.clone(), k));
        reqs.push(SearchRequest::new(q.clone(), k).exact());
        reqs.push(SearchRequest::new(q.clone(), k).smallest());
        reqs.push(
            SearchRequest::new(q.clone(), k)
                .adaptive(2)
                .with_budget(2 + i),
        );
        let short: Vec<f32> = q.iter().step_by(2).copied().collect();
        reqs.push(SearchRequest::new(short, k).resampled(2));
    }
    reqs
}

/// Runs the full request matrix against all three indexes and insists on
/// bit-identical outcomes, through single-request and batch paths.
fn assert_invisible(
    baseline: &Climber<DiskStore>,
    cached: &Climber<DiskStore>,
    sharded: &ShardedClimber<DiskStore>,
    reqs: &[SearchRequest],
    ctx: &str,
) -> Result<(), TestCaseError> {
    let want: Vec<_> = reqs.iter().map(|r| baseline.search(r)).collect();
    for (req, want) in reqs.iter().zip(&want) {
        prop_assert_eq!(
            &cached.search(req),
            want,
            "cache-on single index diverged ({})",
            ctx
        );
        prop_assert_eq!(
            &sharded.search(req),
            want,
            "cache-on sharded single-request path diverged ({})",
            ctx
        );
    }
    prop_assert_eq!(
        &sharded.search_many(reqs),
        &want,
        "cache-on sharded batch path diverged ({})",
        ctx
    );
    Ok(())
}

/// The ledger charge of a partition image of `len` bytes: whole pages.
fn charge_of(len: usize) -> usize {
    len.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Contract 1 (+2): the block cache changes where bytes come from,
    /// never what they decode to — across modes, shard counts, budgets,
    /// compression, updates, and maintenance — and shares its budget
    /// with the quantized cache through one ledger.
    #[test]
    fn block_cache_is_invisible(
        seed in 0u64..400,
        n in 120usize..170,
        k in 1usize..8,
        pick in 0usize..16,
        capacity in 40u64..80,
        tiny in any::<bool>(),
        compress in any::<bool>(),
    ) {
        let domain = DOMAINS[pick % 4];
        let num_shards = 1 + pick % 3;
        let ds = domain.generate(n, seed);
        let extra = domain.generate(6, seed ^ 0xE17A);
        let config = ClimberConfig::default()
            .with_paa_segments(8)
            .with_pivots(24)
            .with_prefix_len(4)
            .with_capacity(capacity)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(seed ^ 0x5EED)
            .with_workers(2);

        let root = tmp_root(&format!("eq-{seed}-{pick}"));
        let base_dir = root.join("base");
        let cached_dir = root.join("cached");
        let shard_dir = root.join("shards");
        drop(Climber::build_on_disk(&ds, &base_dir, config).unwrap());
        // Byte-identical directory for the cached open: equality below is
        // over the *same* committed bytes, not a re-build.
        copy_dir(&base_dir, &cached_dir);
        drop(ShardedClimber::build_on_disk(&ds, &shard_dir, config, num_shards).unwrap());

        let cache_bytes = if tiny { PAGE_SIZE } else { 256 << 20 };
        let mut cc = CacheConfig::default().with_capacity_bytes(cache_bytes);
        if compress {
            cc = cc.with_compression();
        }

        let baseline = Climber::open_rw(&base_dir).unwrap();
        let (cached, report) =
            Climber::open_with_cache(&cached_dir, RecoveryPolicy::Strict, cc).unwrap();
        prop_assert!(report.is_clean());
        let (sharded, sreport) =
            ShardedClimber::open_with_cache(&shard_dir, RecoveryPolicy::Strict, cc).unwrap();
        prop_assert!(sreport.is_clean());
        if !tiny {
            // A roomy budget must have been pre-warmed by the open's own
            // validation reads — and the report must say so.
            prop_assert!(report.warmed_bytes > 0, "cold open warmed nothing");
            prop_assert!(sreport.warmed_bytes > 0, "sharded cold open warmed nothing");
        }
        let block = cached.block_cache().expect("cached open must attach a cache");
        prop_assert!(sharded.block_cache().is_some());

        // How many partition images even fit the budget (a one-page
        // budget can only evict if at least two images are insertable).
        let insertable = cached
            .store()
            .ids()
            .iter()
            .filter(|id| {
                let len = fs::metadata(cached_dir.join(partition_file_name(**id)))
                    .unwrap()
                    .len() as usize;
                charge_of(len) <= cache_bytes
            })
            .count();

        let queries: Vec<Vec<f32>> = (0..3u64)
            .map(|i| {
                let mut q = ds.get((i * 41) % n as u64).to_vec();
                if i % 2 == 1 {
                    q[0] += 0.25;
                }
                q
            })
            .collect();
        let reqs = requests(&queries, k);

        // Cold pass populates through the miss path; the warm pass is
        // served from memory. Both bit-identical to the cacheless index.
        assert_invisible(&baseline, &cached, &sharded, &reqs, "cold cache")?;
        assert_invisible(&baseline, &cached, &sharded, &reqs, "warm cache")?;

        let stats = block.stats();
        prop_assert!(
            stats.hits + stats.misses > 0,
            "sealed reads never consulted the cache"
        );
        if tiny {
            // A one-page budget cannot keep every image resident, so at
            // least one sealed read went to disk.
            prop_assert!(stats.misses > 0, "tiny budget never missed: {stats:?}");
        } else {
            // A roomy budget was fully warmed by the open, so reads hit.
            prop_assert!(stats.hits > 0, "warm pass never hit: {stats:?}");
        }
        prop_assert!(
            stats.resident_bytes <= cache_bytes as u64,
            "budget exceeded: {} resident > {} budget",
            stats.resident_bytes,
            cache_bytes
        );
        if tiny && insertable >= 2 {
            prop_assert!(stats.evictions > 0, "one-page budget never evicted: {stats:?}");
        }

        // serve_io overlays the very same counters (quiescent, so the
        // two snapshots must agree), and the sharded set overlays its
        // one shared cache exactly once.
        let io = cached.serve_io();
        prop_assert_eq!(io.cache_hits, block.stats().hits);
        prop_assert_eq!(io.cache_misses, block.stats().misses);
        prop_assert_eq!(io.cache_resident_bytes, block.stats().resident_bytes);
        let sblock = sharded.block_cache().unwrap();
        prop_assert_eq!(sharded.serve_io().cache_resident_bytes, sblock.stats().resident_bytes);

        // A delta segment bypasses the cache; equality must survive the
        // mixed sealed/unsealed state and the deletes-present state.
        for j in 0..3u64 {
            let vals = extra.get(j).to_vec();
            let a = baseline.append(&vals).unwrap();
            prop_assert_eq!(cached.append(&vals).unwrap(), a);
            prop_assert_eq!(sharded.append(&vals).unwrap(), a);
        }
        prop_assert!(baseline.delete(seed % n as u64).unwrap());
        prop_assert!(cached.delete(seed % n as u64).unwrap());
        prop_assert!(sharded.delete(seed % n as u64).unwrap());
        assert_invisible(&baseline, &cached, &sharded, &reqs, "with delta")?;

        // Flush rewrites the touched partitions — compressed when the
        // config says so — and must drop their stale cache entries.
        baseline.flush().unwrap();
        cached.flush().unwrap();
        sharded.flush().unwrap();
        assert_invisible(&baseline, &cached, &sharded, &reqs, "after flush")?;

        // Compaction rewrites partitions wholesale.
        baseline.compact().unwrap();
        cached.compact().unwrap();
        sharded.compact().unwrap();
        assert_invisible(&baseline, &cached, &sharded, &reqs, "after compaction")?;

        // The on-disk format after maintenance matches the config: v2
        // somewhere iff compression is on; without it every resident
        // entry stores exactly its raw bytes (ratio is exactly 1).
        let any_v2 = cached.store().ids().iter().any(|id| {
            is_compressed(&fs::read(cached_dir.join(partition_file_name(*id))).unwrap())
        });
        prop_assert_eq!(any_v2, compress, "compression config vs on-disk format");
        if !compress {
            let s = block.stats();
            prop_assert_eq!(s.raw_bytes, s.stored_bytes, "uncompressed entries must charge 1:1");
        }

        // Contract 2: the quantized cache draws on the same ledger, and
        // disabling it hands back exactly its bytes.
        if !tiny {
            let ledger = block.ledger();
            cached.set_quant_enabled(true);
            sharded.set_quant_enabled(true);
            assert_invisible(&baseline, &cached, &sharded, &reqs, "quant sharing the budget")?;
            let qbytes = cached.quant_cache().bytes();
            prop_assert!(qbytes > 0, "warm pass never populated the quantized cache");
            let used_with_quant = ledger.used();
            prop_assert!(used_with_quant <= ledger.capacity());
            cached.set_quant_enabled(false);
            prop_assert_eq!(
                ledger.used(),
                used_with_quant - qbytes,
                "disabling the quantized cache must release exactly its bytes"
            );
            sharded.set_quant_enabled(false);
            assert_invisible(&baseline, &cached, &sharded, &reqs, "after quant disable")?;
        }

        // Cold truth: a cacheless reopen of the cached (possibly
        // compressed) directory answers identically — the on-disk state
        // the cached index maintained is the canonical one.
        drop(cached);
        let reopened = Climber::open_rw(&cached_dir).unwrap();
        for req in &reqs {
            prop_assert_eq!(
                reopened.search(req),
                baseline.search(req),
                "cacheless reopen of the cache-maintained directory diverged"
            );
        }

        fs::remove_dir_all(&root).ok();
    }
}

// ---------------------------------------------------------------------
// Contract 3: crash torture of the compressed-rewrite flush protocol,
// mirroring the harness in `crash_consistency.rs`.
// ---------------------------------------------------------------------

fn cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(32)
        .with_prefix_len(5)
        .with_capacity(60)
        .with_alpha(0.5)
        .with_epsilon(1)
        .with_seed(99)
        .with_workers(2)
}

fn torture_cache_config() -> CacheConfig {
    CacheConfig::default()
        .with_capacity_bytes(8 << 20)
        .with_compression()
}

/// A committed state's fingerprint: manifest generation plus the exact
/// answers to the probe set.
type Fingerprint = (u64, Vec<QueryOutcome>);

/// Recovers `dir` with the real filesystem and fingerprints the
/// committed state — **twice**: once through a plain writable open (the
/// canonical recovery) and once through a cached open of the same
/// directory. The two must agree, so a crash can never leave bytes
/// behind that only one read path accepts.
fn recovered_state(dir: &Path, probes: &[Vec<f32>]) -> Fingerprint {
    let c = Climber::open_rw(dir).unwrap_or_else(|e| {
        panic!("recovery open of {} failed: {e}", dir.display());
    });
    let answers: Vec<_> = probes
        .iter()
        .map(|q| c.search(&SearchRequest::new(q.clone(), 5)))
        .collect();
    let plain = (c.generation(), answers);
    drop(c);

    let (cc, _) = Climber::open_with_cache(dir, RecoveryPolicy::Strict, torture_cache_config())
        .unwrap_or_else(|e| panic!("cached recovery open of {} failed: {e}", dir.display()));
    let cached_answers: Vec<_> = probes
        .iter()
        .map(|q| cc.search(&SearchRequest::new(q.clone(), 5)))
        .collect();
    assert_eq!(
        plain,
        (cc.generation(), cached_answers),
        "cached reopen of the recovered directory diverged from the plain one"
    );
    plain
}

fn assert_no_droppings(dir: &Path) {
    for entry in fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            !name.contains(".tmp."),
            "temp dropping survived recovery: {name}"
        );
        assert!(
            !name.ends_with(".new"),
            "stray stage survived recovery: {name}"
        );
    }
}

/// The torture op: six appends and a flush, on an index whose cache
/// config turns on compressed rewrites — every partition the fold
/// touches lands through the CLBP v2 write path.
fn op_append_flush(c: &Climber<DiskStore>) -> Result<(), ClimberError> {
    let extra = Domain::RandomWalk.generate(6, 33);
    for i in 0..6 {
        c.append(extra.get(i))?;
    }
    c.flush()?;
    Ok(())
}

struct Torture {
    root: PathBuf,
    probes: Vec<Vec<f32>>,
    state_a: Fingerprint,
    state_b: Fingerprint,
    op_count: u64,
    write_ops: Vec<u64>,
}

impl Torture {
    fn prepare() -> Self {
        let root = tmp_root("torture");
        let golden = root.join("A");
        let ds = Domain::RandomWalk.generate(140, 21);
        drop(Climber::build_on_disk(&ds, &golden, cfg()).unwrap());

        // Probes: background coverage plus the six appended series,
        // which answer exactly in state B and are absent in state A.
        let mut probes: Vec<Vec<f32>> = {
            let g = Domain::RandomWalk.generate(2, 555);
            (0..2).map(|i| g.get(i).to_vec()).collect()
        };
        let appended = Domain::RandomWalk.generate(6, 33);
        probes.extend((0..6).map(|i| appended.get(i).to_vec()));

        let state_a = recovered_state(&golden, &probes);

        // Fault-free dry run through a counting FaultFs to learn the
        // protocol's exact op count and its write-op indices.
        let dry = root.join("dry");
        copy_dir(&golden, &dry);
        let ff = FaultFs::over_std();
        let fsref: FsRef = ff.clone();
        let (c, _) = Climber::open_with_cache_fs(
            &dry,
            fsref,
            RecoveryPolicy::Strict,
            torture_cache_config(),
        )
        .unwrap();
        ff.arm();
        op_append_flush(&c).expect("fault-free run of the compressed flush");
        ff.disarm();
        drop(c);
        let op_count = ff.op_count();
        assert!(op_count > 0, "protocol performed no filesystem operations");
        let write_ops: Vec<u64> = ff
            .trace()
            .iter()
            .enumerate()
            .filter(|(_, (kind, _))| *kind == climber_core::dfs::fsio::FsOp::Write)
            .map(|(i, _)| i as u64)
            .collect();
        assert!(
            !write_ops.is_empty(),
            "a compressed flush must write partition bytes"
        );
        // The dry run's flush really exercised the v2 write path.
        let any_v2 = fs::read_dir(&dry).unwrap().any(|e| {
            let p = e.unwrap().path();
            p.extension().is_some() && fs::read(&p).map(|b| is_compressed(&b)).unwrap_or(false)
        });
        assert!(any_v2, "dry-run flush left no compressed partition behind");

        let state_b = recovered_state(&dry, &probes);
        assert_ne!(
            state_a, state_b,
            "the probe set must tell the committed states apart"
        );
        Self {
            root,
            probes,
            state_a,
            state_b,
            op_count,
            write_ops,
        }
    }

    fn crash_once(&self, crash_op: u64, torn_keep: Option<usize>) {
        let work = self.root.join("work");
        copy_dir(&self.root.join("A"), &work);
        let ff = FaultFs::over_std();
        let fsref: FsRef = ff.clone();
        let (c, _) = Climber::open_with_cache_fs(
            &work,
            fsref,
            RecoveryPolicy::Strict,
            torture_cache_config(),
        )
        .expect("pre-crash open is fault-free");
        match torn_keep {
            Some(keep) => ff.torn_crash_at(crash_op, keep),
            None => ff.crash_at(crash_op),
        }
        ff.arm();
        let result = op_append_flush(&c);
        ff.disarm();
        drop(c);

        let got = recovered_state(&work, &self.probes);
        let label = format!("crash at op {crash_op} (torn: {torn_keep:?})");
        if got == self.state_a {
            assert!(
                result.is_err(),
                "{label}: op claimed success but its effects vanished (state A)"
            );
        } else if got != self.state_b {
            panic!(
                "{label}: third state — generation {} is neither A (gen {}) nor B (gen {})",
                got.0, self.state_a.0, self.state_b.0
            );
        }
        assert_no_droppings(&work);
    }

    fn cleanup(self) {
        fs::remove_dir_all(&self.root).ok();
    }
}

/// Exhaustive sweep: a pure crash at every op of the compressed flush,
/// then a torn write (1 byte kept, and most-of-the-page kept) at every
/// write op. The recovered directory must be state A or state B — never
/// a third — under both the plain and the cached read path.
#[test]
fn compressed_flush_survives_every_crash_point() {
    let t = Torture::prepare();
    for i in 0..t.op_count {
        t.crash_once(i, None);
    }
    let writes = t.write_ops.clone();
    for w in writes {
        for keep in [1, 4096] {
            t.crash_once(w, Some(keep));
        }
    }
    t.cleanup();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Random crash coordinates over the same protocol (cases pinned;
    /// `PROPTEST_CASES` widens it in the CI cache lane).
    #[test]
    fn random_compressed_crash_never_yields_a_third_state(
        frac in 0.0f64..1.0,
        torn in any::<bool>(),
        keep in 1usize..256,
    ) {
        let t = Torture::prepare();
        let crash_op = ((t.op_count as f64 - 1.0) * frac).round() as u64;
        t.crash_once(crash_op, torn.then_some(keep));
        t.cleanup();
    }
}
