//! Fault injection against the shard set: broken directories fail to
//! open with a typed error naming the shard, and a shard failing
//! mid-scatter degrades a query to a reported partial answer — never a
//! panic, never a hang.

use climber_core::dfs::manifest::OpenError;
use climber_core::series::gen::Domain;
use climber_core::{
    Climber, ClimberConfig, ClimberError, RecoveryPolicy, SearchRequest, ShardedClimber,
    SHARD_SET_FILE,
};
use std::fs;
use std::path::{Path, PathBuf};

fn cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(32)
        .with_prefix_len(5)
        .with_capacity(80)
        .with_alpha(0.5)
        .with_epsilon(1)
        .with_seed(99)
        .with_workers(2)
}

fn build(
    tag: &str,
    shards: usize,
) -> (PathBuf, ShardedClimber<climber_core::dfs::store::DiskStore>) {
    let dir = std::env::temp_dir().join(format!("climber-fault-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    let ds = Domain::RandomWalk.generate(300, 21);
    let set = ShardedClimber::build_on_disk(&ds, &dir, cfg(), shards).unwrap();
    (dir, set)
}

/// The shard index named by a typed shard-open failure.
fn shard_of_error(err: &ClimberError) -> Option<usize> {
    match err {
        ClimberError::Open(OpenError::Shard { shard, .. }) => Some(*shard),
        _ => None,
    }
}

#[test]
fn missing_shard_directory_names_the_shard() {
    let (dir, set) = build("missing", 3);
    drop(set);
    fs::remove_dir_all(dir.join("shard-001")).unwrap();
    let err = ShardedClimber::open(&dir).unwrap_err();
    assert_eq!(shard_of_error(&err), Some(1), "got: {err}");
    assert!(err.to_string().contains("shard 1"), "got: {err}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_shard_partition_names_the_shard() {
    let (dir, set) = build("corrupt-part", 2);
    drop(set);
    // Flip bytes in the middle of one of shard-000's partition files; the
    // per-shard checksum validation must catch it and the set open must
    // attribute it.
    let part = first_partition_file(&dir.join("shard-000"));
    let mut bytes = fs::read(&part).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&part, bytes).unwrap();
    let err = ShardedClimber::open(&dir).unwrap_err();
    assert_eq!(shard_of_error(&err), Some(0), "got: {err}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_super_manifest_is_a_typed_error() {
    let (dir, set) = build("corrupt-sm", 2);
    drop(set);
    let path = dir.join(SHARD_SET_FILE);
    let mut bytes = fs::read(&path).unwrap();
    bytes[6] ^= 0xFF;
    fs::write(&path, bytes).unwrap();
    let err = ShardedClimber::open(&dir).unwrap_err();
    assert!(
        matches!(err, ClimberError::Open(OpenError::CorruptShardSet(_))),
        "got: {err}"
    );
    // Truncation is caught too (not an index out-of-bounds panic).
    fs::write(&path, b"CLSH").unwrap();
    let err = ShardedClimber::open(&dir).unwrap_err();
    assert!(
        matches!(err, ClimberError::Open(OpenError::CorruptShardSet(_))),
        "got: {err}"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_super_manifest_is_missing_manifest() {
    let (dir, set) = build("no-sm", 2);
    drop(set);
    fs::remove_file(dir.join(SHARD_SET_FILE)).unwrap();
    let err = ShardedClimber::open(&dir).unwrap_err();
    assert!(
        matches!(err, ClimberError::Open(OpenError::MissingManifest(_))),
        "got: {err}"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn generation_drift_behind_the_sets_back_is_refused() {
    let (dir, set) = build("drift", 2);
    drop(set);
    // Mutate shard 1 directly through the single-index surface — an
    // operator "fixing" one shard out-of-band. Its sealed generation now
    // disagrees with the super-manifest's snapshot.
    let shard1 = Climber::open_rw(dir.join("shard-001")).unwrap();
    let probe: Vec<f32> = Domain::RandomWalk.generate(1, 77).get(0).to_vec();
    shard1.append(&probe).unwrap();
    shard1.flush().unwrap();
    drop(shard1);
    let err = ShardedClimber::open(&dir).unwrap_err();
    assert_eq!(shard_of_error(&err), Some(1), "got: {err}");
    assert!(err.to_string().contains("generation"), "got: {err}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_failing_mid_scatter_degrades_with_status_not_panic() {
    let (dir, set) = build("scatter", 2);
    let ds = Domain::RandomWalk.generate(300, 21);
    let reqs: Vec<SearchRequest> = (0..4u64)
        .map(|i| SearchRequest::new(ds.get(i * 61).to_vec(), 8))
        .collect();
    let (healthy_out, healthy_status) = set.search_many_with_status(&reqs, 0);
    assert!(healthy_status.iter().all(|s| s.healthy));

    // Rip shard 1's partition files out from under the open set — the
    // disk store re-reads files per open, so the next scatter hits the
    // missing files mid-flight.
    for entry in fs::read_dir(dir.join("shard-001")).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "clbp") {
            fs::remove_file(p).unwrap();
        }
    }
    let (out, statuses) = set.search_many_with_status(&reqs, 0);
    assert_eq!(out.len(), reqs.len(), "every request still gets an answer");
    assert!(statuses[0].healthy, "shard 0 is untouched");
    assert!(!statuses[1].healthy, "shard 1 lost its partitions");
    assert!(!statuses[1].failed_partitions.is_empty());
    // The degraded answer is exactly the surviving shard's contribution:
    // well-formed, sorted, no phantom records from the dead shard.
    for (outcome, healthy) in out.iter().zip(&healthy_out) {
        assert!(outcome.results.len() <= healthy.results.len());
        assert!(outcome
            .results
            .windows(2)
            .all(|w| (w[0].1, w[0].0) < (w[1].1, w[1].0)));
        for r in &outcome.results {
            assert_eq!(
                set.shard_of(r.0),
                0,
                "record {} served by a dead shard",
                r.0
            );
        }
    }
    // The plain (status-less) surface degrades the same way, no panic.
    let plain = set.search_many(&reqs);
    assert_eq!(plain, out);
    fs::remove_dir_all(&dir).ok();
}

fn first_partition_file(shard_dir: &Path) -> PathBuf {
    fs::read_dir(shard_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "clbp"))
        .expect("shard holds at least one partition file")
}

/// The request matrix the quarantine/repair round-trips replay at every
/// checkpoint, so "bit-identical" covers many queries, not one.
fn request_matrix(ds: &climber_core::series::dataset::Dataset) -> Vec<SearchRequest> {
    (0..6u64)
        .map(|i| SearchRequest::new(ds.get(i * 47).to_vec(), 8))
        .collect()
}

#[test]
fn quarantined_partition_readmitted_by_scrub_bit_identical() {
    let (dir, set) = build("scrub-part", 4);
    let ds = Domain::RandomWalk.generate(300, 21);
    let reqs = request_matrix(&ds);
    let healthy_out = set.search_many(&reqs);
    let healthy_routes: Vec<usize> = (0..20).map(|id| set.shard_of(id)).collect();
    assert!(set.health().is_healthy());
    drop(set);

    // Corrupt one partition of shard 2 (keeping the good bytes aside);
    // the strict open refuses, the quarantining open serves degraded.
    let part = first_partition_file(&dir.join("shard-002"));
    let good = fs::read(&part).unwrap();
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    fs::write(&part, &bad).unwrap();
    assert!(ShardedClimber::open(&dir).is_err(), "strict must refuse");

    let (mut set, report) = ShardedClimber::open_with(&dir, RecoveryPolicy::Quarantine).unwrap();
    assert_eq!(report.quarantined_partitions.len(), 1);
    assert!(
        report.dead_shards.is_empty(),
        "the shard itself still opens"
    );
    let health = set.health();
    assert_eq!(health.shards, 4);
    assert_eq!(health.dead_shards, 0);
    assert_eq!(health.quarantined_partitions, 1);

    // Degraded serving: every request answers, well-formed, no panic.
    let degraded = set.search_many(&reqs);
    assert_eq!(degraded.len(), reqs.len());
    for out in &degraded {
        assert!(out
            .results
            .windows(2)
            .all(|w| (w[0].1, w[0].0) < (w[1].1, w[1].0)));
    }

    // A scrub with the damage still in place keeps it quarantined.
    let stuck = set.scrub().unwrap();
    assert!(!stuck.is_fully_healthy());
    assert_eq!(stuck.still_quarantined.len(), 1);

    // Repair (operator restores the bytes), scrub re-admits in place.
    fs::write(&part, &good).unwrap();
    let repaired = set.scrub().unwrap();
    assert!(repaired.is_fully_healthy(), "{repaired:?}");
    assert_eq!(repaired.readmitted.len(), 1);
    assert!(set.health().is_healthy());

    // Bit-identical to the healthy baseline, routing untouched.
    assert_eq!(set.search_many(&reqs), healthy_out);
    let routes: Vec<usize> = (0..20).map(|id| set.shard_of(id)).collect();
    assert_eq!(routes, healthy_routes);
    drop(set);

    // A fresh strict reopen of the repaired directory agrees too.
    let reopened = ShardedClimber::open(&dir).unwrap();
    assert_eq!(reopened.search_many(&reqs), healthy_out);
    let routes: Vec<usize> = (0..20).map(|id| reopened.shard_of(id)).collect();
    assert_eq!(routes, healthy_routes);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn dead_shard_readmitted_by_scrub_after_repair() {
    let (dir, set) = build("scrub-dead", 3);
    let ds = Domain::RandomWalk.generate(300, 21);
    let reqs = request_matrix(&ds);
    let healthy_out = set.search_many(&reqs);
    let healthy_routes: Vec<usize> = (0..20).map(|id| set.shard_of(id)).collect();
    drop(set);

    // Destroy shard 1's manifest wholesale: the shard cannot open at
    // all, so the quarantining set open leaves a dead slot.
    let manifest = dir.join("shard-001").join(climber_core::MANIFEST_FILE);
    let good = fs::read(&manifest).unwrap();
    fs::remove_file(&manifest).unwrap();

    let (mut set, report) = ShardedClimber::open_with(&dir, RecoveryPolicy::Quarantine).unwrap();
    assert_eq!(report.dead_shards, vec![1]);
    let health = set.health();
    assert_eq!(health.shards, 3);
    assert_eq!(health.dead_shards, 1);

    // Degraded serving: answers come only from live shards.
    let (degraded, statuses) = set.search_many_with_status(&reqs, 0);
    assert!(statuses[0].healthy && statuses[2].healthy);
    assert!(!statuses[1].healthy, "dead slot must report unhealthy");
    for out in &degraded {
        for r in &out.results {
            assert_ne!(
                set.shard_of(r.0),
                1,
                "record {} served by a dead shard",
                r.0
            );
        }
    }

    // Scrubbing before the repair cannot resurrect the shard.
    set.scrub().unwrap();
    assert_eq!(set.health().dead_shards, 1);

    // Repair the manifest; scrub re-admits the shard in place.
    fs::write(&manifest, &good).unwrap();
    set.scrub().unwrap();
    assert!(set.health().is_healthy());
    assert_eq!(set.search_many(&reqs), healthy_out);
    let routes: Vec<usize> = (0..20).map(|id| set.shard_of(id)).collect();
    assert_eq!(routes, healthy_routes);

    // The whole set still reports healthy statuses end-to-end.
    let (_, statuses) = set.search_many_with_status(&reqs, 0);
    assert!(statuses.iter().all(|s| s.healthy));
    fs::remove_dir_all(&dir).ok();
}
