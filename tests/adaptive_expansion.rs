//! The adaptive algorithm's contract (§VI + Figures 9/11(a)).

use climber_core::series::gen::{query_workload, Domain};
use climber_core::series::ground_truth::exact_knn;
use climber_core::series::recall::recall_of_results;
use climber_core::{Climber, ClimberConfig};

fn cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(16)
        .with_pivots(96)
        .with_prefix_len(8)
        .with_capacity(150)
        .with_alpha(0.25)
        .with_epsilon(2)
        .with_max_centroids(10)
        .with_seed(77)
        .with_workers(2)
}

#[test]
fn adaptive_matches_knn_for_small_k() {
    // Figure 9(a): "under small K values the three CLIMBER variations
    // exhibit the same performance" — when the target node covers K.
    let ds = Domain::RandomWalk.generate(3_000, 3);
    let climber = Climber::build_in_memory(&ds, cfg());
    let mut same = 0;
    let queries = query_workload(&ds, 12, 5);
    for &qid in &queries {
        let a = climber.knn(ds.get(qid), 5);
        let b = climber.knn_adaptive(ds.get(qid), 5, 4);
        if a.plan.primary_node_size >= 5 {
            assert_eq!(a.results, b.results, "query {qid}");
            same += 1;
        }
    }
    assert!(same > 0, "no query hit a node covering k=5");
}

#[test]
fn recall_boost_grows_with_k_pressure() {
    // Figure 11(a): the adaptive gain appears when K exceeds the target
    // node size (K = m..10m in the paper's stress test).
    let ds = Domain::Eeg.generate(3_000, 7);
    let climber = Climber::build_in_memory(&ds, cfg());
    let queries = query_workload(&ds, 10, 9);

    let mut gain_small = 0.0;
    let mut gain_large = 0.0;
    for &qid in &queries {
        let probe = climber.knn(ds.get(qid), 5);
        let m = probe.plan.primary_node_size.max(5) as usize;
        for (k, gain) in [(m / 2 + 1, &mut gain_small), (m * 4, &mut gain_large)] {
            let exact = exact_knn(&ds, ds.get(qid), k);
            let plain = recall_of_results(&climber.knn(ds.get(qid), k).results, &exact);
            let adaptive =
                recall_of_results(&climber.knn_adaptive(ds.get(qid), k, 4).results, &exact);
            *gain += (adaptive - plain) / queries.len() as f64;
        }
    }
    assert!(
        gain_large >= gain_small - 0.02,
        "adaptive gain did not grow with K pressure: small={gain_small:.3} large={gain_large:.3}"
    );
    assert!(gain_large >= 0.0, "adaptive hurt recall at large K");
}

#[test]
fn partition_budget_ordering_2x_4x() {
    let ds = Domain::Dna.generate(2_500, 11);
    let climber = Climber::build_in_memory(&ds, cfg());
    for &qid in &query_workload(&ds, 10, 13) {
        let q = ds.get(qid);
        let k = 400; // force expansion
        let plain = climber.knn(q, k);
        let two = climber.knn_adaptive(q, k, 2);
        let four = climber.knn_adaptive(q, k, 4);
        let base = plain.plan.num_partitions().max(1);
        assert!(two.plan.num_partitions() <= 2 * base, "2X cap broken");
        assert!(four.plan.num_partitions() <= 4 * base, "4X cap broken");
        assert!(
            four.plan.est_candidates >= two.plan.est_candidates,
            "4X candidates below 2X"
        );
    }
}

#[test]
fn od_smallest_dominates_data_access() {
    // Figure 11(b): OD-Smallest reads multiples of the data for a bounded
    // recall improvement.
    let ds = Domain::Eeg.generate(2_500, 17);
    let climber = Climber::build_in_memory(&ds, cfg());
    let queries = query_workload(&ds, 8, 19);
    let k = 40;
    let (mut acc_fast, mut acc_scan) = (0u64, 0u64);
    let (mut rec_fast, mut rec_scan) = (0.0, 0.0);
    for &qid in &queries {
        let exact = exact_knn(&ds, ds.get(qid), k);
        let fast = climber.knn_adaptive(ds.get(qid), k, 4);
        let scan = climber.od_smallest(ds.get(qid), k);
        acc_fast += fast.records_scanned;
        acc_scan += scan.records_scanned;
        rec_fast += recall_of_results(&fast.results, &exact) / queries.len() as f64;
        rec_scan += recall_of_results(&scan.results, &exact) / queries.len() as f64;
    }
    assert!(
        acc_scan >= acc_fast,
        "OD-Smallest read less than Adaptive-4X"
    );
    assert!(rec_scan >= rec_fast - 1e-9, "OD-Smallest recalled less");
    // and the headline: the recall gap is bounded while the access gap is
    // a multiple (the trie layer pays for itself)
    if acc_fast > 0 && acc_scan > 2 * acc_fast {
        assert!(
            rec_scan - rec_fast < 0.35,
            "recall gap {:.3} too large for the access ratio {:.1}",
            rec_scan - rec_fast,
            acc_scan as f64 / acc_fast as f64
        );
    }
}
