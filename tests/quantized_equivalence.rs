//! Property test: the 8-bit quantized record cache is **invisible**.
//!
//! Two contracts, checked independently:
//!
//! 1. **Admissibility.** For any cluster content and any query,
//!    [`QuantizedCluster::lb`] never exceeds the exact squared Euclidean
//!    distance, and [`QuantizedCluster::lb_exceeds`] never reports a
//!    threshold violation the exact distance would not also report. A
//!    record skipped by the prefilter therefore cannot belong to any
//!    top-k result.
//!
//! 2. **End-to-end equality.** A [`Climber`] and a [`ShardedClimber`]
//!    with the quantized cache enabled answer every [`SearchRequest`] —
//!    all four [`SearchMode`]s, budgeted and not, single-request and
//!    batch paths — **bit-identically** to a baseline index with the
//!    cache disabled: same neighbour ids, same distances, same
//!    `records_scanned`, same plan. The comparison runs twice per
//!    checkpoint (a cold pass that populates the cache through the miss
//!    path, then a warm pass through the quantized prefilter), then again
//!    with a delta segment present (cache bypassed), after flush and
//!    compaction (cache invalidated and rebuilt), and after disabling
//!    the cache mid-flight.

use climber_core::dfs::format::ClusterBuf;
use climber_core::dfs::QuantizedCluster;
use climber_core::series::gen::Domain;
use climber_core::series::kernels::sq_ed;
use climber_core::{Climber, ClimberConfig, SearchRequest, ShardedClimber};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const DOMAINS: [Domain; 4] = [Domain::RandomWalk, Domain::Eeg, Domain::Dna, Domain::TexMex];

/// Every mode in the unified surface, budgeted and not, over `queries`
/// (mirrors the request matrix of `sharded_equivalence`).
fn requests(queries: &[Vec<f32>], k: usize) -> Vec<SearchRequest> {
    let mut reqs = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        reqs.push(SearchRequest::new(q.clone(), k));
        reqs.push(SearchRequest::new(q.clone(), k).exact());
        reqs.push(SearchRequest::new(q.clone(), k).smallest());
        reqs.push(
            SearchRequest::new(q.clone(), k)
                .adaptive(2)
                .with_budget(2 + i),
        );
        let short: Vec<f32> = q.iter().step_by(2).copied().collect();
        reqs.push(SearchRequest::new(short, k).resampled(2));
    }
    reqs
}

/// Runs the full request matrix against all three indexes and insists on
/// bit-identical outcomes, through single-request and batch paths.
fn assert_invisible(
    baseline: &Climber<impl climber_core::dfs::store::PartitionStore>,
    quant: &Climber<impl climber_core::dfs::store::PartitionStore>,
    sharded: &ShardedClimber<impl climber_core::dfs::store::PartitionStore>,
    reqs: &[SearchRequest],
    ctx: &str,
) -> Result<(), TestCaseError> {
    let want: Vec<_> = reqs.iter().map(|r| baseline.search(r)).collect();
    for (req, want) in reqs.iter().zip(&want) {
        prop_assert_eq!(
            &quant.search(req),
            want,
            "quant-on single index diverged ({})",
            ctx
        );
        prop_assert_eq!(
            &sharded.search(req),
            want,
            "quant-on sharded single-request path diverged ({})",
            ctx
        );
    }
    prop_assert_eq!(
        &sharded.search_many(reqs),
        &want,
        "quant-on sharded batch path diverged ({})",
        ctx
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1: the quantized lower bound is admissible — it never
    /// overshoots the exact distance, and `lb_exceeds` only prunes
    /// records the exact distance would also prune.
    #[test]
    fn quantized_lower_bound_is_admissible(
        seed in 0u64..1000,
        n in 1usize..24,
        series_len in 1usize..96,
        pick in 0usize..4,
        thresh_scale in 0f64..1.5,
    ) {
        let domain = DOMAINS[pick];
        let ds = domain.generate(n + 1, seed);
        let mut buf = ClusterBuf::new();
        for i in 0..n {
            buf.push(i as u64, &ds.get(i as u64)[..series_len.min(ds.series_len())]);
        }
        let qc = QuantizedCluster::from_buf(&buf)
            .expect("non-empty cluster must quantize");
        prop_assert_eq!(qc.len(), n);
        let query = &ds.get(n as u64)[..series_len.min(ds.series_len())];
        for i in 0..n {
            let (_, vals) = buf.get(i);
            let exact = sq_ed(query, vals);
            let lb = qc.lb(i, query);
            prop_assert!(
                lb <= exact,
                "lb {lb:e} overshoots exact {exact:e} at record {i} (len {series_len})"
            );
            // Pruning at any threshold must be sound: a pruned record's
            // exact distance genuinely exceeds the threshold.
            let t = exact * thresh_scale;
            if qc.lb_exceeds(i, query, t) {
                prop_assert!(exact > t, "pruned record has exact {exact:e} <= t {t:e}");
            }
            prop_assert!(!qc.lb_exceeds(i, query, f64::INFINITY));
            prop_assert!(!qc.lb_exceeds(i, query, f64::NAN));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Contract 2: enabling the quantized cache changes nothing
    /// observable, across modes, shard counts, updates, and maintenance.
    #[test]
    fn quantized_cache_is_invisible(
        seed in 0u64..400,
        n in 100usize..180,
        k in 1usize..10,
        pick in 0usize..16,
        capacity in 30u64..70,
    ) {
        let domain = DOMAINS[pick % 4];
        let num_shards = 1 + pick % 3;
        let ds = domain.generate(n, seed);
        let extra = domain.generate(6, seed ^ 0xE17A);
        let config = ClimberConfig::default()
            .with_paa_segments(8)
            .with_pivots(24)
            .with_prefix_len(4)
            .with_capacity(capacity)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(seed ^ 0x5EED)
            .with_workers(2);
        let baseline = Climber::build_in_memory(&ds, config);
        let quant = Climber::build_in_memory(&ds, config);
        let sharded = ShardedClimber::build_in_memory(&ds, config, num_shards);

        // Opt in — the cache is off by default.
        prop_assert!(!quant.quant_cache().is_enabled());
        quant.set_quant_enabled(true);
        sharded.set_quant_enabled(true);

        let queries: Vec<Vec<f32>> = (0..3u64)
            .map(|i| {
                let mut q = ds.get((i * 41) % n as u64).to_vec();
                if i % 2 == 1 {
                    q[0] += 0.25;
                }
                q
            })
            .collect();
        let reqs = requests(&queries, k);

        // Cold pass populates the cache through the miss path; the warm
        // pass answers through the quantized prefilter. Both identical.
        assert_invisible(&baseline, &quant, &sharded, &reqs, "cold cache")?;
        prop_assert!(
            !quant.quant_cache().is_empty(),
            "cold pass over sealed clusters should have populated the cache"
        );
        prop_assert!(quant.quant_cache().bytes() > 0);
        assert_invisible(&baseline, &quant, &sharded, &reqs, "warm cache")?;

        // A delta segment bypasses the cache; equality must survive the
        // mixed sealed/unsealed state and the deletes-present state.
        for j in 0..3u64 {
            let vals = extra.get(j).to_vec();
            let a = baseline.append(&vals).unwrap();
            prop_assert_eq!(quant.append(&vals).unwrap(), a);
            prop_assert_eq!(sharded.append(&vals).unwrap(), a);
        }
        prop_assert!(baseline.delete(seed % n as u64).unwrap());
        prop_assert!(quant.delete(seed % n as u64).unwrap());
        prop_assert!(sharded.delete(seed % n as u64).unwrap());
        assert_invisible(&baseline, &quant, &sharded, &reqs, "with delta")?;

        // Flush folds the delta into sealed partitions; the rewritten
        // partitions' stale entries must have been dropped.
        baseline.flush().unwrap();
        quant.flush().unwrap();
        sharded.flush().unwrap();
        assert_invisible(&baseline, &quant, &sharded, &reqs, "after flush")?;

        // Compaction rewrites partitions wholesale.
        baseline.compact().unwrap();
        quant.compact().unwrap();
        sharded.compact().unwrap();
        assert_invisible(&baseline, &quant, &sharded, &reqs, "after compaction")?;

        // Disabling clears the cache and reverts to the plain scan path.
        quant.set_quant_enabled(false);
        sharded.set_quant_enabled(false);
        prop_assert!(quant.quant_cache().is_empty());
        prop_assert_eq!(quant.quant_cache().bytes(), 0);
        assert_invisible(&baseline, &quant, &sharded, &reqs, "after disable")?;
    }
}
