//! Persistence: disk-backed indexes survive restarts and reject corruption.
//!
//! Every corruption mode must surface as a typed [`OpenError`] from
//! `Climber::open` — never a panic, never a silently wrong index.

use climber_core::dfs::manifest::xxh64;
use climber_core::series::gen::Domain;
use climber_core::{
    Climber, ClimberConfig, OpenError, FORMAT_VERSION, MANIFEST_FILE, SKELETON_FILE,
};
use std::fs;
use std::path::{Path, PathBuf};

fn cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(48)
        .with_prefix_len(6)
        .with_capacity(120)
        .with_alpha(0.3)
        .with_epsilon(1)
        .with_seed(911)
        .with_workers(2)
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("climber-it-{tag}-{}", std::process::id()))
}

#[test]
fn reopened_index_answers_identically() {
    let dir = tmp_dir("reopen");
    let ds = Domain::RandomWalk.generate(1_200, 5);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let before: Vec<_> = (0..5u64)
        .map(|q| built.knn_adaptive(ds.get(q * 100), 20, 4).results)
        .collect();
    drop(built);

    let reopened = Climber::open(&dir).unwrap();
    for (i, want) in before.iter().enumerate() {
        let got = reopened.knn_adaptive(ds.get(i as u64 * 100), 20, 4).results;
        assert_eq!(&got, want, "query {i} diverged after reopen");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn skeleton_file_is_the_global_index() {
    let dir = tmp_dir("skeleton");
    let ds = Domain::Eeg.generate(600, 7);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let on_disk = fs::read(dir.join(SKELETON_FILE)).unwrap();
    assert_eq!(on_disk.len(), built.global_index_bytes());
    // The paper's "global index size" is tiny relative to the data.
    assert!(
        on_disk.len() < ds.payload_bytes() / 10,
        "skeleton {} bytes vs data {} bytes",
        on_disk.len(),
        ds.payload_bytes()
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_skeleton_is_rejected() {
    let dir = tmp_dir("corrupt");
    let ds = Domain::Dna.generate(400, 9);
    Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let path = dir.join(SKELETON_FILE);
    let mut bytes = fs::read(&path).unwrap();
    bytes.truncate(bytes.len() / 2);
    fs::write(&path, &bytes).unwrap();
    assert!(
        matches!(Climber::open(&dir), Err(OpenError::ChecksumMismatch { .. })),
        "truncated skeleton accepted"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_partitions_detected_on_open() {
    let dir = tmp_dir("noparts");
    let ds = Domain::TexMex.generate(400, 11);
    Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    // delete every partition file but keep the skeleton + manifest
    for entry in fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "clbp") {
            fs::remove_file(p).unwrap();
        }
    }
    assert!(
        matches!(Climber::open(&dir), Err(OpenError::MissingPartition { .. })),
        "opened an index with no data"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn queries_tolerate_a_partition_lost_while_serving() {
    // Fault injection: a partition file vanishing *after* the validated
    // open (disk pulled, file GC'd) degrades recall but must not panic —
    // the serving process keeps answering.
    let dir = tmp_dir("lostpart");
    let ds = Domain::RandomWalk.generate(1_000, 13);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    drop(built);

    let reopened = Climber::open(&dir).unwrap();
    let victim = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "clbp"))
        .expect("at least one partition");
    fs::remove_file(victim).unwrap();

    for q in 0..10u64 {
        let out = reopened.knn(ds.get(q * 37), 10);
        // some queries may return fewer than k if their partition vanished,
        // but none may fail
        assert!(out.results.len() <= 10);
    }
    fs::remove_dir_all(&dir).ok();
}

// --- the five corruption scenarios, each a distinct typed error ---------

fn built_dir(tag: &str) -> PathBuf {
    let dir = tmp_dir(tag);
    let ds = Domain::RandomWalk.generate(500, 23);
    Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    dir
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

#[test]
fn truncated_manifest_is_typed() {
    let dir = built_dir("trunc-manifest");
    let path = manifest_path(&dir);
    let mut bytes = fs::read(&path).unwrap();
    bytes.truncate(bytes.len() * 2 / 3);
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(OpenError::CorruptManifest(_))
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_byte_in_cluster_block_is_typed() {
    let dir = built_dir("bitrot");
    let victim = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "clbp"))
        .unwrap();
    let mut bytes = fs::read(&victim).unwrap();
    // flip one bit deep inside the record area, past header + directory
    let at = bytes.len() - 10;
    bytes[at] ^= 0x20;
    fs::write(&victim, &bytes).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(OpenError::ChecksumMismatch { .. })
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_manifest_magic_is_typed() {
    let dir = built_dir("magic");
    let path = manifest_path(&dir);
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] = b'Z';
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(OpenError::BadMagic { .. })
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn future_format_version_is_typed() {
    let dir = built_dir("future");
    let path = manifest_path(&dir);
    let mut bytes = fs::read(&path).unwrap();
    // bump the version field and re-seal the manifest's self-checksum so
    // only the version check can fire
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    let body = bytes.len() - 8;
    let sum = xxh64(&bytes[..body], 0);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(OpenError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 7
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_partition_file_is_typed() {
    let dir = built_dir("gone");
    let victim = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "clbp"))
        .unwrap();
    fs::remove_file(&victim).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(OpenError::MissingPartition { .. })
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopened_store_is_read_only() {
    let dir = built_dir("readonly");
    let reopened = Climber::open(&dir).unwrap();
    let probe = vec![0.0f32; 256];
    let err = reopened.append(&probe).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn config_and_fingerprint_survive_reopen() {
    let dir = tmp_dir("config");
    let ds = Domain::Eeg.generate(400, 29);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let m1 = built.save(&dir).unwrap();
    let reopened = Climber::open(&dir).unwrap();
    assert_eq!(reopened.config(), built.config());
    // a second save of the same index produces the same fingerprint
    let m2 = reopened.save(tmp_dir("config-copy")).unwrap();
    assert_eq!(m1.fingerprint, m2.fingerprint);
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(tmp_dir("config-copy")).ok();
}
