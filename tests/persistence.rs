//! Persistence: disk-backed indexes survive restarts and reject corruption.

use climber_core::series::gen::Domain;
use climber_core::{Climber, ClimberConfig, SKELETON_FILE};
use std::fs;
use std::path::PathBuf;

fn cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(48)
        .with_prefix_len(6)
        .with_capacity(120)
        .with_alpha(0.3)
        .with_epsilon(1)
        .with_seed(911)
        .with_workers(2)
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("climber-it-{tag}-{}", std::process::id()))
}

#[test]
fn reopened_index_answers_identically() {
    let dir = tmp_dir("reopen");
    let ds = Domain::RandomWalk.generate(1_200, 5);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let before: Vec<_> = (0..5u64)
        .map(|q| built.knn_adaptive(ds.get(q * 100), 20, 4).results)
        .collect();
    drop(built);

    let reopened = Climber::open(&dir).unwrap();
    for (i, want) in before.iter().enumerate() {
        let got = reopened.knn_adaptive(ds.get(i as u64 * 100), 20, 4).results;
        assert_eq!(&got, want, "query {i} diverged after reopen");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn skeleton_file_is_the_global_index() {
    let dir = tmp_dir("skeleton");
    let ds = Domain::Eeg.generate(600, 7);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let on_disk = fs::read(dir.join(SKELETON_FILE)).unwrap();
    assert_eq!(on_disk.len(), built.global_index_bytes());
    // The paper's "global index size" is tiny relative to the data.
    assert!(
        on_disk.len() < ds.payload_bytes() / 10,
        "skeleton {} bytes vs data {} bytes",
        on_disk.len(),
        ds.payload_bytes()
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_skeleton_is_rejected() {
    let dir = tmp_dir("corrupt");
    let ds = Domain::Dna.generate(400, 9);
    Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let path = dir.join(SKELETON_FILE);
    let mut bytes = fs::read(&path).unwrap();
    bytes.truncate(bytes.len() / 2);
    fs::write(&path, &bytes).unwrap();
    assert!(Climber::open(&dir).is_err(), "truncated skeleton accepted");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_partitions_detected_on_open() {
    let dir = tmp_dir("noparts");
    let ds = Domain::TexMex.generate(400, 11);
    Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    // delete every partition file but keep the skeleton
    for entry in fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "clbp") {
            fs::remove_file(p).unwrap();
        }
    }
    assert!(Climber::open(&dir).is_err(), "opened an index with no data");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn queries_tolerate_a_lost_partition() {
    // Fault injection: losing one partition file degrades recall but must
    // not panic or error — the distributed system keeps serving.
    let dir = tmp_dir("lostpart");
    let ds = Domain::RandomWalk.generate(1_000, 13);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    // remove one partition file
    let victim = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "clbp"))
        .expect("at least one partition");
    fs::remove_file(victim).unwrap();

    let reopened = Climber::open(&dir).unwrap();
    for q in 0..10u64 {
        let out = reopened.knn(ds.get(q * 37), 10);
        // some queries may return fewer than k if their partition vanished,
        // but none may fail
        assert!(out.results.len() <= 10);
    }
    drop(built);
    fs::remove_dir_all(&dir).ok();
}
