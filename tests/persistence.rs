//! Persistence: disk-backed indexes survive restarts and reject corruption.
//!
//! Every corruption mode must surface as a typed
//! `ClimberError::Open(OpenError)` from `Climber::open` — never a panic,
//! never a silently wrong index.

use climber_core::dfs::manifest::xxh64;
use climber_core::dfs::store::PartitionStore;
use climber_core::series::gen::Domain;
use climber_core::{
    Climber, ClimberConfig, ClimberError, OpenError, FORMAT_VERSION, MANIFEST_FILE, SKELETON_FILE,
};
use std::fs;
use std::path::{Path, PathBuf};

/// Mutations on a read-only handle surface as `ClimberError::Io` wrapping
/// a `PermissionDenied`.
fn is_permission_denied(err: &ClimberError) -> bool {
    matches!(err, ClimberError::Io(e) if e.kind() == std::io::ErrorKind::PermissionDenied)
}

fn cfg() -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(48)
        .with_prefix_len(6)
        .with_capacity(120)
        .with_alpha(0.3)
        .with_epsilon(1)
        .with_seed(911)
        .with_workers(2)
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("climber-it-{tag}-{}", std::process::id()))
}

#[test]
fn reopened_index_answers_identically() {
    let dir = tmp_dir("reopen");
    let ds = Domain::RandomWalk.generate(1_200, 5);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let before: Vec<_> = (0..5u64)
        .map(|q| built.knn_adaptive(ds.get(q * 100), 20, 4).results)
        .collect();
    drop(built);

    let reopened = Climber::open(&dir).unwrap();
    for (i, want) in before.iter().enumerate() {
        let got = reopened.knn_adaptive(ds.get(i as u64 * 100), 20, 4).results;
        assert_eq!(&got, want, "query {i} diverged after reopen");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn skeleton_file_is_the_global_index() {
    let dir = tmp_dir("skeleton");
    let ds = Domain::Eeg.generate(600, 7);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let on_disk = fs::read(dir.join(SKELETON_FILE)).unwrap();
    assert_eq!(on_disk.len(), built.global_index_bytes());
    // The paper's "global index size" is tiny relative to the data.
    assert!(
        on_disk.len() < ds.payload_bytes() / 10,
        "skeleton {} bytes vs data {} bytes",
        on_disk.len(),
        ds.payload_bytes()
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_skeleton_is_rejected() {
    let dir = tmp_dir("corrupt");
    let ds = Domain::Dna.generate(400, 9);
    Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let path = dir.join(SKELETON_FILE);
    let mut bytes = fs::read(&path).unwrap();
    bytes.truncate(bytes.len() / 2);
    fs::write(&path, &bytes).unwrap();
    assert!(
        matches!(
            Climber::open(&dir),
            Err(ClimberError::Open(OpenError::ChecksumMismatch { .. }))
        ),
        "truncated skeleton accepted"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_partitions_detected_on_open() {
    let dir = tmp_dir("noparts");
    let ds = Domain::TexMex.generate(400, 11);
    Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    // delete every partition file but keep the skeleton + manifest
    for entry in fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "clbp") {
            fs::remove_file(p).unwrap();
        }
    }
    assert!(
        matches!(
            Climber::open(&dir),
            Err(ClimberError::Open(OpenError::MissingPartition { .. }))
        ),
        "opened an index with no data"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn queries_tolerate_a_partition_lost_while_serving() {
    // Fault injection: a partition file vanishing *after* the validated
    // open (disk pulled, file GC'd) degrades recall but must not panic —
    // the serving process keeps answering.
    let dir = tmp_dir("lostpart");
    let ds = Domain::RandomWalk.generate(1_000, 13);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    drop(built);

    let reopened = Climber::open(&dir).unwrap();
    let victim = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "clbp"))
        .expect("at least one partition");
    fs::remove_file(victim).unwrap();

    for q in 0..10u64 {
        let out = reopened.knn(ds.get(q * 37), 10);
        // some queries may return fewer than k if their partition vanished,
        // but none may fail
        assert!(out.results.len() <= 10);
    }
    fs::remove_dir_all(&dir).ok();
}

// --- the five corruption scenarios, each a distinct typed error ---------

fn built_dir(tag: &str) -> PathBuf {
    let dir = tmp_dir(tag);
    let ds = Domain::RandomWalk.generate(500, 23);
    Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    dir
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

#[test]
fn truncated_manifest_is_typed() {
    let dir = built_dir("trunc-manifest");
    let path = manifest_path(&dir);
    let mut bytes = fs::read(&path).unwrap();
    bytes.truncate(bytes.len() * 2 / 3);
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(ClimberError::Open(OpenError::CorruptManifest(_)))
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_byte_in_cluster_block_is_typed() {
    let dir = built_dir("bitrot");
    let victim = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "clbp"))
        .unwrap();
    let mut bytes = fs::read(&victim).unwrap();
    // flip one bit deep inside the record area, past header + directory
    let at = bytes.len() - 10;
    bytes[at] ^= 0x20;
    fs::write(&victim, &bytes).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(ClimberError::Open(OpenError::ChecksumMismatch { .. }))
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_manifest_magic_is_typed() {
    let dir = built_dir("magic");
    let path = manifest_path(&dir);
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] = b'Z';
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(ClimberError::Open(OpenError::BadMagic { .. }))
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn future_format_version_is_typed() {
    let dir = built_dir("future");
    let path = manifest_path(&dir);
    let mut bytes = fs::read(&path).unwrap();
    // bump the version field and re-seal the manifest's self-checksum so
    // only the version check can fire
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    let body = bytes.len() - 8;
    let sum = xxh64(&bytes[..body], 0);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(ClimberError::Open(OpenError::UnsupportedVersion { found, .. })) if found == FORMAT_VERSION + 7
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_partition_file_is_typed() {
    let dir = built_dir("gone");
    let victim = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "clbp"))
        .unwrap();
    fs::remove_file(&victim).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(ClimberError::Open(OpenError::MissingPartition { .. }))
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopened_store_is_read_only() {
    let dir = built_dir("readonly");
    let reopened = Climber::open(&dir).unwrap();
    assert!(!reopened.is_writable());
    let probe = vec![0.0f32; 256];
    assert!(is_permission_denied(&reopened.append(&probe).unwrap_err()));
    assert!(is_permission_denied(
        &reopened.append_batch(&[probe]).unwrap_err()
    ));
    assert!(is_permission_denied(&reopened.delete(0).unwrap_err()));
    assert!(is_permission_denied(&reopened.flush().unwrap_err()));
    fs::remove_dir_all(&dir).ok();
}

// --- the update journal: persistence and its corruption scenarios -------

/// Builds a disk index with pending updates (appended + deleted records)
/// and re-saves it, so the directory carries a journal.
fn journaled_dir(tag: &str) -> (PathBuf, Vec<f32>) {
    let dir = tmp_dir(tag);
    fs::remove_dir_all(&dir).ok();
    let ds = Domain::RandomWalk.generate(400, 41);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let mut probe = ds.get(11).to_vec();
    probe[0] += 0.002;
    built.append(&probe).unwrap();
    built.delete(11).unwrap();
    built.save(&dir).unwrap();
    assert!(dir.join(climber_core::JOURNAL_FILE).exists());
    (dir, probe)
}

#[test]
fn journal_survives_reopen_read_only_and_writable() {
    let (dir, probe) = journaled_dir("journal");
    // read-only: journal replayed, updates visible, mutations rejected
    let ro = Climber::open(&dir).unwrap();
    let out = ro.knn(&probe, 5);
    assert_eq!(
        out.results[0],
        (400, 0.0),
        "appended record lost: {:?}",
        out.results
    );
    assert!(
        out.results.iter().all(|&(id, _)| id != 11),
        "deleted record served"
    );
    assert!(is_permission_denied(&ro.delete(0).unwrap_err()));

    // writable: same state, and the index keeps moving — flush folds the
    // journal away and re-seals the directory at the next generation.
    let rw = Climber::open_rw(&dir).unwrap();
    assert_eq!(rw.knn(&probe, 5), out);
    assert_eq!(rw.generation(), 0);
    let report = rw.flush().unwrap();
    assert_eq!(report.records_folded, 1);
    assert_eq!(report.generation, 1);
    // flush folds the delta but keeps the tombstone: the re-sealed
    // journal still carries it
    assert_eq!(report.tombstones_remaining, 1);
    assert!(dir.join(climber_core::JOURNAL_FILE).exists());
    // compaction purges the deleted record; nothing is pending, so the
    // journal disappears with the next re-seal
    let report = rw.compact().unwrap();
    assert_eq!(report.records_purged, 1);
    assert!(
        !dir.join(climber_core::JOURNAL_FILE).exists(),
        "journal folded away"
    );

    // the re-sealed directory cold-opens to identical answers
    let cold = Climber::open(&dir).unwrap();
    assert_eq!(cold.generation(), 2);
    assert_eq!(cold.knn(&probe, 5), out);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn writable_reopen_keeps_ingesting_across_cycles() {
    let (dir, probe) = journaled_dir("ingest-cycles");
    let rw = Climber::open_rw(&dir).unwrap();
    let mut probe2 = probe.clone();
    probe2[1] += 0.5;
    let id2 = rw.append(&probe2).unwrap();
    assert_eq!(id2, 401, "id counter continues across reopen");
    rw.compact().unwrap();
    rw.save(&dir).unwrap();
    let again = Climber::open_rw(&dir).unwrap();
    let out = again.knn(&probe2, 3);
    assert_eq!(out.results[0], (id2, 0.0));
    fs::remove_dir_all(&dir).ok();
}

/// A disk fold re-seals incrementally: flushing one appended record must
/// not re-read (or re-copy) the whole directory — only the affected
/// partition plus the manifest machinery.
#[test]
fn disk_flush_reseal_is_incremental() {
    let dir = tmp_dir("inc-reseal");
    fs::remove_dir_all(&dir).ok();
    let ds = Domain::RandomWalk.generate(2_000, 43);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let total = built.store().ids().len();
    assert!(total >= 8, "need many partitions, got {total}");

    built.append(ds.get(5)).unwrap();
    let before = built.store().stats().snapshot();
    let report = built.flush().unwrap();
    assert_eq!(report.partitions_rewritten, 1);
    let diff = built.store().stats().snapshot().since(&before);
    assert!(
        (diff.partitions_opened as usize) < total / 2,
        "flush re-read {} of {total} partitions — re-seal is not incremental",
        diff.partitions_opened
    );

    // ... and the incrementally re-sealed directory validates end to end.
    let cold = Climber::open(&dir).unwrap();
    assert_eq!(cold.generation(), 1);
    let out = cold.knn(ds.get(5), 2);
    assert_eq!(out.results[0].1, 0.0);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_journal_is_typed() {
    let (dir, _) = journaled_dir("nojournal");
    fs::remove_file(dir.join(climber_core::JOURNAL_FILE)).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(ClimberError::Open(OpenError::MissingJournal(_)))
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_journal_is_typed() {
    let (dir, _) = journaled_dir("badjournal");
    let path = dir.join(climber_core::JOURNAL_FILE);
    let mut bytes = fs::read(&path).unwrap();
    let at = bytes.len() - 3;
    bytes[at] ^= 0x10;
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(ClimberError::Open(OpenError::ChecksumMismatch { .. }))
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_generation_journal_is_typed() {
    let (dir, _) = journaled_dir("stalegen");
    // Patch the manifest's generation field (bytes 40..48: after magic,
    // version, flags, fingerprint, num_records, max_series_id and
    // series_len) and re-seal its self-checksum, simulating a manifest
    // from a later fold paired with this older journal.
    let path = manifest_path(&dir);
    let mut bytes = fs::read(&path).unwrap();
    bytes[40..48].copy_from_slice(&5u64.to_le_bytes());
    let body = bytes.len() - 8;
    let sum = xxh64(&bytes[..body], 0);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Climber::open(&dir),
        Err(ClimberError::Open(OpenError::StaleGeneration {
            manifest: 5,
            journal: 0,
        }))
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn config_and_fingerprint_survive_reopen() {
    let dir = tmp_dir("config");
    let ds = Domain::Eeg.generate(400, 29);
    let built = Climber::build_on_disk(&ds, &dir, cfg()).unwrap();
    let m1 = built.save(&dir).unwrap();
    let reopened = Climber::open(&dir).unwrap();
    assert_eq!(reopened.config(), built.config());
    // a second save of the same index produces the same fingerprint
    let m2 = reopened.save(tmp_dir("config-copy")).unwrap();
    assert_eq!(m1.fingerprint, m2.fingerprint);
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(tmp_dir("config-copy")).ok();
}
