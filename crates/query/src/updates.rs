//! The query layer's window onto the mutable segments.
//!
//! A static CLIMBER index answers queries from sealed partitions alone.
//! Once the index absorbs live updates, every query path must also see:
//!
//! * the [`DeltaSegment`] — appended records, clustered under the same
//!   `(partition, trie node)` keys the sealed clusters use, merged into
//!   the candidate stream of every planned (or expanded) cluster;
//! * the [`TombstoneSet`] — deleted ids, filtered out of both sealed and
//!   delta candidates *before* any distance reaches the top-k heap, so a
//!   deleted record can neither appear in an answer nor displace one.
//!
//! An [`UpdateView`] bundles borrowed references to both and is attached
//! to a [`crate::engine::KnnEngine`] via
//! [`with_updates`](crate::engine::KnnEngine::with_updates). Engines
//! without a view run the original sealed-only code paths untouched.

use climber_dfs::segment::{DeltaSegment, TombstoneSet};

/// Borrowed view of an index's mutable segments, shared by every query
/// of an engine. Copy-cheap: two references.
#[derive(Debug, Clone, Copy)]
pub struct UpdateView<'a> {
    /// Pending appends, clustered by `(partition, trie node)`.
    pub delta: &'a DeltaSegment,
    /// Pending deletes.
    pub tombstones: &'a TombstoneSet,
}

impl UpdateView<'_> {
    /// True when the view currently changes nothing (no pending appends
    /// or deletes) — callers may skip attaching it and keep the
    /// sealed-only fast path.
    pub fn is_noop(&self) -> bool {
        self.delta.is_empty() && self.tombstones.is_empty()
    }
}
