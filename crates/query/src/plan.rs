//! Query plans and outcomes.
//!
//! A plan is the output of the *global index search* (which partitions to
//! open and which trie-node clusters to read inside them); an outcome is
//! the result of executing it (the approximate answer set plus the access
//! statistics the paper's experiments report).

use climber_dfs::format::{ByteReader, Decode, Encode, TrieNodeId};
use climber_dfs::store::PartitionId;
use climber_index::skeleton::GroupId;
use climber_series::series::SeriesId;
use std::collections::BTreeMap;

/// The physical reads a query will perform.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryPlan {
    /// The group Algorithm 3 settled on (primary group).
    pub primary_group: GroupId,
    /// Length of the trie path matched in the primary group
    /// (`PathLen(GN)`).
    pub primary_path_len: usize,
    /// Estimated records under the primary trie node (`Size(GN)`).
    pub primary_node_size: u64,
    /// partition → trie-node clusters to read from it, sorted.
    pub reads: BTreeMap<PartitionId, Vec<TrieNodeId>>,
    /// Estimated candidate records covered by `reads`.
    pub est_candidates: u64,
    /// Groups that participated in the plan (primary first).
    pub groups: Vec<GroupId>,
}

impl QueryPlan {
    /// Number of distinct partitions the plan touches.
    pub fn num_partitions(&self) -> usize {
        self.reads.len()
    }

    /// Adds a cluster read, deduplicating.
    pub fn add_read(&mut self, partition: PartitionId, node: TrieNodeId) {
        let v = self.reads.entry(partition).or_default();
        if !v.contains(&node) {
            v.push(node);
        }
    }

    /// Truncates the plan to its first `max` partitions (ascending
    /// partition id — deterministic, so truncated plans stay bit-identical
    /// between the sequential and the batched executor). The estimate
    /// fields keep describing the untruncated plan.
    pub fn truncate_partitions(&mut self, max: usize) {
        if self.reads.len() <= max {
            return;
        }
        if let Some(&cut) = self.reads.keys().nth(max) {
            self.reads.split_off(&cut);
        }
    }
}

impl Encode for QueryPlan {
    fn encode(&self, out: &mut Vec<u8>) {
        self.primary_group.encode(out);
        (self.primary_path_len as u64).encode(out);
        self.primary_node_size.encode(out);
        self.est_candidates.encode(out);
        (self.groups.len() as u32).encode(out);
        for g in &self.groups {
            g.encode(out);
        }
        (self.reads.len() as u32).encode(out);
        for (pid, nodes) in &self.reads {
            pid.encode(out);
            (nodes.len() as u32).encode(out);
            for n in nodes {
                n.encode(out);
            }
        }
    }
}

impl Decode for QueryPlan {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        let primary_group = r.u32()?;
        let primary_path_len = r.u64()? as usize;
        let primary_node_size = r.u64()?;
        let est_candidates = r.u64()?;
        let n_groups = r.u32()? as usize;
        let mut groups = Vec::with_capacity(n_groups.min(r.remaining() / 4));
        for _ in 0..n_groups {
            groups.push(r.u32()?);
        }
        let n_reads = r.u32()? as usize;
        let mut reads = BTreeMap::new();
        for _ in 0..n_reads {
            let pid = r.u32()?;
            let n_nodes = r.u32()? as usize;
            let mut nodes = Vec::with_capacity(n_nodes.min(r.remaining() / 8));
            for _ in 0..n_nodes {
                nodes.push(r.u64()?);
            }
            if reads.insert(pid, nodes).is_some() {
                return Err(format!("duplicate partition {pid} in plan"));
            }
        }
        Ok(Self {
            primary_group,
            primary_path_len,
            primary_node_size,
            reads,
            est_candidates,
            groups,
        })
    }
}

impl Encode for QueryOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.results.len() as u32).encode(out);
        for &(id, d) in &self.results {
            id.encode(out);
            d.encode(out);
        }
        (self.partitions_opened as u64).encode(out);
        self.records_scanned.encode(out);
        self.plan.encode(out);
    }
}

impl Decode for QueryOutcome {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        let n = r.u32()? as usize;
        if n > r.remaining() / 16 {
            return Err(format!("result count {n} exceeds frame size"));
        }
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.u64()?;
            let d = r.f64()?;
            results.push((id, d));
        }
        let partitions_opened = r.u64()? as usize;
        let records_scanned = r.u64()?;
        let plan = QueryPlan::decode(r)?;
        Ok(Self {
            results,
            partitions_opened,
            records_scanned,
            plan,
        })
    }
}

/// The executed result of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Approximate answer set: `(series id, squared ED)`, ascending —
    /// the same shape as `climber_series::exact_knn` for direct recall
    /// computation.
    pub results: Vec<(SeriesId, f64)>,
    /// Distinct partitions opened.
    pub partitions_opened: usize,
    /// Records compared against the query.
    pub records_scanned: u64,
    /// The plan that produced this outcome.
    pub plan: QueryPlan,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome() -> QueryOutcome {
        let mut plan = QueryPlan {
            primary_group: 3,
            primary_path_len: 5,
            primary_node_size: 42,
            reads: BTreeMap::new(),
            est_candidates: 99,
            groups: vec![3, 1],
        };
        plan.add_read(1, 10);
        plan.add_read(1, 11);
        plan.add_read(4, 7);
        QueryOutcome {
            results: vec![(9, 0.0), (2, 1.25), (17, f64::MAX)],
            partitions_opened: 2,
            records_scanned: 314,
            plan,
        }
    }

    #[test]
    fn outcome_roundtrips_through_the_codec() {
        use climber_dfs::format::{Decode, Encode};
        let out = sample_outcome();
        let bytes = out.encode_vec();
        assert_eq!(QueryOutcome::decode_vec(&bytes).unwrap(), out);
        // truncation anywhere fails loudly rather than mis-decoding
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                QueryOutcome::decode_vec(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn truncate_partitions_keeps_the_first_ids() {
        let mut p = sample_outcome().plan;
        p.truncate_partitions(10);
        assert_eq!(p.num_partitions(), 2, "no-op when under the cap");
        p.truncate_partitions(1);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.reads[&1], vec![10, 11]);
        p.truncate_partitions(0);
        assert_eq!(p.num_partitions(), 0);
    }

    #[test]
    fn add_read_dedups() {
        let mut p = QueryPlan::default();
        p.add_read(1, 10);
        p.add_read(1, 10);
        p.add_read(1, 11);
        p.add_read(2, 10);
        assert_eq!(p.num_partitions(), 2);
        assert_eq!(p.reads[&1], vec![10, 11]);
        assert_eq!(p.reads[&2], vec![10]);
    }
}
