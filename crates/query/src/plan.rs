//! Query plans and outcomes.
//!
//! A plan is the output of the *global index search* (which partitions to
//! open and which trie-node clusters to read inside them); an outcome is
//! the result of executing it (the approximate answer set plus the access
//! statistics the paper's experiments report).

use climber_dfs::format::TrieNodeId;
use climber_dfs::store::PartitionId;
use climber_index::skeleton::GroupId;
use climber_series::series::SeriesId;
use std::collections::BTreeMap;

/// The physical reads a query will perform.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryPlan {
    /// The group Algorithm 3 settled on (primary group).
    pub primary_group: GroupId,
    /// Length of the trie path matched in the primary group
    /// (`PathLen(GN)`).
    pub primary_path_len: usize,
    /// Estimated records under the primary trie node (`Size(GN)`).
    pub primary_node_size: u64,
    /// partition → trie-node clusters to read from it, sorted.
    pub reads: BTreeMap<PartitionId, Vec<TrieNodeId>>,
    /// Estimated candidate records covered by `reads`.
    pub est_candidates: u64,
    /// Groups that participated in the plan (primary first).
    pub groups: Vec<GroupId>,
}

impl QueryPlan {
    /// Number of distinct partitions the plan touches.
    pub fn num_partitions(&self) -> usize {
        self.reads.len()
    }

    /// Adds a cluster read, deduplicating.
    pub fn add_read(&mut self, partition: PartitionId, node: TrieNodeId) {
        let v = self.reads.entry(partition).or_default();
        if !v.contains(&node) {
            v.push(node);
        }
    }
}

/// The executed result of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Approximate answer set: `(series id, squared ED)`, ascending —
    /// the same shape as `climber_series::exact_knn` for direct recall
    /// computation.
    pub results: Vec<(SeriesId, f64)>,
    /// Distinct partitions opened.
    pub partitions_opened: usize,
    /// Records compared against the query.
    pub records_scanned: u64,
    /// The plan that produced this outcome.
    pub plan: QueryPlan,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_read_dedups() {
        let mut p = QueryPlan::default();
        p.add_read(1, 10);
        p.add_read(1, 10);
        p.add_read(1, 11);
        p.add_read(2, 10);
        assert_eq!(p.num_partitions(), 2);
        assert_eq!(p.reads[&1], vec![10, 11]);
        assert_eq!(p.reads[&2], vec![10]);
    }
}
