//! The unified query surface: one request type for every search strategy.
//!
//! Historically the facade grew one entry point per strategy variant —
//! `knn`, `knn_adaptive`, `knn_resampled`, `knn_batch` — each with its own
//! parameter list. A network serving layer cannot reasonably encode four
//! ad-hoc methods into a wire protocol, so the surface is unified here:
//!
//! * [`SearchRequest`] — query + `k` + a [`SearchMode`] + an optional
//!   partition [budget](SearchRequest::with_budget), built fluently;
//! * [`KnnEngine::search`](crate::engine::KnnEngine::search) — executes
//!   one request sequentially;
//! * [`KnnEngine::search_many`](crate::engine::KnnEngine::search_many) —
//!   executes a slice of requests through the partition-major batch
//!   engine, grouping compatible requests so each group is planned,
//!   decoded and scored together, with outcomes bit-identical to calling
//!   `search` once per request.
//!
//! Both types implement the [`Encode`]/[`Decode`] codec from
//! `climber_dfs::format`, so the serving layer's wire protocol carries
//! them directly — a served query is byte-for-byte the request a local
//! caller would build.

use climber_dfs::format::{ByteReader, Decode, Encode};

/// Which search strategy a [`SearchRequest`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// CLIMBER-kNN (Algorithm 3): the single best trie node, expanding
    /// within already-opened partitions when short of `k`.
    Exact,
    /// CLIMBER-kNN-Adaptive with a partition cap of `factor ×` the plain
    /// plan (the paper evaluates 2X and 4X; 4X is its default variation).
    Adaptive(u32),
    /// The query is linearly resampled to the indexed series length first
    /// (§II: PAA-family representations support shorter queries), then
    /// runs Adaptive with the given factor. Distances in the outcome are
    /// squared ED between the resampled query and the stored series.
    Resampled(u32),
    /// The OD-Smallest full-group scan (ablation baseline, Figure 11(b)).
    Smallest,
}

impl SearchMode {
    /// Wire tag for this mode.
    fn tag(self) -> u8 {
        match self {
            SearchMode::Exact => 0,
            SearchMode::Adaptive(_) => 1,
            SearchMode::Resampled(_) => 2,
            SearchMode::Smallest => 3,
        }
    }
}

impl Encode for SearchMode {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tag().encode(out);
        match *self {
            SearchMode::Adaptive(f) | SearchMode::Resampled(f) => f.encode(out),
            SearchMode::Exact | SearchMode::Smallest => 0u32.encode(out),
        }
    }
}

impl Decode for SearchMode {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        let tag = r.u8()?;
        let factor = r.u32()?;
        match tag {
            0 => Ok(SearchMode::Exact),
            1 => Ok(SearchMode::Adaptive(factor)),
            2 => Ok(SearchMode::Resampled(factor)),
            3 => Ok(SearchMode::Smallest),
            other => Err(format!("unknown search mode tag {other}")),
        }
    }
}

/// One approximate kNN request: the single shape every entry point — the
/// facade, the batch engine, and the network serving layer — accepts.
///
/// ```
/// use climber_query::search::{SearchMode, SearchRequest};
///
/// let req = SearchRequest::new(vec![0.0; 64], 10)
///     .adaptive(4)
///     .with_budget(32);
/// assert_eq!(req.k, 10);
/// assert_eq!(req.mode, SearchMode::Adaptive(4));
/// assert_eq!(req.budget, Some(32));
/// assert!(req.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// The query series (any length for [`SearchMode::Resampled`];
    /// the indexed length otherwise).
    pub query: Vec<f32>,
    /// Answer size.
    pub k: usize,
    /// Search strategy.
    pub mode: SearchMode,
    /// Optional cap on the distinct partitions the plan may read: the
    /// plan is truncated (deterministically, ascending partition id) to
    /// at most this many partitions before refinement. `None` = the
    /// strategy's own plan, untruncated.
    pub budget: Option<u32>,
}

impl SearchRequest {
    /// A request for the `k` nearest neighbours of `query` under the
    /// default strategy, Adaptive-4X (the paper's default variation).
    pub fn new(query: impl Into<Vec<f32>>, k: usize) -> Self {
        Self {
            query: query.into(),
            k,
            mode: SearchMode::Adaptive(4),
            budget: None,
        }
    }

    /// Switches to [`SearchMode::Exact`] (plain CLIMBER-kNN).
    #[must_use]
    pub fn exact(mut self) -> Self {
        self.mode = SearchMode::Exact;
        self
    }

    /// Switches to [`SearchMode::Adaptive`] with the given factor.
    #[must_use]
    pub fn adaptive(mut self, factor: usize) -> Self {
        self.mode = SearchMode::Adaptive(factor as u32);
        self
    }

    /// Switches to [`SearchMode::Resampled`] with the given factor.
    #[must_use]
    pub fn resampled(mut self, factor: usize) -> Self {
        self.mode = SearchMode::Resampled(factor as u32);
        self
    }

    /// Switches to [`SearchMode::Smallest`] (OD-Smallest ablation scan).
    #[must_use]
    pub fn smallest(mut self) -> Self {
        self.mode = SearchMode::Smallest;
        self
    }

    /// Caps the plan at `max_partitions` distinct partitions.
    #[must_use]
    pub fn with_budget(mut self, max_partitions: usize) -> Self {
        self.budget = Some(max_partitions as u32);
        self
    }

    /// Checks the request is executable without panicking: `k` positive,
    /// a non-empty query, and a positive factor for the factor-carrying
    /// modes. The serving layer maps a failure onto a typed bad-request
    /// response instead of letting a malformed frame kill a worker.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be positive".into());
        }
        if self.query.is_empty() {
            return Err("query must be non-empty".into());
        }
        match self.mode {
            SearchMode::Adaptive(0) | SearchMode::Resampled(0) => {
                Err("factor must be positive".into())
            }
            _ => Ok(()),
        }
    }
}

impl Encode for SearchRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.query.len() as u64).encode(out);
        for &v in &self.query {
            v.encode(out);
        }
        (self.k as u64).encode(out);
        self.mode.encode(out);
        match self.budget {
            Some(b) => {
                1u8.encode(out);
                b.encode(out);
            }
            None => {
                0u8.encode(out);
                0u32.encode(out);
            }
        }
    }
}

impl Decode for SearchRequest {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        let n = r.u64()? as usize;
        if n > r.remaining() / 4 {
            return Err(format!("query length {n} exceeds frame size"));
        }
        let mut query = Vec::with_capacity(n);
        for _ in 0..n {
            query.push(r.f32()?);
        }
        let k = r.u64()? as usize;
        let mode = SearchMode::decode(r)?;
        let has_budget = r.u8()?;
        let budget_val = r.u32()?;
        let budget = match has_budget {
            0 => None,
            1 => Some(budget_val),
            other => return Err(format!("bad budget flag {other}")),
        };
        Ok(Self {
            query,
            k,
            mode,
            budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_covers_every_mode() {
        let q = vec![1.0f32, 2.0];
        assert_eq!(
            SearchRequest::new(q.clone(), 3).mode,
            SearchMode::Adaptive(4)
        );
        assert_eq!(
            SearchRequest::new(q.clone(), 3).exact().mode,
            SearchMode::Exact
        );
        assert_eq!(
            SearchRequest::new(q.clone(), 3).adaptive(2).mode,
            SearchMode::Adaptive(2)
        );
        assert_eq!(
            SearchRequest::new(q.clone(), 3).resampled(4).mode,
            SearchMode::Resampled(4)
        );
        assert_eq!(
            SearchRequest::new(q, 3).smallest().mode,
            SearchMode::Smallest
        );
    }

    #[test]
    fn validate_rejects_malformed_requests() {
        assert!(SearchRequest::new(vec![1.0], 0).validate().is_err());
        assert!(SearchRequest::new(Vec::<f32>::new(), 5).validate().is_err());
        assert!(SearchRequest::new(vec![1.0], 5)
            .adaptive(0)
            .validate()
            .is_err());
        assert!(SearchRequest::new(vec![1.0], 5)
            .resampled(0)
            .validate()
            .is_err());
        assert!(SearchRequest::new(vec![1.0], 5).exact().validate().is_ok());
        assert!(SearchRequest::new(vec![1.0], 5)
            .smallest()
            .validate()
            .is_ok());
    }

    #[test]
    fn request_roundtrips_through_the_codec() {
        let reqs = [
            SearchRequest::new(vec![1.5f32, -2.25, 0.0], 7).exact(),
            SearchRequest::new(vec![0.5f32; 9], 100)
                .adaptive(2)
                .with_budget(5),
            SearchRequest::new(vec![f32::MIN, f32::MAX], 1).resampled(4),
            SearchRequest::new(vec![3.0f32], 2).smallest(),
        ];
        for req in reqs {
            let bytes = req.encode_vec();
            let back = SearchRequest::decode_vec(&bytes).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn codec_rejects_truncation_and_bad_tags() {
        let bytes = SearchRequest::new(vec![1.0f32, 2.0], 5).encode_vec();
        assert!(SearchRequest::decode_vec(&bytes[..bytes.len() - 1]).is_err());
        // oversized query length is rejected before allocating
        let mut huge = bytes.clone();
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(SearchRequest::decode_vec(&huge).is_err());
        // unknown mode tag
        let mut bad = bytes.clone();
        let mode_at = 8 + 2 * 4 + 8; // query len + 2 floats + k
        bad[mode_at] = 9;
        assert!(SearchRequest::decode_vec(&bad).is_err());
        // bad budget flag
        let mut bad = bytes;
        let flag_at = 8 + 2 * 4 + 8 + 5; // ... + mode tag + factor
        bad[flag_at] = 7;
        assert!(SearchRequest::decode_vec(&bad).is_err());
    }
}
