//! CLIMBER-kNN-Adaptive (§VI).
//!
//! Algorithm 3 can land on a trie node holding fewer than `k` records; the
//! other clusters packed into the same partition are not necessarily close
//! to the query, so accuracy degrades (Figure 12(a) measures exactly this).
//! The adaptive variant *memorises* all groups tied on the smallest OD and,
//! within each, the chain of best-matching trie nodes (the deepest node and
//! its ancestors — the "longest and 2nd longest best matches"). When the
//! primary node covers fewer than `k` estimated records it expands across
//! those memorised nodes until the covered size exceeds `k`, capped at
//! `factor ×` the partitions CLIMBER-kNN would access (2X and 4X in the
//! paper's evaluation).

use crate::knn::{add_node_reads, descend_group, select_primary};
use crate::plan::QueryPlan;
use climber_index::skeleton::{GroupId, IndexSkeleton};
use climber_index::trie::NodeIdx;
use climber_pivot::signature::DualSignature;

/// One memorised candidate trie node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    path_len: usize,
    size: u64,
    group: GroupId,
    node: NodeIdx,
}

/// Builds the adaptive plan. `factor` is the partition cap multiplier (2
/// for Adaptive-2X, 4 for Adaptive-4X); `factor = 1` degenerates to the
/// plain CLIMBER-kNN plan.
///
/// # Panics
/// If `k == 0` or `factor == 0`.
pub fn plan_adaptive(
    skeleton: &IndexSkeleton,
    sig: &DualSignature,
    k: usize,
    factor: usize,
    qseed: u64,
) -> QueryPlan {
    assert!(k > 0, "k must be positive");
    assert!(factor > 0, "factor must be positive");

    // Primary selection — identical to CLIMBER-kNN, so the adaptive
    // variants behave exactly like it whenever Size(GN) >= k.
    let primary = select_primary(skeleton, sig, qseed);
    let mut plan = QueryPlan {
        primary_group: primary.group,
        primary_path_len: primary.path_len,
        primary_node_size: primary.size,
        groups: vec![primary.group],
        ..QueryPlan::default()
    };
    add_node_reads(skeleton, primary.group, primary.node, &mut plan);
    let base_partitions = plan.num_partitions().max(1);
    if primary.size >= k as u64 || factor == 1 {
        return plan;
    }
    let cap = base_partitions * factor;

    // Memorise candidates: for every OD-tied group, the descent node and
    // its ancestor chain (each ancestor is the next-longest best match).
    let (od_tied, _) = skeleton.groups_by_overlap(sig);
    let mut candidates: Vec<Candidate> = Vec::new();
    for &g in &od_tied {
        let d = descend_group(skeleton, g, sig);
        let trie = &skeleton.groups[g as usize].trie;
        // Recover the ancestor chain by re-descending with shorter prefixes.
        for keep in (0..=d.path_len).rev() {
            let dd = trie.descend(&sig.sensitive.0[..keep]);
            candidates.push(Candidate {
                path_len: dd.path_len,
                size: trie.node(dd.node).est_size,
                group: g,
                node: dd.node,
            });
        }
    }
    // Deeper matches first (better locality); at equal depth the larger
    // node (same preference ladder as Algorithm 3 lines 16-17).
    candidates.sort_by(|a, b| {
        b.path_len
            .cmp(&a.path_len)
            .then(b.size.cmp(&a.size))
            .then(a.group.cmp(&b.group))
    });
    candidates.dedup_by_key(|c| (c.group, c.node));

    // Greedy expansion under the partition cap.
    let mut covered = primary.size;
    for c in candidates {
        if covered >= k as u64 {
            break;
        }
        if c.group == primary.group && c.node == primary.node {
            continue; // already read
        }
        let mut tentative = plan.clone();
        add_node_reads(skeleton, c.group, c.node, &mut tentative);
        if tentative.num_partitions() > cap {
            continue; // would blow the cap; try a cheaper candidate
        }
        let added = tentative.est_candidates - plan.est_candidates;
        if !tentative.groups.contains(&c.group) {
            tentative.groups.push(c.group);
        }
        plan = tentative;
        covered += added;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::plan_knn;
    use climber_dfs::store::MemStore;
    use climber_index::builder::IndexBuilder;
    use climber_index::config::IndexConfig;
    use climber_series::gen::Domain;

    fn build_index() -> (IndexSkeleton, climber_series::dataset::Dataset) {
        let ds = Domain::RandomWalk.generate(600, 19);
        let store = MemStore::new();
        let cfg = IndexConfig::default()
            .with_paa_segments(8)
            .with_pivots(32)
            .with_prefix_len(5)
            .with_capacity(40)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(5)
            .with_workers(2);
        let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
        (skeleton, ds)
    }

    #[test]
    fn small_k_matches_plain_knn() {
        // When the primary node already covers k, adaptive == kNN.
        let (skeleton, ds) = build_index();
        for qid in [0u64, 33, 99] {
            let sig = skeleton.extract_signature(ds.get(qid));
            let plain = plan_knn(&skeleton, &sig, qid);
            if plain.primary_node_size >= 1 {
                let adaptive = plan_adaptive(&skeleton, &sig, 1, 4, qid);
                assert_eq!(plain, adaptive, "query {qid}");
            }
        }
    }

    #[test]
    fn large_k_expands_coverage() {
        let (skeleton, ds) = build_index();
        let mut expanded = 0;
        for qid in 0..30u64 {
            let sig = skeleton.extract_signature(ds.get(qid));
            let plain = plan_knn(&skeleton, &sig, qid);
            let k = (plain.primary_node_size as usize + 1) * 4;
            let adaptive = plan_adaptive(&skeleton, &sig, k, 4, qid);
            assert!(
                adaptive.est_candidates >= plain.est_candidates,
                "query {qid}"
            );
            if adaptive.est_candidates > plain.est_candidates {
                expanded += 1;
            }
        }
        assert!(expanded > 0, "adaptive never expanded on any query");
    }

    #[test]
    fn partition_cap_is_respected() {
        let (skeleton, ds) = build_index();
        for qid in 0..30u64 {
            let sig = skeleton.extract_signature(ds.get(qid));
            let plain = plan_knn(&skeleton, &sig, qid);
            for factor in [2usize, 4] {
                let adaptive = plan_adaptive(&skeleton, &sig, 10_000, factor, qid);
                assert!(
                    adaptive.num_partitions() <= plain.num_partitions().max(1) * factor,
                    "query {qid}: {} partitions > cap {}",
                    adaptive.num_partitions(),
                    plain.num_partitions().max(1) * factor
                );
            }
        }
    }

    #[test]
    fn factor_one_is_plain_knn() {
        let (skeleton, ds) = build_index();
        for qid in [5u64, 45] {
            let sig = skeleton.extract_signature(ds.get(qid));
            assert_eq!(
                plan_knn(&skeleton, &sig, qid),
                plan_adaptive(&skeleton, &sig, 10_000, 1, qid)
            );
        }
    }

    #[test]
    fn four_x_covers_at_least_two_x() {
        let (skeleton, ds) = build_index();
        for qid in 0..20u64 {
            let sig = skeleton.extract_signature(ds.get(qid));
            let two = plan_adaptive(&skeleton, &sig, 5_000, 2, qid);
            let four = plan_adaptive(&skeleton, &sig, 5_000, 4, qid);
            assert!(
                four.est_candidates >= two.est_candidates,
                "query {qid}: 4X covered less than 2X"
            );
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let (skeleton, ds) = build_index();
        let sig = skeleton.extract_signature(ds.get(0));
        plan_adaptive(&skeleton, &sig, 0, 2, 0);
    }
}
