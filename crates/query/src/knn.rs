//! CLIMBER-kNN (Algorithm 3): global index search for the single best
//! matching trie node.
//!
//! Tie-break ladder, exactly as the paper specifies:
//! 1. smallest OD over group centroids (lines 5-6);
//! 2. smallest WD among OD-tied groups (lines 7-9);
//! 3. longest trie path `PathLen(GN)` (lines 14-15);
//! 4. largest node size `Size(GN)` (lines 16-17);
//! 5. deterministic pseudo-random pick (lines 18-19).

use crate::plan::QueryPlan;
use climber_index::skeleton::{GroupId, IndexSkeleton, FALLBACK_GROUP};
use climber_index::trie::NodeIdx;
use climber_pivot::assignment::splitmix64;
use climber_pivot::distances::weight_distance;
use climber_pivot::signature::DualSignature;

/// A candidate `(group, trie node)` pair produced by descending one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupDescent {
    /// The group descended into.
    pub group: GroupId,
    /// Deepest node reached (`GN`).
    pub node: NodeIdx,
    /// Path length from the root (`PathLen(GN)`).
    pub path_len: usize,
    /// Estimated records under the node (`Size(GN)`).
    pub size: u64,
}

/// Lines 5-9 of Algorithm 3: the OD-best groups, then the WD tie-break.
/// Returns the surviving group ids (possibly several — a second tie).
pub fn select_groups(skeleton: &IndexSkeleton, sig: &DualSignature) -> Vec<GroupId> {
    let (od_tied, _) = skeleton.groups_by_overlap(sig);
    if od_tied == [FALLBACK_GROUP] || od_tied.len() == 1 {
        return od_tied;
    }
    // WD tie-break (lines 7-9).
    let wds: Vec<f64> = od_tied
        .iter()
        .map(|&g| {
            let c = skeleton.groups[g as usize]
                .centroid
                .as_ref()
                .expect("real group has centroid");
            weight_distance(&sig.sensitive, c, skeleton.decay)
        })
        .collect();
    let best = wds.iter().cloned().fold(f64::INFINITY, f64::min);
    od_tied
        .iter()
        .zip(wds.iter())
        .filter(|&(_, &wd)| wd <= best + f64::EPSILON * best.abs().max(1.0))
        .map(|(&g, _)| g)
        .collect()
}

/// Descends one group's trie along the rank-sensitive signature
/// (line 11-13).
pub fn descend_group(skeleton: &IndexSkeleton, g: GroupId, sig: &DualSignature) -> GroupDescent {
    let trie = &skeleton.groups[g as usize].trie;
    let d = trie.descend(&sig.sensitive.0);
    GroupDescent {
        group: g,
        node: d.node,
        path_len: d.path_len,
        size: trie.node(d.node).est_size,
    }
}

/// Lines 10-19: descends every candidate group and applies the
/// longest-path → largest-size → random ladder, returning the single
/// winner.
pub fn select_primary(skeleton: &IndexSkeleton, sig: &DualSignature, qseed: u64) -> GroupDescent {
    let groups = select_groups(skeleton, sig);
    let mut descents: Vec<GroupDescent> = groups
        .iter()
        .map(|&g| descend_group(skeleton, g, sig))
        .collect();
    // longest path
    let max_path = descents
        .iter()
        .map(|d| d.path_len)
        .max()
        .expect("non-empty");
    descents.retain(|d| d.path_len == max_path);
    // largest node size
    let max_size = descents.iter().map(|d| d.size).max().expect("non-empty");
    descents.retain(|d| d.size == max_size);
    if descents.len() == 1 {
        return descents[0];
    }
    // random among the already well-matching rest (deterministic in qseed)
    let pick = (splitmix64(skeleton.seed ^ qseed) % descents.len() as u64) as usize;
    descents[pick]
}

/// Builds the CLIMBER-kNN query plan: the partitions associated with `GN`
/// and the trie-node clusters under it (plus the overflow cluster stored
/// under the trie root in the group's default partition when the search
/// lands at the root).
pub fn plan_knn(skeleton: &IndexSkeleton, sig: &DualSignature, qseed: u64) -> QueryPlan {
    let primary = select_primary(skeleton, sig, qseed);
    let mut plan = QueryPlan {
        primary_group: primary.group,
        primary_path_len: primary.path_len,
        primary_node_size: primary.size,
        groups: vec![primary.group],
        ..QueryPlan::default()
    };
    add_node_reads(skeleton, primary.group, primary.node, &mut plan);
    plan
}

/// Adds the reads for one `(group, node)` selection to a plan: every leaf
/// cluster under the node (in its packed partition), plus the group's
/// overflow cluster when the node is the trie root.
pub fn add_node_reads(skeleton: &IndexSkeleton, g: GroupId, node: NodeIdx, plan: &mut QueryPlan) {
    let meta = &skeleton.groups[g as usize];
    let trie = &meta.trie;
    for leaf_idx in trie.leaves_under(node) {
        let leaf = trie.node(leaf_idx);
        plan.add_read(leaf.partitions[0], leaf.id);
        plan.est_candidates += leaf.est_size;
    }
    if node == 0 {
        // Root: include the default-partition overflow cluster (records
        // that could not complete a root-to-leaf walk are stored there
        // under the root's node id).
        plan.add_read(meta.default_partition, trie.root().id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_dfs::store::MemStore;
    use climber_index::builder::IndexBuilder;
    use climber_index::config::IndexConfig;
    use climber_series::gen::Domain;

    fn build_index() -> (IndexSkeleton, MemStore, climber_series::dataset::Dataset) {
        let ds = Domain::RandomWalk.generate(500, 41);
        let store = MemStore::new();
        let cfg = IndexConfig::default()
            .with_paa_segments(8)
            .with_pivots(32)
            .with_prefix_len(5)
            .with_capacity(60)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(3)
            .with_workers(2);
        let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
        (skeleton, store, ds)
    }

    #[test]
    fn primary_group_achieves_min_od() {
        let (skeleton, _, ds) = build_index();
        for qid in [0u64, 50, 100, 499] {
            let sig = skeleton.extract_signature(ds.get(qid));
            let primary = select_primary(&skeleton, &sig, qid);
            let (od_tied, _) = skeleton.groups_by_overlap(&sig);
            assert!(
                od_tied.contains(&primary.group),
                "query {qid}: primary {} not OD-optimal {:?}",
                primary.group,
                od_tied
            );
        }
    }

    #[test]
    fn plan_reads_cover_selected_node() {
        let (skeleton, _, ds) = build_index();
        let sig = skeleton.extract_signature(ds.get(7));
        let plan = plan_knn(&skeleton, &sig, 7);
        assert!(!plan.reads.is_empty());
        // Every read partition belongs to the primary group's trie or its
        // default partition.
        let meta = &skeleton.groups[plan.primary_group as usize];
        let mut allowed: Vec<u32> = meta
            .trie
            .nodes()
            .iter()
            .flat_map(|n| n.partitions.iter().copied())
            .collect();
        allowed.push(meta.default_partition);
        for &pid in plan.reads.keys() {
            assert!(allowed.contains(&pid), "partition {pid} outside group");
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let (skeleton, _, ds) = build_index();
        let sig = skeleton.extract_signature(ds.get(123));
        assert_eq!(
            plan_knn(&skeleton, &sig, 123),
            plan_knn(&skeleton, &sig, 123)
        );
    }

    #[test]
    fn indexed_record_descends_to_its_own_cluster() {
        // For a query that IS an indexed record, the plan must include the
        // cluster that record was stored in.
        let (skeleton, _, ds) = build_index();
        for qid in [3u64, 77, 200] {
            let placement = skeleton.place(ds.get(qid), qid);
            let sig = skeleton.extract_signature(ds.get(qid));
            let plan = plan_knn(&skeleton, &sig, qid);
            if plan.primary_group == placement.group {
                let covered = plan
                    .reads
                    .get(&placement.partition)
                    .map(|cs| cs.contains(&placement.node))
                    .unwrap_or(false);
                assert!(
                    covered,
                    "query {qid}: own cluster (p{}, n{}) not in plan {:?}",
                    placement.partition, placement.node, plan.reads
                );
            }
        }
    }

    #[test]
    fn select_groups_survives_wd_tiebreak() {
        let (skeleton, _, ds) = build_index();
        let sig = skeleton.extract_signature(ds.get(42));
        let gs = select_groups(&skeleton, &sig);
        assert!(!gs.is_empty());
        assert!(gs.iter().all(|&g| (g as usize) < skeleton.groups.len()));
    }
}
