//! Scatter-side primitives for multi-shard query execution.
//!
//! A sharded index holds N record-disjoint stores under one shared
//! skeleton. Executing a query batch against it decomposes into exactly
//! the phases the partition-major batch engine ([`crate::batch`]) already
//! runs against a single store — and this module factors those phases out
//! so the single-store executor and a shard fan-out run the *same code*:
//!
//! * [`plan_queries`] — plan every query once against the shared skeleton
//!   (plans depend only on the skeleton and the query, so one planning
//!   pass serves every shard);
//! * [`scan_shard`] — the partition-major planned scan of one store:
//!   open each selected partition once, decode each selected cluster
//!   once, score it against every interested query. Returns one
//!   [`TopK`] per query plus the scan accounting ([`ShardScan`]);
//! * [`expand_shard_partition`] — the within-partition expansion fallback
//!   for one `(store, partition)` pair, used by a gather loop that must
//!   interleave expansion across shards in plan order.
//!
//! ## Cross-shard shared-bound pruning
//!
//! [`scan_shard`] takes the per-query [`SharedBound`]s from the caller
//! instead of creating its own. A shard fan-out passes the *same* bound
//! array to every shard, so a shard that has already collected `k`
//! candidates publishes its k-th distance and every other shard
//! early-abandons against the best global bound — the cross-shard pruning
//! half of a scatter-gather top-k. This is sound for bit-identical
//! results: a bound is only ever published by a heap holding `k` real
//! candidates, so any record abandoned against it is provably outside the
//! global top-k; and `records_scanned` counts the merged candidate
//! stream, not the offers, so the accounting is bound-independent.

use crate::adaptive::plan_adaptive;
use crate::batch::BatchStrategy;
use crate::engine::query_seed;
use crate::knn::plan_knn;
use crate::od_smallest::plan_od_smallest;
use crate::plan::QueryPlan;
use crate::refine::{expand_partition, scan_decoded_range};
use crate::updates::UpdateView;
use climber_dfs::format::{ClusterBuf, TrieNodeId};
use climber_dfs::quant::{QuantCache, QuantizedCluster};
use climber_dfs::store::{PartitionId, PartitionStore};
use climber_index::skeleton::IndexSkeleton;
use climber_repr::paa::{paa, paa_into};
use climber_series::distance::ed_early_abandon;
use climber_series::topk::{SharedBound, TopK};
use rayon::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Work discovered for one partition: cluster → the queries that chose it.
type PartitionWork = BTreeMap<TrieNodeId, Vec<usize>>;

/// Records scored per cache block in the partition-major scan: at 256
/// points a record decodes to 1 KiB, so a block stays L1-resident while
/// every interested query of the batch scans it.
pub(crate) const SCAN_BLOCK_RECORDS: usize = 16;

/// Segments of the shared PAA prefilter (see [`scan_block_prefiltered`]).
pub(crate) const PREFILTER_SEGMENTS: usize = 16;

/// Minimum queries sharing a cluster before its PAA signatures are worth
/// computing: below this the signature pass costs about what it saves.
pub(crate) const PREFILTER_MIN_QUERIES: usize = 4;

/// Plans every query independently, in parallel, against `skeleton`:
/// the batch engine's planning phase, exposed so a shard fan-out can plan
/// **once** on the shared skeleton and execute the same plans on every
/// shard. `partition_cap`, when set, truncates each plan deterministically
/// (ascending partition id) — the budget semantics of
/// [`SearchRequest::with_budget`](crate::search::SearchRequest::with_budget).
pub fn plan_queries(
    skeleton: &IndexSkeleton,
    queries: &[Vec<f32>],
    k: usize,
    strategy: BatchStrategy,
    partition_cap: Option<usize>,
) -> Vec<QueryPlan> {
    let signatures = skeleton.extract_signatures(queries);
    (0..queries.len())
        .into_par_iter()
        .map(|qi| {
            let sig = &signatures[qi];
            let seed = query_seed(&queries[qi]);
            let mut plan = match strategy {
                BatchStrategy::Knn => plan_knn(skeleton, sig, seed),
                BatchStrategy::Adaptive { factor } => plan_adaptive(skeleton, sig, k, factor, seed),
                BatchStrategy::OdSmallest => plan_od_smallest(skeleton, sig),
            };
            if let Some(cap) = partition_cap {
                plan.truncate_partitions(cap);
            }
            plan
        })
        .collect()
}

/// The result of one store's planned partition-major scan: per-query
/// heaps and scan counters, plus which planned partitions failed to open.
#[derive(Debug)]
pub struct ShardScan {
    /// One heap per query, holding that query's best candidates from this
    /// store's planned clusters.
    pub tops: Vec<TopK>,
    /// Per-query records scanned (merged candidate stream length).
    pub scanned: Vec<u64>,
    /// Planned partitions that failed to open (treated as empty —
    /// fault tolerance, same as the sequential engine).
    pub failed: BTreeSet<PartitionId>,
    /// Distinct partitions successfully opened by the scan.
    pub partitions_opened: usize,
    /// Records physically decoded from partition bytes.
    pub records_decoded: u64,
}

/// Scores one block of decoded records against one query, first pruning
/// with the Keogh PAA lower bound computed from signatures shared by every
/// query of the batch.
///
/// Soundness (results stay bit-identical to the unfiltered scan):
/// per-segment Cauchy–Schwarz gives `len_s · (mean_x − mean_y)² ≤
/// Σ_s (x_j − y_j)²`, so `floor(n/w) · Σ (paa_x − paa_y)² ≤ sq_ed(x, y)`
/// even for uneven segment splits (the floor weight under-weights the
/// longer leading segments). A record is skipped only when this lower
/// bound exceeds the query's current bound with a relative safety margin
/// (1e-9, many orders above f64 rounding), and any such record is provably
/// not in the final top-k — exactly like an `ed_early_abandon` rejection,
/// just ~n/w times cheaper.
#[allow(clippy::too_many_arguments)]
fn scan_block_prefiltered(
    query: &[f32],
    query_paa: &[f64],
    buf: &ClusterBuf,
    paas: &[f64],
    segments: usize,
    scale: f64,
    range: std::ops::Range<usize>,
    top: &mut TopK,
    shared: &SharedBound,
) {
    for i in range {
        let bound = top.bound_with(shared);
        if bound.is_finite() {
            let rp = &paas[i * segments..(i + 1) * segments];
            let mut lb = 0.0f64;
            for (a, b) in query_paa.iter().zip(rp.iter()) {
                let d = a - b;
                lb += d * d;
            }
            if lb * scale > bound * (1.0 + 1e-9) {
                continue;
            }
        }
        let (id, vals) = buf.get(i);
        if let Some(d) = ed_early_abandon(query, vals, bound) {
            top.offer(id, d);
        }
    }
    top.publish_bound(shared);
}

/// Executes the planned partition-major scan against one store: the
/// batch engine's fan-out phase, factored out so a single-store batch and
/// an N-shard scatter run the identical loop. Partitions selected by any
/// plan are fanned out across threads via the [`rayon::scope`] work
/// queue; each is opened once, each needed cluster decoded once (merging
/// `updates` when present), and the decoded records scored against every
/// interested query behind the shared PAA prefilter.
///
/// `bounds` must hold one [`SharedBound`] per query; passing the same
/// array for every shard of a fan-out enables cross-shard pruning (see
/// the module docs for the soundness argument).
///
/// `quant`, when present and enabled, serves sealed cluster decodes from
/// the 8-bit quantized record cache: on a hit, only the records whose
/// admissible quantized lower bound cannot rule them out for at least one
/// interested query are promoted to exact `f32` — every skipped record
/// provably lies outside that query's current bound, i.e. exactly the
/// records an `ed_early_abandon` rejection would drop, so outcomes are
/// unchanged. Clusters touched by updates always bypass the cache.
pub fn scan_shard<S: PartitionStore>(
    store: &S,
    queries: &[Vec<f32>],
    k: usize,
    plans: &[QueryPlan],
    bounds: &[SharedBound],
    updates: Option<UpdateView<'_>>,
    quant: Option<&QuantCache>,
) -> ShardScan {
    let nq = queries.len();
    assert_eq!(plans.len(), nq, "one plan per query");
    assert_eq!(bounds.len(), nq, "one shared bound per query");

    // Per-query PAA signatures for the shared prefilter (empty when the
    // query is too short to segment — the scan then runs unfiltered).
    let qpaas: Vec<Vec<f64>> = queries
        .par_iter()
        .map(|q| {
            let segs = PREFILTER_SEGMENTS.min(q.len());
            if segs == 0 {
                Vec::new()
            } else {
                paa(q, segs)
            }
        })
        .collect();

    // Regroup the union of all plans by partition, then by cluster.
    let mut work: BTreeMap<PartitionId, PartitionWork> = BTreeMap::new();
    for (qi, plan) in plans.iter().enumerate() {
        for (&pid, clusters) in &plan.reads {
            let per_cluster = work.entry(pid).or_default();
            for &node in clusters {
                per_cluster.entry(node).or_default().push(qi);
            }
        }
    }

    // Shared per-query state for the partition-major pass.
    let heaps: Vec<Mutex<TopK>> = (0..nq).map(|_| Mutex::new(TopK::new(k))).collect();
    let scanned: Vec<AtomicU64> = (0..nq).map(|_| AtomicU64::new(0)).collect();
    let failed: Mutex<BTreeSet<PartitionId>> = Mutex::new(BTreeSet::new());
    let opened = AtomicUsize::new(0);
    let decoded = AtomicU64::new(0);

    // Fan partitions out across threads; skewed partition sizes balance
    // over the scope's shared work queue.
    rayon::scope(|s| {
        for (&pid, per_cluster) in &work {
            let (heaps, bounds, scanned) = (&heaps, &bounds, &scanned);
            let (failed, opened, decoded) = (&failed, &opened, &decoded);
            let qpaas = &qpaas;
            s.spawn(move |_| {
                let Ok(reader) = store.open(pid) else {
                    failed.lock().unwrap().insert(pid);
                    return;
                };
                opened.fetch_add(1, Ordering::Relaxed);
                let series_len = reader.series_len();
                let segments = PREFILTER_SEGMENTS.min(series_len);
                let scale = (series_len / segments) as f64;
                let mut buf = ClusterBuf::new();
                let mut paas: Vec<f64> = Vec::new();
                let mut locals: Vec<Option<TopK>> = vec![None; queries.len()];
                let mut touched: Vec<usize> = Vec::new();
                for (&node, interested) in per_cluster {
                    buf.clear();
                    let bytes = reader.cluster_bytes(node).unwrap_or(0);
                    // Sealed clusters may be served from the quantized
                    // record cache; clusters touched by updates never are.
                    let cache = match updates {
                        None => quant.filter(|c| c.is_enabled()),
                        Some(_) => None,
                    };
                    // Zero-copy fast path: a sealed cluster only one query
                    // selected gains nothing from the shared ClusterBuf
                    // (no decode amortisation, no prefilter — it needs
                    // `interested.len() >= PREFILTER_MIN_QUERIES`), so
                    // it is scanned straight off the (possibly
                    // block-cached) partition image. Visit order, bounds
                    // and every counter match the decoded path exactly.
                    if interested.len() == 1 && updates.is_none() && cache.is_none() {
                        if let Some(view) = reader.cluster_view(node) {
                            let qi = interested[0];
                            store.stats().on_read(bytes as u64);
                            store.stats().on_records_read(view.len() as u64);
                            decoded.fetch_add(view.len() as u64, Ordering::Relaxed);
                            if locals[qi].is_none() {
                                locals[qi] = Some(TopK::new(k));
                                touched.push(qi);
                            }
                            scanned[qi].fetch_add(view.len() as u64, Ordering::Relaxed);
                            let top = locals[qi].as_mut().expect("created above");
                            view.for_each(|id, vals| {
                                if let Some(d) = ed_early_abandon(
                                    &queries[qi],
                                    vals,
                                    top.bound_with(&bounds[qi]),
                                ) {
                                    top.offer(id, d);
                                }
                            });
                            top.publish_bound(&bounds[qi]);
                            continue;
                        }
                    }
                    let cached = cache.and_then(|c| c.get(pid, node));
                    // `counted` is the logical candidate-stream length
                    // every interested query charges to records_scanned;
                    // on a quantized hit it stays the full sealed cluster
                    // count even though `buf` holds only the survivors.
                    let counted = if let Some(qc) = &cached {
                        // Quantized hit: promote the union of survivors
                        // across all interested queries, each judged
                        // against its own bound at cluster entry (local
                        // heap bound ∧ shared bound — both are k-th
                        // distances over real candidates, so any record
                        // skipped for every query is provably outside
                        // every final top-k).
                        if let Some(recs) = reader.cluster_records(node) {
                            let thresholds: Vec<f64> = interested
                                .iter()
                                .map(|&qi| {
                                    let own =
                                        locals[qi].as_ref().map_or(f64::INFINITY, |t| t.bound());
                                    own.min(bounds[qi].get())
                                })
                                .collect();
                            for i in 0..qc.len() {
                                let keep = interested.iter().zip(&thresholds).any(|(&qi, &t)| {
                                    queries[qi].len() != qc.series_len()
                                        || !qc.lb_exceeds(i, &queries[qi], t)
                                });
                                if keep {
                                    recs.push_into(i, &mut buf);
                                }
                            }
                            let record_size = (8 + qc.series_len() * 4) as u64;
                            let promoted = buf.len() as u64;
                            store.stats().on_read(promoted * record_size);
                            store.stats().on_records_read(promoted);
                        }
                        qc.len() as u64
                    } else {
                        // Physical decode; with updates active the sealed
                        // records are tombstone-filtered at decode time and
                        // the delta cluster under the same (partition, node)
                        // key is appended, so everything downstream — the
                        // shared prefilter, the block loop, the per-query
                        // scans — sees one merged candidate stream.
                        let physical = match updates {
                            None => reader.read_cluster_into(node, &mut buf),
                            Some(u) => {
                                let tomb = u.tombstones.read();
                                let p = reader
                                    .read_cluster_into_if(node, &mut buf, |id| !tomb.contains(id));
                                u.delta.read_cluster_into(pid, node, &mut buf, |id| {
                                    !tomb.contains(id)
                                });
                                p
                            }
                        };
                        store.stats().on_read(bytes as u64);
                        store.stats().on_records_read(physical);
                        if let Some(c) = cache {
                            if let Some(qc) = QuantizedCluster::from_buf(&buf) {
                                c.insert(pid, node, qc);
                            }
                        }
                        buf.len() as u64
                    };
                    decoded.fetch_add(buf.len() as u64, Ordering::Relaxed);
                    // PAA signatures for the prefilter: computed once per
                    // cluster, shared by every query scanning it — but
                    // only when enough queries share the cluster to
                    // amortise the signature pass.
                    let prefilter = interested.len() >= PREFILTER_MIN_QUERIES;
                    paas.clear();
                    if prefilter {
                        for i in 0..buf.len() {
                            paa_into(buf.get(i).1, segments, &mut paas);
                        }
                    }
                    for &qi in interested {
                        if locals[qi].is_none() {
                            locals[qi] = Some(TopK::new(k));
                            touched.push(qi);
                        }
                        scanned[qi].fetch_add(counted, Ordering::Relaxed);
                    }
                    // Score in small record blocks: the block stays
                    // cache-resident while every interested query scans
                    // it. Per query the record visit order is unchanged,
                    // so offers — and results — are identical to one
                    // full pass (see `scan_decoded_range`).
                    let mut lo = 0usize;
                    while lo < buf.len() {
                        let hi = (lo + SCAN_BLOCK_RECORDS).min(buf.len());
                        for &qi in interested {
                            let top = locals[qi].as_mut().expect("created above");
                            if prefilter
                                && qpaas[qi].len() == segments
                                && queries[qi].len() == series_len
                            {
                                scan_block_prefiltered(
                                    &queries[qi],
                                    &qpaas[qi],
                                    &buf,
                                    &paas,
                                    segments,
                                    scale,
                                    lo..hi,
                                    top,
                                    &bounds[qi],
                                );
                            } else {
                                scan_decoded_range(&queries[qi], &buf, lo..hi, top, &bounds[qi]);
                            }
                        }
                        lo = hi;
                    }
                }
                for qi in touched {
                    let local = locals[qi].take().expect("touched implies created");
                    let mut global = heaps[qi].lock().unwrap();
                    global.merge(local);
                    global.publish_bound(&bounds[qi]);
                }
            });
        }
    });

    ShardScan {
        tops: heaps.into_iter().map(|m| m.into_inner().unwrap()).collect(),
        scanned: scanned.into_iter().map(AtomicU64::into_inner).collect(),
        failed: failed.into_inner().unwrap(),
        partitions_opened: opened.into_inner(),
        records_decoded: decoded.into_inner(),
    }
}

/// Runs the within-partition expansion fallback for one `(store,
/// partition)` pair: opens the partition and scans every cluster the plan
/// did not select (sealed first, then delta-only nodes), offering records
/// into `top`. Returns the records scanned, or `None` when the partition
/// fails to open (the caller counts that shard as degraded rather than
/// aborting the gather).
///
/// A shard fan-out calls this per shard with a **fresh** heap and merges
/// it back: [`TopK::merge`] does not deduplicate, so expansion candidates
/// must never share a heap with records already merged globally — shard
/// stores are record-disjoint and expansion clusters are disjoint from
/// planned ones, so a fresh local per `(shard, partition)` is exactly
/// right.
pub fn expand_shard_partition<S: PartitionStore>(
    store: &S,
    pid: PartitionId,
    planned: &[TrieNodeId],
    query: &[f32],
    top: &mut TopK,
    updates: Option<UpdateView<'_>>,
    quant: Option<&QuantCache>,
) -> Option<u64> {
    let Ok(reader) = store.open(pid) else {
        return None;
    };
    Some(expand_partition(
        &reader,
        pid,
        planned,
        query,
        top,
        store.stats(),
        updates,
        quant,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchRequest;
    use crate::engine::KnnEngine;
    use climber_dfs::store::MemStore;
    use climber_index::builder::IndexBuilder;
    use climber_index::config::IndexConfig;
    use climber_series::dataset::Dataset;
    use climber_series::gen::Domain;

    fn build(n: usize) -> (IndexSkeleton, MemStore, Dataset) {
        let ds = Domain::RandomWalk.generate(n, 17);
        let store = MemStore::new();
        let cfg = IndexConfig::default()
            .with_paa_segments(8)
            .with_pivots(48)
            .with_prefix_len(6)
            .with_capacity(80)
            .with_alpha(0.4)
            .with_epsilon(1)
            .with_seed(5)
            .with_workers(2);
        let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
        (skeleton, store, ds)
    }

    #[test]
    fn plan_queries_matches_sequential_planning() {
        let (skeleton, store, ds) = build(400);
        let engine = KnnEngine::new(&skeleton, &store);
        let queries: Vec<Vec<f32>> = (0..8u64).map(|i| ds.get(i * 37).to_vec()).collect();
        let plans = plan_queries(&skeleton, &queries, 10, BatchStrategy::Knn, None);
        for (q, plan) in queries.iter().zip(&plans) {
            assert_eq!(plan, &engine.knn(q, 10).plan);
        }
        // A cap truncates exactly like a request budget.
        let capped = plan_queries(&skeleton, &queries, 10, BatchStrategy::OdSmallest, Some(1));
        assert!(capped.iter().all(|p| p.num_partitions() <= 1));
    }

    #[test]
    fn scan_shard_heaps_match_batch_outcomes() {
        let (skeleton, store, ds) = build(500);
        let engine = KnnEngine::new(&skeleton, &store);
        let queries: Vec<Vec<f32>> = (0..10u64).map(|i| ds.get(i * 41).to_vec()).collect();
        let k = 8;
        let plans = plan_queries(
            &skeleton,
            &queries,
            k,
            BatchStrategy::Adaptive { factor: 4 },
            None,
        );
        let bounds: Vec<SharedBound> = (0..queries.len()).map(|_| SharedBound::new()).collect();
        let scan = scan_shard(&store, &queries, k, &plans, &bounds, None, None);
        assert!(scan.failed.is_empty());
        let batch = engine.batch(&BatchRequest::adaptive(&queries, k, 4));
        for (qi, top) in scan.tops.into_iter().enumerate() {
            // Heaps that reached k need no expansion: they already ARE
            // the per-query outcome of the batch engine.
            if top.len() >= k {
                assert_eq!(top.into_sorted(), batch.outcomes[qi].results, "query {qi}");
                assert_eq!(scan.scanned[qi], batch.outcomes[qi].records_scanned);
            }
        }
    }

    #[test]
    fn expand_shard_partition_reports_missing_partition() {
        let (_, store, _) = build(200);
        let mut top = TopK::new(3);
        let missing = expand_shard_partition(&store, 9_999, &[], &[0.0; 4], &mut top, None, None);
        assert!(missing.is_none());
        let pid = store.ids()[0];
        let q = vec![0.0f32; store.open(pid).unwrap().series_len()];
        let n = expand_shard_partition(&store, pid, &[], &q, &mut top, None, None);
        assert!(n.is_some());
        assert_eq!(n.unwrap(), store.open(pid).unwrap().record_count());
    }
}
