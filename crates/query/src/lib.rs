//! # climber-query
//!
//! Query processing for CLIMBER (§VI).
//!
//! Three search strategies over the two-level index, all ending in the same
//! record-level Euclidean refinement ([`refine`]):
//!
//! * [`knn`] — **CLIMBER-kNN** (Algorithm 3): navigate to the single best
//!   matching trie node `GN` (OD → WD → longest-path → largest-size →
//!   random tie-breaks) and read its partitions, expanding within already
//!   opened partitions when the node holds fewer than `k` records;
//! * [`adaptive`] — **CLIMBER-kNN-Adaptive**: memorises every OD-tied group
//!   and the ancestors of their best trie nodes, expanding across
//!   partitions until `k` candidates are covered, capped at `factor` times
//!   the partitions CLIMBER-kNN would touch (the paper's 2X/4X variants);
//! * [`od_smallest`] — the ablation baseline of Figure 11(b): scan *all*
//!   partitions of every OD-tied group (stop at Algorithm 3 line 6).
//!
//! Each strategy runs either **per query** through [`KnnEngine::knn`] and
//! friends, or over a whole query batch through [`KnnEngine::batch`], which
//! executes the union of all plans **partition-major** across threads (open
//! each partition once, decode each cluster once, score it against every
//! query that selected it) with bit-identical results — see [`batch`].

#![warn(missing_docs)]

pub mod adaptive;
pub mod batch;
pub mod engine;
pub mod knn;
pub mod od_smallest;
pub mod plan;
pub mod refine;
pub mod scatter;
pub mod search;
pub mod updates;

pub use batch::{BatchOutcome, BatchRequest, BatchStrategy};
pub use engine::KnnEngine;
pub use plan::{QueryOutcome, QueryPlan};
pub use search::{SearchMode, SearchRequest};
pub use updates::UpdateView;
