//! # climber-query
//!
//! Query processing for CLIMBER (§VI).
//!
//! Three search strategies over the two-level index, all ending in the same
//! record-level Euclidean refinement ([`refine`]):
//!
//! * [`knn`] — **CLIMBER-kNN** (Algorithm 3): navigate to the single best
//!   matching trie node `GN` (OD → WD → longest-path → largest-size →
//!   random tie-breaks) and read its partitions, expanding within already
//!   opened partitions when the node holds fewer than `k` records;
//! * [`adaptive`] — **CLIMBER-kNN-Adaptive**: memorises every OD-tied group
//!   and the ancestors of their best trie nodes, expanding across
//!   partitions until `k` candidates are covered, capped at `factor` times
//!   the partitions CLIMBER-kNN would touch (the paper's 2X/4X variants);
//! * [`od_smallest`] — the ablation baseline of Figure 11(b): scan *all*
//!   partitions of every OD-tied group (stop at Algorithm 3 line 6).

pub mod adaptive;
pub mod engine;
pub mod knn;
pub mod od_smallest;
pub mod plan;
pub mod refine;

pub use engine::KnnEngine;
pub use plan::{QueryOutcome, QueryPlan};
