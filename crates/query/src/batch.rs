//! Batched, multi-threaded query execution (the QPS-oriented engine).
//!
//! The per-query engine answers one query at a time: plan, then walk the
//! plan's partitions, decoding every selected cluster for that one query.
//! Under a query *stream* this wastes most of the I/O and decode work —
//! nearby queries select overlapping partitions, and each one re-opens and
//! re-decodes the same bytes.
//!
//! [`KnnEngine::batch`](crate::engine::KnnEngine::batch) instead takes a
//! whole [`BatchRequest`] and executes it **partition-major**:
//!
//! 1. every query is planned independently (in parallel — planning is pure
//!    CPU over the in-memory skeleton);
//! 2. the union of all plans is regrouped *by partition*: for each
//!    partition, which clusters are needed, and for each cluster, which
//!    queries selected it;
//! 3. partitions are fanned out across threads via the work-queue
//!    [`rayon::scope`]. Each partition is opened **once**, each needed
//!    cluster decoded **once** into a reused buffer, and the decoded
//!    records are scored against every interested query — in small
//!    cache-resident record blocks, behind a per-cluster Keogh PAA
//!    prefilter whose signatures are likewise computed once and shared by
//!    all the cluster's queries (the soundness argument lives on
//!    `scan_block_prefiltered` in [`crate::scatter`], where phases 1–3
//!    now live so a sharded index can run the identical scan per shard).
//!    Each query keeps its own `TopK` heap and
//!    early-abandon bound; workers refining the same query on different
//!    partitions cooperate through a lock-free shared bound;
//! 4. per-query heaps are merged and the within-partition expansion
//!    fallback (rarely needed) replays the sequential engine's exact loop.
//!
//! **Equivalence guarantee:** the returned [`QueryOutcome`]s are
//! bit-identical — results, distances, `records_scanned`,
//! `partitions_opened`, and plan — to calling the sequential engine once
//! per query, for any batch size and thread count. The distance kernel,
//! tie-breaks, and expansion order are shared with the per-query path, and
//! a [`TopK`](climber_series::topk::TopK)'s content is insertion-order
//! independent; threading only
//! changes how much early-abandon work is skipped, never what survives.
//! The property test `batch_equivalence.rs` asserts this across random
//! datasets, batch sizes, and thread counts.

use crate::plan::QueryOutcome;
use crate::scatter::{expand_shard_partition, plan_queries, scan_shard, ShardScan};
use crate::updates::UpdateView;
use climber_dfs::quant::QuantCache;
use climber_dfs::store::PartitionStore;
use climber_index::skeleton::IndexSkeleton;
use climber_series::topk::SharedBound;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Which search strategy a batch runs (one strategy for the whole batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStrategy {
    /// CLIMBER-kNN (Algorithm 3) per query.
    Knn,
    /// CLIMBER-kNN-Adaptive with the given partition-cap factor
    /// (2 = Adaptive-2X, 4 = Adaptive-4X) per query.
    Adaptive {
        /// Partition cap multiplier over the plain plan.
        factor: usize,
    },
    /// The OD-Smallest full-group scan per query (ablation baseline).
    OdSmallest,
}

impl BatchStrategy {
    /// Whether this strategy uses the within-partition expansion fallback
    /// when the planned scan comes up short of `k`. Public so a sharded
    /// gather loop can replay the same fallback decision the single-store
    /// executor makes.
    pub fn expands(self) -> bool {
        !matches!(self, BatchStrategy::OdSmallest)
    }
}

/// A batch of kNN queries to execute together, partition-major.
///
/// ```
/// use climber_dfs::store::MemStore;
/// use climber_index::builder::IndexBuilder;
/// use climber_index::config::IndexConfig;
/// use climber_query::batch::BatchRequest;
/// use climber_query::engine::KnnEngine;
/// use climber_series::gen::Domain;
///
/// let ds = Domain::RandomWalk.generate(400, 7);
/// let store = MemStore::new();
/// let cfg = IndexConfig::default().with_pivots(32).with_capacity(80);
/// let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
/// let engine = KnnEngine::new(&skeleton, &store);
///
/// let queries: Vec<Vec<f32>> = (0..8u64).map(|i| ds.get(i * 50).to_vec()).collect();
/// let batch = engine.batch(&BatchRequest::knn(&queries, 10).with_threads(4));
///
/// // Identical to running the sequential engine once per query.
/// assert_eq!(batch.outcomes.len(), 8);
/// for (q, out) in queries.iter().zip(&batch.outcomes) {
///     assert_eq!(*out, engine.knn(q, 10));
/// }
/// // ... while doing strictly less physical work.
/// assert!(batch.records_decoded <= batch.records_scanned);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchRequest<'a> {
    queries: &'a [Vec<f32>],
    k: usize,
    strategy: BatchStrategy,
    threads: usize,
    partition_cap: Option<usize>,
}

impl<'a> BatchRequest<'a> {
    /// A batch running CLIMBER-kNN for every query.
    pub fn knn(queries: &'a [Vec<f32>], k: usize) -> Self {
        Self::new(queries, k, BatchStrategy::Knn)
    }

    /// A batch running CLIMBER-kNN-Adaptive (`factor` = 2 or 4 in the
    /// paper) for every query.
    pub fn adaptive(queries: &'a [Vec<f32>], k: usize, factor: usize) -> Self {
        Self::new(queries, k, BatchStrategy::Adaptive { factor })
    }

    /// A batch running the OD-Smallest ablation scan for every query.
    pub fn od_smallest(queries: &'a [Vec<f32>], k: usize) -> Self {
        Self::new(queries, k, BatchStrategy::OdSmallest)
    }

    /// A batch with an explicit [`BatchStrategy`]. The queries are
    /// borrowed, not copied — a request is a cheap view a serving loop
    /// can rebuild per burst.
    ///
    /// # Panics
    /// If `k == 0`, or the strategy is `Adaptive` with `factor == 0`.
    pub fn new(queries: &'a [Vec<f32>], k: usize, strategy: BatchStrategy) -> Self {
        assert!(k > 0, "k must be positive");
        if let BatchStrategy::Adaptive { factor } = strategy {
            assert!(factor > 0, "factor must be positive");
        }
        Self {
            queries,
            k,
            strategy,
            threads: 0,
            partition_cap: None,
        }
    }

    /// Sets the worker thread count (`0` = use the machine's available
    /// parallelism, the default). The vendored rayon shim additionally
    /// caps live workers at the hardware thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The queries, in result order.
    pub fn queries(&self) -> &'a [Vec<f32>] {
        self.queries
    }

    /// The answer size per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The strategy applied to every query.
    pub fn strategy(&self) -> BatchStrategy {
        self.strategy
    }

    /// The configured worker thread count (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Caps every per-query plan at `cap` distinct partitions, truncated
    /// deterministically (ascending partition id) before execution — the
    /// batch-side counterpart of a [`SearchRequest`] budget, applied
    /// identically so budgeted outcomes stay bit-identical between the
    /// sequential and the batched executor.
    ///
    /// [`SearchRequest`]: crate::search::SearchRequest
    #[must_use]
    pub fn with_partition_cap(mut self, cap: usize) -> Self {
        self.partition_cap = Some(cap);
        self
    }

    /// The configured per-plan partition cap, if any.
    pub fn partition_cap(&self) -> Option<usize> {
        self.partition_cap
    }
}

/// The result of executing a [`BatchRequest`]: per-query outcomes plus the
/// batch-level physical I/O the partition-major execution actually paid.
///
/// `outcomes[i]` is bit-identical to running query `i` alone through the
/// sequential engine; the aggregate counters show the sharing win:
/// `records_scanned` is the *logical* work (what per-query execution would
/// decode), `records_decoded` the *physical* work after each cluster is
/// decoded once for all its queries.
///
/// ```
/// use climber_dfs::store::MemStore;
/// use climber_index::builder::IndexBuilder;
/// use climber_index::config::IndexConfig;
/// use climber_query::batch::BatchRequest;
/// use climber_query::engine::KnnEngine;
/// use climber_series::gen::Domain;
///
/// let ds = Domain::RandomWalk.generate(300, 11);
/// let store = MemStore::new();
/// let (skeleton, _) = IndexBuilder::new(
///     IndexConfig::default().with_pivots(32).with_capacity(60),
/// )
/// .build(&ds, &store);
/// let engine = KnnEngine::new(&skeleton, &store);
///
/// // 20 queries drawn from the same region overlap heavily in their
/// // plans, so each decoded record serves several per-query scans.
/// let queries: Vec<Vec<f32>> = (0..20u64).map(|i| ds.get(i % 10).to_vec()).collect();
/// let outcome = engine.batch(&BatchRequest::adaptive(&queries, 5, 4));
///
/// assert_eq!(outcome.outcomes.len(), 20);
/// assert!(outcome.sharing_factor() >= 1.0);
/// assert_eq!(
///     outcome.records_scanned,
///     outcome.outcomes.iter().map(|o| o.records_scanned).sum::<u64>(),
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One outcome per query, in request order.
    pub outcomes: Vec<QueryOutcome>,
    /// Physical partition opens performed (each shared partition opened
    /// once, plus any re-opens by the expansion fallback).
    pub partitions_opened: usize,
    /// Records physically decoded from partition bytes.
    pub records_decoded: u64,
    /// Sum of the per-query `records_scanned` (the logical work).
    pub records_scanned: u64,
}

impl BatchOutcome {
    /// How many times each physically decoded record was reused across
    /// queries on average (`>= 1`; higher = more sharing).
    pub fn sharing_factor(&self) -> f64 {
        if self.records_decoded == 0 {
            1.0
        } else {
            self.records_scanned as f64 / self.records_decoded as f64
        }
    }
}

/// Executes a batch request against a skeleton + store, merging the
/// mutable segments of `updates` (delta clusters + tombstone filter) into
/// every cluster scan when present. Called through
/// [`KnnEngine::batch`](crate::engine::KnnEngine::batch).
pub(crate) fn execute<S: PartitionStore>(
    skeleton: &IndexSkeleton,
    store: &S,
    req: &BatchRequest<'_>,
    updates: Option<UpdateView<'_>>,
    quant: Option<&QuantCache>,
) -> BatchOutcome {
    let nq = req.queries.len();
    if nq == 0 {
        return BatchOutcome {
            outcomes: Vec::new(),
            partitions_opened: 0,
            records_decoded: 0,
            records_scanned: 0,
        };
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(req.threads)
        .build()
        .expect("thread pool");
    pool.install(|| execute_pooled(skeleton, store, req, updates, quant))
}

fn execute_pooled<S: PartitionStore>(
    skeleton: &IndexSkeleton,
    store: &S,
    req: &BatchRequest<'_>,
    updates: Option<UpdateView<'_>>,
    quant: Option<&QuantCache>,
) -> BatchOutcome {
    let nq = req.queries.len();
    let k = req.k;

    // Phase 0 — plan every query independently, in parallel (shared with
    // the sharded executor, which plans once for all shards).
    let plans = plan_queries(skeleton, req.queries, k, req.strategy, req.partition_cap);

    // Phase 1 — the planned partition-major scan. The single-store batch
    // is the one-shard special case of the scatter path: one fresh bound
    // array, one store, the same fan-out loop.
    let bounds: Vec<SharedBound> = (0..nq).map(|_| SharedBound::new()).collect();
    let ShardScan {
        tops,
        scanned,
        failed,
        partitions_opened: opened,
        records_decoded,
    } = scan_shard(store, req.queries, k, &plans, &bounds, updates, quant);
    let decoded = AtomicU64::new(records_decoded);

    // Phase 2 — finalize each query (in parallel across queries): replay
    // the sequential engine's within-partition expansion when short of k,
    // then sort. Expansion re-opens the partition (the sequential path
    // still holds it open), which only affects physical stats, not the
    // outcome.
    let items: Vec<(usize, _)> = tops.into_iter().enumerate().collect();
    let expands = req.strategy.expands();
    let reopens = AtomicUsize::new(0);
    let outcomes: Vec<QueryOutcome> = items
        .into_par_iter()
        .map(|(qi, mut top)| {
            let plan = &plans[qi];
            let query = &req.queries[qi];
            let partitions_opened = plan
                .reads
                .keys()
                .filter(|pid| !failed.contains(pid))
                .count();
            let mut records_scanned = scanned[qi];
            if expands && top.len() < k {
                for (pid, planned) in &plan.reads {
                    if failed.contains(pid) {
                        continue;
                    }
                    let Some(n) = expand_shard_partition(
                        store, *pid, planned, query, &mut top, updates, quant,
                    ) else {
                        continue;
                    };
                    reopens.fetch_add(1, Ordering::Relaxed);
                    records_scanned += n;
                    // Expansion decodes per query, so it counts as
                    // physical work too — like the re-opens above.
                    decoded.fetch_add(n, Ordering::Relaxed);
                    if top.len() >= k {
                        break;
                    }
                }
            }
            QueryOutcome {
                results: top.into_sorted(),
                partitions_opened,
                records_scanned,
                plan: plan.clone(),
            }
        })
        .collect();

    let records_scanned = outcomes.iter().map(|o| o.records_scanned).sum();
    BatchOutcome {
        outcomes,
        partitions_opened: opened + reopens.load(Ordering::Relaxed),
        records_decoded: decoded.load(Ordering::Relaxed),
        records_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::KnnEngine;
    use climber_dfs::store::MemStore;
    use climber_index::builder::IndexBuilder;
    use climber_index::config::IndexConfig;
    use climber_series::dataset::Dataset;
    use climber_series::gen::Domain;

    fn build(domain: Domain, n: usize) -> (IndexSkeleton, MemStore, Dataset) {
        let ds = domain.generate(n, 91);
        let store = MemStore::new();
        let cfg = IndexConfig::default()
            .with_paa_segments(8)
            .with_pivots(48)
            .with_prefix_len(6)
            .with_capacity(80)
            .with_alpha(0.4)
            .with_epsilon(1)
            .with_seed(5)
            .with_workers(2);
        let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
        (skeleton, store, ds)
    }

    fn queries_of(ds: &Dataset, n: usize) -> Vec<Vec<f32>> {
        (0..n as u64)
            .map(|i| ds.get((i * 37) % ds.num_series() as u64).to_vec())
            .collect()
    }

    #[test]
    fn batch_knn_identical_to_sequential() {
        let (skeleton, store, ds) = build(Domain::RandomWalk, 400);
        let engine = KnnEngine::new(&skeleton, &store);
        let queries = queries_of(&ds, 12);
        for threads in [1, 2, 5] {
            let batch = engine.batch(&BatchRequest::knn(&queries, 10).with_threads(threads));
            assert_eq!(batch.outcomes.len(), queries.len());
            for (q, out) in queries.iter().zip(&batch.outcomes) {
                assert_eq!(out, &engine.knn(q, 10), "threads={threads}");
            }
        }
    }

    #[test]
    fn batch_adaptive_identical_to_sequential() {
        let (skeleton, store, ds) = build(Domain::Eeg, 350);
        let engine = KnnEngine::new(&skeleton, &store);
        let queries = queries_of(&ds, 9);
        // large k forces the adaptive cross-partition expansion AND the
        // within-partition fallback
        let batch = engine.batch(&BatchRequest::adaptive(&queries, 120, 4).with_threads(3));
        for (q, out) in queries.iter().zip(&batch.outcomes) {
            assert_eq!(out, &engine.knn_adaptive(q, 120, 4));
        }
    }

    #[test]
    fn batch_od_smallest_identical_to_sequential() {
        let (skeleton, store, ds) = build(Domain::Dna, 300);
        let engine = KnnEngine::new(&skeleton, &store);
        let queries = queries_of(&ds, 6);
        let batch = engine.batch(&BatchRequest::od_smallest(&queries, 25).with_threads(2));
        for (q, out) in queries.iter().zip(&batch.outcomes) {
            assert_eq!(out, &engine.od_smallest(q, 25));
        }
    }

    #[test]
    fn batch_decodes_less_than_it_scans() {
        let (skeleton, store, ds) = build(Domain::TexMex, 500);
        let engine = KnnEngine::new(&skeleton, &store);
        // clustered data: many queries land in the same partitions
        let queries = queries_of(&ds, 40);
        let batch = engine.batch(&BatchRequest::adaptive(&queries, 10, 4));
        assert!(batch.records_decoded > 0);
        assert!(
            batch.records_decoded < batch.records_scanned,
            "no sharing: decoded {} vs scanned {}",
            batch.records_decoded,
            batch.records_scanned
        );
        assert!(batch.sharing_factor() > 1.0);
    }

    #[test]
    fn empty_batch_is_empty() {
        let (skeleton, store, _) = build(Domain::RandomWalk, 200);
        let engine = KnnEngine::new(&skeleton, &store);
        let batch = engine.batch(&BatchRequest::knn(&[], 5));
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.partitions_opened, 0);
    }

    #[test]
    fn single_query_batch_matches_single_query() {
        let (skeleton, store, ds) = build(Domain::RandomWalk, 300);
        let engine = KnnEngine::new(&skeleton, &store);
        let q = ds.get(11).to_vec();
        let qs = vec![q.clone()];
        let batch = engine.batch(&BatchRequest::knn(&qs, 7).with_threads(8));
        assert_eq!(batch.outcomes[0], engine.knn(&q, 7));
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        let (skeleton, store, ds) = build(Domain::Eeg, 300);
        let engine = KnnEngine::new(&skeleton, &store);
        let queries = queries_of(&ds, 8);
        let a = engine.batch(&BatchRequest::adaptive(&queries, 30, 2).with_threads(1));
        let b = engine.batch(&BatchRequest::adaptive(&queries, 30, 2).with_threads(4));
        let c = engine.batch(&BatchRequest::adaptive(&queries, 30, 2).with_threads(8));
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(b.outcomes, c.outcomes);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        BatchRequest::knn(&[], 0);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_factor_rejected() {
        BatchRequest::adaptive(&[], 5, 0);
    }
}
