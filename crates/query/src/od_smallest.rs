//! The OD-Smallest ablation algorithm (§VII-C, Figure 11(b)).
//!
//! Instead of narrowing to trie nodes, stop at Algorithm 3 line 6 and scan
//! *every partition of every group* whose OD to the query is the smallest.
//! It reads 6-7× more data than the CLIMBER variants for <10% extra recall
//! in the paper — the experiment that justifies the trie level.

use crate::plan::QueryPlan;
use climber_index::skeleton::IndexSkeleton;
use climber_pivot::signature::DualSignature;

/// Builds the OD-Smallest plan: all partitions (all leaf clusters plus the
/// overflow cluster) of every OD-tied group.
pub fn plan_od_smallest(skeleton: &IndexSkeleton, sig: &DualSignature) -> QueryPlan {
    let (groups, _) = skeleton.groups_by_overlap(sig);
    let mut plan = QueryPlan {
        primary_group: groups[0],
        primary_path_len: 0,
        groups: groups.clone(),
        ..QueryPlan::default()
    };
    for &g in &groups {
        crate::knn::add_node_reads(skeleton, g, 0, &mut plan);
    }
    plan.primary_node_size = plan.est_candidates;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::plan_knn;
    use climber_dfs::store::MemStore;
    use climber_index::builder::IndexBuilder;
    use climber_index::config::IndexConfig;
    use climber_series::gen::Domain;

    fn build_index() -> (IndexSkeleton, climber_series::dataset::Dataset) {
        let ds = Domain::Eeg.generate(500, 31);
        let store = MemStore::new();
        let cfg = IndexConfig::default()
            .with_paa_segments(8)
            .with_pivots(32)
            .with_prefix_len(5)
            .with_capacity(50)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(9)
            .with_workers(2);
        let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
        (skeleton, ds)
    }

    #[test]
    fn od_smallest_superset_of_knn_within_group() {
        let (skeleton, ds) = build_index();
        for qid in 0..20u64 {
            let sig = skeleton.extract_signature(ds.get(qid));
            let knn = plan_knn(&skeleton, &sig, qid);
            let ods = plan_od_smallest(&skeleton, &sig);
            // If OD-Smallest includes the kNN primary group, its reads must
            // cover every kNN read (kNN prunes within the group).
            if ods.groups.contains(&knn.primary_group) {
                for (pid, clusters) in &knn.reads {
                    let sup = ods.reads.get(pid).unwrap_or_else(|| {
                        panic!("query {qid}: partition {pid} missing from OD-Smallest")
                    });
                    for c in clusters {
                        assert!(sup.contains(c), "query {qid}: cluster {c} missing");
                    }
                }
            }
            assert!(ods.est_candidates >= knn.est_candidates);
            assert!(ods.num_partitions() >= knn.num_partitions());
        }
    }

    #[test]
    fn scans_whole_groups() {
        let (skeleton, ds) = build_index();
        let sig = skeleton.extract_signature(ds.get(3));
        let plan = plan_od_smallest(&skeleton, &sig);
        // every partition of each selected group's trie must appear
        for &g in &plan.groups {
            let meta = &skeleton.groups[g as usize];
            for n in meta.trie.nodes() {
                for &pid in &n.partitions {
                    assert!(plan.reads.contains_key(&pid), "group {g} partition {pid}");
                }
            }
        }
    }
}
