//! Record-level ED refinement (§VI, "Localized Record-Level Similarity").
//!
//! Given a plan, load each partition's selected trie-node clusters (the
//! partition header makes each cluster independently addressable), compare
//! every record against the raw query with early-abandoning squared ED, and
//! rank the top `k`.
//!
//! CLIMBER-kNN additionally "expands the search within the same partition"
//! when the selected clusters hold fewer than `k` records: the remaining
//! clusters of the already-opened partitions are read before giving up on
//! `k` results — no extra partitions are touched.
//!
//! Two scanning paths live here:
//!
//! * the **per-query** path ([`refine`]) — one query walks its plan,
//!   decoding records on the fly;
//! * the **partition-major** primitives (`scan_decoded_range`,
//!   `expand_partition`) — shared with [`crate::batch`], which opens each
//!   partition once, decodes each cluster once into a
//!   [`climber_dfs::format::ClusterBuf`], and scores it against every query
//!   of a batch that selected it.
//!
//! Both paths feed the same [`TopK`] with distances from the same kernel,
//! so their results are bit-identical.
//!
//! ## Updates
//!
//! When the engine carries an [`UpdateView`], every cluster scan becomes a
//! *merged* scan: the sealed cluster's records (minus tombstoned ids) and
//! the delta-segment cluster under the same `(partition, node)` key are
//! decoded into one [`ClusterBuf`] candidate stream, and only that stream
//! is scored. Tombstones are filtered **before** any distance is offered
//! to the [`TopK`], so a deleted record can neither appear in an answer
//! nor displace a survivor; `records_scanned` counts the merged stream —
//! exactly what a from-scratch conversion of the surviving records under
//! the same skeleton would scan.

use crate::plan::{QueryOutcome, QueryPlan};
use crate::updates::UpdateView;
use climber_dfs::format::{ClusterBuf, PartitionReader, TrieNodeId};
use climber_dfs::quant::{QuantCache, QuantizedCluster};
use climber_dfs::stats::IoStats;
use climber_dfs::store::{PartitionId, PartitionStore};
use climber_series::distance::ed_early_abandon;
use climber_series::topk::{SharedBound, TopK};

/// Executes `plan` against `store`, returning the top-`k` records by
/// squared ED.
///
/// `expand_within_partitions` enables the within-partition fallback
/// described above (used by CLIMBER-kNN and the adaptive variants).
/// `updates`, when present, merges delta clusters into every scan and
/// filters tombstones out of the candidate stream. `quant`, when present
/// and enabled, serves sealed cluster scans from the 8-bit quantized
/// record cache (see `scan_cluster` for the equivalence argument).
#[allow(clippy::too_many_arguments)]
pub fn refine<S: PartitionStore>(
    store: &S,
    plan: &QueryPlan,
    query: &[f32],
    k: usize,
    expand_within_partitions: bool,
    updates: Option<UpdateView<'_>>,
    quant: Option<&QuantCache>,
) -> QueryOutcome {
    assert!(k > 0, "k must be positive");
    let mut top = TopK::new(k);
    let mut records_scanned = 0u64;
    let mut partitions_opened = 0usize;
    let mut buf = ClusterBuf::new();

    // First pass: the planned clusters.
    let mut openers: Vec<(u32, PartitionReader)> = Vec::new();
    for (&pid, clusters) in &plan.reads {
        let Ok(reader) = store.open(pid) else {
            continue; // partition vanished: treat as empty (fault tolerance)
        };
        partitions_opened += 1;
        for &node in clusters {
            records_scanned += scan_cluster(
                &reader,
                pid,
                node,
                query,
                &mut top,
                &mut buf,
                store.stats(),
                updates,
                quant,
            );
        }
        openers.push((pid, reader));
    }

    // Within-partition expansion: read the clusters not in the plan from
    // partitions that are already open.
    if expand_within_partitions && top.len() < k {
        for (pid, reader) in &openers {
            let planned = &plan.reads[pid];
            records_scanned += expand_partition(
                reader,
                *pid,
                planned,
                query,
                &mut top,
                store.stats(),
                updates,
                quant,
            );
            if top.len() >= k {
                break;
            }
        }
    }

    QueryOutcome {
        results: top.into_sorted(),
        partitions_opened,
        records_scanned,
        plan: plan.clone(),
    }
}

/// Scans one `(partition, node)` cluster, offering candidates into `top`.
/// Returns the logical records scanned (what `records_scanned` reports).
///
/// Without updates this is the original sealed visit. With updates, the
/// sealed records that survive the tombstone filter and the delta cluster
/// under the same key are merged into `buf` and scored from there — one
/// candidate stream, identical visit order per record, so results match
/// the sealed path bit for bit whenever the segments are empty.
///
/// When `quant` is present and enabled, the sealed path is served through
/// the quantized record cache instead: a cached cluster is prefiltered on
/// its 8-bit codes and only the records the admissible lower bound cannot
/// rule out are decoded to exact `f32` and scored. A record is skipped
/// only when `lb > bound`, which (by admissibility, `lb <= sq_ed`) implies
/// its true distance exceeds the bound — exactly the records an
/// `ed_early_abandon` rejection would drop — so the surviving top-k is
/// bit-identical to the uncached scan. Updates always bypass the cache:
/// quantized entries reflect sealed bytes only.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_cluster(
    reader: &PartitionReader,
    pid: PartitionId,
    node: TrieNodeId,
    query: &[f32],
    top: &mut TopK,
    buf: &mut ClusterBuf,
    stats: &IoStats,
    updates: Option<UpdateView<'_>>,
    quant: Option<&QuantCache>,
) -> u64 {
    let bytes = reader.cluster_bytes(node).unwrap_or(0);
    let Some(u) = updates else {
        if let Some(cache) = quant.filter(|c| c.is_enabled()) {
            return scan_cluster_quantized(reader, pid, node, query, top, buf, stats, cache);
        }
        // Zero-copy sealed scan: the view borrows the reader's (possibly
        // block-cached) partition image — a refcount bump and a slice, no
        // record memcpy — and visits records in storage order, exactly
        // like the decoding visit it replaces.
        let Some(view) = reader.cluster_view(node) else {
            return 0;
        };
        let n = view.for_each(|id, vals| {
            if let Some(d) = ed_early_abandon(query, vals, top.bound()) {
                top.offer(id, d);
            }
        });
        stats.on_read(bytes as u64);
        stats.on_records_read(n);
        return n;
    };
    buf.clear();
    let physical = {
        let tomb = u.tombstones.read();
        let n = reader.read_cluster_into_if(node, buf, |id| !tomb.contains(id));
        u.delta
            .read_cluster_into(pid, node, buf, |id| !tomb.contains(id));
        n
    };
    stats.on_read(bytes as u64);
    stats.on_records_read(physical);
    for i in 0..buf.len() {
        let (id, vals) = buf.get(i);
        if let Some(d) = ed_early_abandon(query, vals, top.bound()) {
            top.offer(id, d);
        }
    }
    buf.len() as u64
}

/// The sealed cluster scan served through the quantized record cache.
///
/// Hit: scan the cached 8-bit codes; a record whose quantized lower bound
/// exceeds the heap's current bound is skipped without touching its `f32`
/// bytes, and only the survivors are decoded (via
/// [`PartitionReader::cluster_records`] random access) and scored exactly.
/// Miss: decode the whole cluster as usual, score it, and quantize it into
/// the cache for the next visit.
///
/// `records_scanned` stays the full cluster count on both paths — the
/// cache changes how much physical decode work a scan pays, never the
/// logical candidate stream — while the [`IoStats`] record/byte counters
/// report only what was actually decoded (the honest physical I/O).
#[allow(clippy::too_many_arguments)]
fn scan_cluster_quantized(
    reader: &PartitionReader,
    pid: PartitionId,
    node: TrieNodeId,
    query: &[f32],
    top: &mut TopK,
    buf: &mut ClusterBuf,
    stats: &IoStats,
    cache: &QuantCache,
) -> u64 {
    if let Some(qc) = cache.get(pid, node) {
        let Some(recs) = reader.cluster_records(node) else {
            return 0;
        };
        let record_size = (8 + qc.series_len() * 4) as u64;
        let mut scratch: Vec<f32> = Vec::with_capacity(qc.series_len());
        let mut promoted = 0u64;
        for i in 0..qc.len() {
            if query.len() == qc.series_len() && qc.lb_exceeds(i, query, top.bound()) {
                continue;
            }
            recs.values_into(i, &mut scratch);
            promoted += 1;
            if let Some(d) = ed_early_abandon(query, &scratch, top.bound()) {
                top.offer(qc.id(i), d);
            }
        }
        stats.on_read(promoted * record_size);
        stats.on_records_read(promoted);
        return qc.len() as u64;
    }
    let bytes = reader.cluster_bytes(node).unwrap_or(0);
    buf.clear();
    let n = reader.read_cluster_into(node, buf);
    stats.on_read(bytes as u64);
    stats.on_records_read(n);
    for i in 0..buf.len() {
        let (id, vals) = buf.get(i);
        if let Some(d) = ed_early_abandon(query, vals, top.bound()) {
            top.offer(id, d);
        }
    }
    if let Some(qc) = QuantizedCluster::from_buf(buf) {
        cache.insert(pid, node, qc);
    }
    n
}

/// Scans every cluster of an already-opened partition that `planned` did
/// not select — sealed clusters first, then delta-only clusters routed to
/// this partition (nodes the sealed file has never seen) — offering
/// records into `top`. Returns the records scanned.
///
/// This is the within-partition expansion of CLIMBER-kNN, factored out so
/// the sequential path and the batched path execute the *identical* loop —
/// the equivalence guarantee of `batch` depends on it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn expand_partition(
    reader: &PartitionReader,
    pid: PartitionId,
    planned: &[TrieNodeId],
    query: &[f32],
    top: &mut TopK,
    stats: &IoStats,
    updates: Option<UpdateView<'_>>,
    quant: Option<&QuantCache>,
) -> u64 {
    let mut scanned = 0u64;
    let mut buf = ClusterBuf::new();
    let sealed = reader.cluster_ids();
    for &node in &sealed {
        if planned.contains(&node) {
            continue;
        }
        scanned += scan_cluster(
            reader, pid, node, query, top, &mut buf, stats, updates, quant,
        );
    }
    if let Some(u) = updates {
        for node in u.delta.nodes_for(pid) {
            if planned.contains(&node) || sealed.contains(&node) {
                continue;
            }
            scanned += scan_cluster(
                reader, pid, node, query, top, &mut buf, stats, updates, quant,
            );
        }
    }
    scanned
}

/// Scores a range of decoded cluster records against one query: the
/// partition-major inner loop. Abandons with the tighter of the
/// collector's own bound and the [`SharedBound`] published by workers
/// refining the same query on other partitions, then publishes back.
///
/// The batch executor scores clusters in small record blocks so the block
/// stays cache-resident while every interested query scans it. For one
/// query, iterating blocks in order visits records in exactly the same
/// order as one full pass, so the offers — and therefore the results —
/// are identical.
pub(crate) fn scan_decoded_range(
    query: &[f32],
    buf: &ClusterBuf,
    range: std::ops::Range<usize>,
    top: &mut TopK,
    shared: &SharedBound,
) {
    for i in range {
        let (id, vals) = buf.get(i);
        if let Some(d) = ed_early_abandon(query, vals, top.bound_with(shared)) {
            top.offer(id, d);
        }
    }
    top.publish_bound(shared);
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_dfs::format::PartitionWriter;
    use climber_dfs::store::{MemStore, PartitionStore};
    use climber_series::distance::sq_ed;

    /// A store with one partition: cluster 1 = records 0..4 near zero,
    /// cluster 2 = records 10..14 far away.
    fn toy_store() -> MemStore {
        let store = MemStore::new();
        let mut w = PartitionWriter::new(0, 2);
        let near: Vec<(u64, Vec<f32>)> = (0..4).map(|i| (i, vec![i as f32 * 0.1, 0.0])).collect();
        let far: Vec<(u64, Vec<f32>)> = (10..14)
            .map(|i| (i, vec![100.0 + i as f32, 100.0]))
            .collect();
        w.push_cluster(1, near.iter().map(|(id, v)| (*id, v.as_slice())));
        w.push_cluster(2, far.iter().map(|(id, v)| (*id, v.as_slice())));
        store.put(0, w.finish()).unwrap();
        store
    }

    fn plan_for(clusters: &[u64]) -> QueryPlan {
        let mut p = QueryPlan::default();
        for &c in clusters {
            p.add_read(0, c);
        }
        p
    }

    #[test]
    fn refine_ranks_by_distance() {
        let store = toy_store();
        let out = refine(&store, &plan_for(&[1]), &[0.0, 0.0], 2, false, None, None);
        assert_eq!(out.results.len(), 2);
        assert_eq!(out.results[0].0, 0);
        assert_eq!(out.results[1].0, 1);
        assert!((out.results[1].1 - sq_ed(&[0.0, 0.0], &[0.1, 0.0])).abs() < 1e-9);
        assert_eq!(out.records_scanned, 4);
        assert_eq!(out.partitions_opened, 1);
    }

    #[test]
    fn expansion_fires_only_when_short_of_k() {
        let store = toy_store();
        // k=6 > 4 records in cluster 1 → expansion reads cluster 2 too.
        let out = refine(&store, &plan_for(&[1]), &[0.0, 0.0], 6, true, None, None);
        assert_eq!(out.results.len(), 6);
        assert_eq!(out.records_scanned, 8);
        // without expansion we stop at 4
        let out2 = refine(&store, &plan_for(&[1]), &[0.0, 0.0], 6, false, None, None);
        assert_eq!(out2.results.len(), 4);
    }

    #[test]
    fn expansion_not_used_when_k_satisfied() {
        let store = toy_store();
        let out = refine(&store, &plan_for(&[1]), &[0.0, 0.0], 3, true, None, None);
        assert_eq!(out.records_scanned, 4, "must not touch cluster 2");
    }

    #[test]
    fn missing_partition_is_tolerated() {
        let store = toy_store();
        let mut p = plan_for(&[1]);
        p.add_read(99, 1); // nonexistent partition
        let out = refine(&store, &p, &[0.0, 0.0], 2, false, None, None);
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn missing_cluster_is_tolerated() {
        let store = toy_store();
        let out = refine(&store, &plan_for(&[42]), &[0.0, 0.0], 2, false, None, None);
        assert!(out.results.is_empty());
        assert_eq!(out.records_scanned, 0);
    }

    #[test]
    fn results_are_squared_distances_sorted() {
        let store = toy_store();
        let out = refine(
            &store,
            &plan_for(&[1, 2]),
            &[0.0, 0.0],
            8,
            false,
            None,
            None,
        );
        for w in out.results.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(out.results.len(), 8);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let store = toy_store();
        refine(&store, &plan_for(&[1]), &[0.0, 0.0], 0, false, None, None);
    }

    #[test]
    fn tombstoned_records_never_reach_topk() {
        use climber_dfs::segment::{DeltaSegment, TombstoneSet};
        let store = toy_store();
        let delta = DeltaSegment::new();
        let tombstones = TombstoneSet::new();
        tombstones.delete(0); // the nearest record to the query
        let view = UpdateView {
            delta: &delta,
            tombstones: &tombstones,
        };
        let out = refine(
            &store,
            &plan_for(&[1]),
            &[0.0, 0.0],
            2,
            false,
            Some(view),
            None,
        );
        assert!(
            out.results.iter().all(|&(id, _)| id != 0),
            "deleted record served: {:?}",
            out.results
        );
        assert_eq!(out.results[0].0, 1, "survivors fill the answer");
        assert_eq!(out.records_scanned, 3, "scan counts survivors only");
    }

    #[test]
    fn delta_records_merge_into_planned_clusters() {
        use climber_dfs::segment::{DeltaSegment, TombstoneSet};
        let store = toy_store();
        let delta = DeltaSegment::new();
        // route a new nearest record into (partition 0, cluster 1)
        delta.append(0, 1, 500, &[0.01, 0.0]);
        // ... and one into a cluster the sealed partition doesn't have
        delta.append(0, 77, 501, &[0.02, 0.0]);
        let tombstones = TombstoneSet::new();
        let view = UpdateView {
            delta: &delta,
            tombstones: &tombstones,
        };
        let out = refine(
            &store,
            &plan_for(&[1]),
            &[0.0, 0.0],
            2,
            false,
            Some(view),
            None,
        );
        assert_eq!(out.results[0].0, 0, "exact sealed match still first");
        assert_eq!(out.results[1].0, 500, "delta record ranks second");
        assert_eq!(out.records_scanned, 5, "4 sealed + 1 delta");

        // the delta-only cluster 77 is reachable via expansion
        let out = refine(
            &store,
            &plan_for(&[1]),
            &[0.0, 0.0],
            10,
            true,
            Some(view),
            None,
        );
        assert!(out.results.iter().any(|&(id, _)| id == 501));
        assert_eq!(out.records_scanned, 10, "8 sealed + 2 delta");

        // a deleted delta record is filtered like any other
        tombstones.delete(500);
        let out = refine(
            &store,
            &plan_for(&[1]),
            &[0.0, 0.0],
            2,
            false,
            Some(view),
            None,
        );
        assert_eq!(out.results[0].0, 0);
        assert_eq!(out.records_scanned, 4);
    }

    #[test]
    fn empty_update_view_matches_sealed_path_exactly() {
        use climber_dfs::segment::{DeltaSegment, TombstoneSet};
        let store = toy_store();
        let delta = DeltaSegment::new();
        let tombstones = TombstoneSet::new();
        let view = UpdateView {
            delta: &delta,
            tombstones: &tombstones,
        };
        assert!(view.is_noop());
        for (k, expand) in [(2usize, false), (6, true), (8, false)] {
            let a = refine(&store, &plan_for(&[1]), &[0.1, 0.0], k, expand, None, None);
            let b = refine(
                &store,
                &plan_for(&[1]),
                &[0.1, 0.0],
                k,
                expand,
                Some(view),
                None,
            );
            assert_eq!(a, b, "k={k} expand={expand}");
        }
    }

    #[test]
    fn scan_decoded_matches_per_record_visit() {
        let store = toy_store();
        let reader = store.open(0).unwrap();
        let mut buf = ClusterBuf::new();
        reader.read_cluster_into(1, &mut buf);
        reader.read_cluster_into(2, &mut buf);

        let q = [0.3f32, 0.1];
        let shared = SharedBound::new();
        let mut via_buf = TopK::new(3);
        scan_decoded_range(&q, &buf, 0..buf.len(), &mut via_buf, &shared);

        let mut via_visit = TopK::new(3);
        for node in [1u64, 2] {
            reader.for_each_in_cluster(node, |id, vals| {
                if let Some(d) = ed_early_abandon(&q, vals, via_visit.bound()) {
                    via_visit.offer(id, d);
                }
            });
        }
        assert_eq!(via_buf.into_sorted(), via_visit.into_sorted());
        // A full heap published its bound.
        assert!(shared.get() < f64::INFINITY);
    }
}
