//! The query engine: one object tying skeleton + store + the three search
//! strategies together.

use crate::adaptive::plan_adaptive;
use crate::batch::{BatchOutcome, BatchRequest, BatchStrategy};
use crate::knn::plan_knn;
use crate::od_smallest::plan_od_smallest;
use crate::plan::QueryOutcome;
use crate::refine::refine;
use crate::search::{SearchMode, SearchRequest};
use crate::updates::UpdateView;
use climber_dfs::quant::QuantCache;
use climber_dfs::store::PartitionStore;
use climber_index::skeleton::IndexSkeleton;
use climber_series::resample::resample_linear;

/// Executes kNN queries against a built CLIMBER index.
///
/// By default the engine serves the sealed partitions alone. Attaching an
/// [`UpdateView`] with [`with_updates`](Self::with_updates) makes every
/// search strategy — sequential and batched — merge the delta segment's
/// clusters into the candidate stream and filter tombstoned ids before
/// the top-k heap.
#[derive(Debug, Clone, Copy)]
pub struct KnnEngine<'a, S: PartitionStore> {
    skeleton: &'a IndexSkeleton,
    store: &'a S,
    updates: Option<UpdateView<'a>>,
    quant: Option<&'a QuantCache>,
}

impl<'a, S: PartitionStore> KnnEngine<'a, S> {
    /// Creates an engine over a skeleton and its partition store.
    pub fn new(skeleton: &'a IndexSkeleton, store: &'a S) -> Self {
        Self {
            skeleton,
            store,
            updates: None,
            quant: None,
        }
    }

    /// Attaches the index's mutable segments: every query merges delta
    /// clusters and filters tombstones from here on.
    #[must_use]
    pub fn with_updates(mut self, updates: UpdateView<'a>) -> Self {
        self.updates = Some(updates);
        self
    }

    /// Attaches a quantized record cache: sealed cluster scans are served
    /// from 8-bit codes with exact promotion of the survivors whenever the
    /// cache is enabled. Results stay bit-identical either way — the cache
    /// only changes how much physical decode work a scan pays.
    #[must_use]
    pub fn with_quant(mut self, quant: &'a QuantCache) -> Self {
        self.quant = Some(quant);
        self
    }

    /// The skeleton in use.
    pub fn skeleton(&self) -> &IndexSkeleton {
        self.skeleton
    }

    /// The attached update view, if any.
    pub fn updates(&self) -> Option<UpdateView<'a>> {
        self.updates
    }

    /// CLIMBER-kNN (Algorithm 3): single best trie node, within-partition
    /// expansion when short of `k`.
    pub fn knn(&self, query: &[f32], k: usize) -> QueryOutcome {
        let sig = self.skeleton.extract_signature(query);
        let plan = plan_knn(self.skeleton, &sig, query_seed(query));
        refine(self.store, &plan, query, k, true, self.updates, self.quant)
    }

    /// CLIMBER-kNN-Adaptive with partition cap `factor ×` the plain plan
    /// (2 = Adaptive-2X, 4 = Adaptive-4X).
    pub fn knn_adaptive(&self, query: &[f32], k: usize, factor: usize) -> QueryOutcome {
        let sig = self.skeleton.extract_signature(query);
        let plan = plan_adaptive(self.skeleton, &sig, k, factor, query_seed(query));
        refine(self.store, &plan, query, k, true, self.updates, self.quant)
    }

    /// OD-Smallest: scan every partition of every OD-tied group
    /// (the Figure 11(b) ablation baseline).
    pub fn od_smallest(&self, query: &[f32], k: usize) -> QueryOutcome {
        let sig = self.skeleton.extract_signature(query);
        let plan = plan_od_smallest(self.skeleton, &sig);
        refine(self.store, &plan, query, k, false, self.updates, self.quant)
    }

    /// Executes a whole [`BatchRequest`] partition-major across threads:
    /// each partition selected by *any* query of the batch is opened once,
    /// each needed cluster decoded once, and the decoded records scored
    /// against every query that selected them. Outcomes are bit-identical
    /// to calling [`knn`](Self::knn) / [`knn_adaptive`](Self::knn_adaptive)
    /// / [`od_smallest`](Self::od_smallest) once per query — see
    /// [`crate::batch`] for the execution model and the throughput
    /// characteristics.
    pub fn batch(&self, request: &BatchRequest<'_>) -> BatchOutcome {
        crate::batch::execute(self.skeleton, self.store, request, self.updates, self.quant)
    }

    /// Executes one unified [`SearchRequest`] sequentially.
    ///
    /// This is the single entry point behind every strategy-specific
    /// method: the request's [`SearchMode`] selects the planner,
    /// [`SearchMode::Resampled`] first stretches the query to the indexed
    /// series length, and an optional budget truncates the plan
    /// (deterministically, ascending partition id) before refinement.
    ///
    /// # Panics
    /// If [`SearchRequest::validate`] fails — network callers validate
    /// first and map failures onto a typed bad-request response.
    pub fn search(&self, req: &SearchRequest) -> QueryOutcome {
        if let Err(e) = req.validate() {
            panic!("{e}");
        }
        let strategy = strategy_of(req.mode);
        if matches!(req.mode, SearchMode::Resampled(_)) {
            let target = self.series_len_hint().unwrap_or(req.query.len());
            let full = resample_linear(&req.query, target);
            self.search_planned(&full, req.k, strategy, req.budget)
        } else {
            self.search_planned(&req.query, req.k, strategy, req.budget)
        }
    }

    /// Executes a slice of [`SearchRequest`]s through the partition-major
    /// batch engine.
    ///
    /// Requests with the same `(mode strategy, k, budget)` shape are
    /// grouped into one [`BatchRequest`] each, so every partition any of
    /// them selects is opened once and every shared cluster decoded once.
    /// Outcomes come back in request order and are **bit-identical** to
    /// calling [`search`](Self::search) once per request — the batch
    /// engine's equivalence guarantee, with budgets applied identically on
    /// both paths.
    ///
    /// # Panics
    /// If any request fails [`SearchRequest::validate`].
    pub fn search_many(&self, reqs: &[SearchRequest]) -> Vec<QueryOutcome> {
        if reqs.len() <= 1 {
            return reqs.iter().map(|r| self.search(r)).collect();
        }
        for req in reqs {
            if let Err(e) = req.validate() {
                panic!("{e}");
            }
        }
        // Group compatible requests; linear scan because batches are small
        // (a serving micro-batch) and `BatchStrategy` is a tiny Copy key.
        type GroupKey = (BatchStrategy, usize, Option<u32>);
        let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            let key = (strategy_of(req.mode), req.k, req.budget);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        let len_hint = self.series_len_hint();
        let mut outcomes: Vec<Option<QueryOutcome>> = reqs.iter().map(|_| None).collect();
        for ((strategy, k, budget), idxs) in groups {
            let queries: Vec<Vec<f32>> = idxs
                .iter()
                .map(|&i| {
                    let req = &reqs[i];
                    if matches!(req.mode, SearchMode::Resampled(_)) {
                        resample_linear(&req.query, len_hint.unwrap_or(req.query.len()))
                    } else {
                        req.query.clone()
                    }
                })
                .collect();
            let mut breq = BatchRequest::new(&queries, k, strategy);
            if let Some(b) = budget {
                breq = breq.with_partition_cap(b as usize);
            }
            let batch = self.batch(&breq);
            for (idx, out) in idxs.into_iter().zip(batch.outcomes) {
                outcomes[idx] = Some(out);
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every request belongs to exactly one group"))
            .collect()
    }

    /// Plans with the given strategy, applies the budget, refines.
    fn search_planned(
        &self,
        query: &[f32],
        k: usize,
        strategy: BatchStrategy,
        budget: Option<u32>,
    ) -> QueryOutcome {
        let sig = self.skeleton.extract_signature(query);
        let seed = query_seed(query);
        let mut plan = match strategy {
            BatchStrategy::Knn => plan_knn(self.skeleton, &sig, seed),
            BatchStrategy::Adaptive { factor } => {
                plan_adaptive(self.skeleton, &sig, k, factor, seed)
            }
            BatchStrategy::OdSmallest => plan_od_smallest(self.skeleton, &sig),
        };
        if let Some(b) = budget {
            plan.truncate_partitions(b as usize);
        }
        refine(
            self.store,
            &plan,
            query,
            k,
            strategy.expands(),
            self.updates,
            self.quant,
        )
    }

    /// The indexed series length, recovered from any stored partition
    /// (`None` on an empty store).
    fn series_len_hint(&self) -> Option<usize> {
        let pid = *self.store.ids().first()?;
        self.store.open(pid).ok().map(|r| r.series_len())
    }
}

/// Maps a request's [`SearchMode`] onto the batch engine's strategy; the
/// resample preprocessing of [`SearchMode::Resampled`] happens before the
/// strategy runs, so it maps to plain Adaptive.
pub fn strategy_of(mode: SearchMode) -> BatchStrategy {
    match mode {
        SearchMode::Exact => BatchStrategy::Knn,
        SearchMode::Adaptive(f) | SearchMode::Resampled(f) => {
            BatchStrategy::Adaptive { factor: f as usize }
        }
        SearchMode::Smallest => BatchStrategy::OdSmallest,
    }
}

/// Deterministic per-query seed for tie-breaks: hash of the query bytes.
pub(crate) fn query_seed(query: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in query {
        h ^= v.to_bits() as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_dfs::store::MemStore;
    use climber_index::builder::IndexBuilder;
    use climber_index::config::IndexConfig;
    use climber_series::gen::{query_workload, Domain};
    use climber_series::ground_truth::exact_knn;
    use climber_series::recall::recall_of_results;

    fn build(
        domain: Domain,
        n: usize,
    ) -> (IndexSkeleton, MemStore, climber_series::dataset::Dataset) {
        let ds = domain.generate(n, 47);
        let store = MemStore::new();
        let cfg = IndexConfig::default()
            .with_paa_segments(8)
            .with_pivots(48)
            .with_prefix_len(6)
            .with_capacity(80)
            .with_alpha(0.4)
            .with_epsilon(1)
            .with_seed(21)
            .with_workers(2);
        let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
        (skeleton, store, ds)
    }

    #[test]
    fn self_queries_find_themselves() {
        let (skeleton, store, ds) = build(Domain::RandomWalk, 400);
        let engine = KnnEngine::new(&skeleton, &store);
        let mut found = 0;
        for qid in query_workload(&ds, 20, 1) {
            let out = engine.knn(ds.get(qid), 10);
            if out.results.iter().any(|&(id, d)| id == qid && d == 0.0) {
                found += 1;
            }
        }
        // The query IS an indexed record; CLIMBER's plan covers the node
        // the record was placed under whenever the primary group matches,
        // which is the overwhelming majority of self-queries.
        assert!(found >= 16, "only {found}/20 self-queries found themselves");
    }

    #[test]
    fn knn_returns_k_results_sorted() {
        let (skeleton, store, ds) = build(Domain::Eeg, 300);
        let engine = KnnEngine::new(&skeleton, &store);
        let out = engine.knn(ds.get(5), 25);
        assert_eq!(out.results.len(), 25);
        for w in out.results.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn recall_beats_random_partition_guessing() {
        let (skeleton, store, ds) = build(Domain::TexMex, 500);
        let engine = KnnEngine::new(&skeleton, &store);
        // k small relative to n: at 500 records the 20th "neighbour" is
        // already nearly random, so probe the regime the index is for.
        let k = 5;
        let mut total = 0.0;
        let mut scanned = 0u64;
        let queries = query_workload(&ds, 15, 2);
        for &qid in &queries {
            let out = engine.knn_adaptive(ds.get(qid), k, 4);
            let exact = exact_knn(&ds, ds.get(qid), k);
            total += recall_of_results(&out.results, &exact);
            scanned += out.records_scanned;
        }
        let mean = total / queries.len() as f64;
        let frac = scanned as f64 / (queries.len() as f64 * 500.0);
        // Clustered SIFT-like data is CLIMBER's best case: recall must be
        // well above the fraction of data actually scanned.
        assert!(mean > 0.45, "mean recall {mean:.3} too low");
        assert!(
            mean > 1.5 * frac,
            "no locality lift: recall {mean:.3} vs scanned {frac:.3}"
        );
    }

    #[test]
    fn adaptive_recall_at_least_knn_recall_on_average() {
        let (skeleton, store, ds) = build(Domain::RandomWalk, 500);
        let engine = KnnEngine::new(&skeleton, &store);
        let k = 120; // larger than most trie nodes → adaptive should help
        let queries = query_workload(&ds, 12, 3);
        let (mut r_knn, mut r_adp) = (0.0, 0.0);
        for &qid in &queries {
            let exact = exact_knn(&ds, ds.get(qid), k);
            r_knn += recall_of_results(&engine.knn(ds.get(qid), k).results, &exact);
            r_adp += recall_of_results(&engine.knn_adaptive(ds.get(qid), k, 4).results, &exact);
        }
        assert!(
            r_adp >= r_knn - 1e-9,
            "adaptive {} worse than knn {}",
            r_adp,
            r_knn
        );
    }

    #[test]
    fn od_smallest_reads_most_and_recalls_most() {
        let (skeleton, store, ds) = build(Domain::Dna, 400);
        let engine = KnnEngine::new(&skeleton, &store);
        let k = 50;
        let queries = query_workload(&ds, 10, 4);
        let (mut scan_knn, mut scan_ods) = (0u64, 0u64);
        let (mut rec_knn, mut rec_ods) = (0.0, 0.0);
        for &qid in &queries {
            let exact = exact_knn(&ds, ds.get(qid), k);
            let a = engine.knn(ds.get(qid), k);
            let b = engine.od_smallest(ds.get(qid), k);
            scan_knn += a.records_scanned;
            scan_ods += b.records_scanned;
            rec_knn += recall_of_results(&a.results, &exact);
            rec_ods += recall_of_results(&b.results, &exact);
        }
        assert!(
            scan_ods >= scan_knn,
            "OD-Smallest must scan at least as much"
        );
        assert!(
            rec_ods >= rec_knn - 1e-9,
            "OD-Smallest must recall at least as much"
        );
    }

    #[test]
    fn queries_are_deterministic() {
        let (skeleton, store, ds) = build(Domain::Eeg, 200);
        let engine = KnnEngine::new(&skeleton, &store);
        let q = ds.get(9);
        assert_eq!(engine.knn(q, 10), engine.knn(q, 10));
        assert_eq!(engine.knn_adaptive(q, 50, 2), engine.knn_adaptive(q, 50, 2));
    }

    #[test]
    fn search_matches_every_legacy_entry_point() {
        let (skeleton, store, ds) = build(Domain::RandomWalk, 400);
        let engine = KnnEngine::new(&skeleton, &store);
        let q = ds.get(13).to_vec();
        let k = 12;
        assert_eq!(
            engine.search(&SearchRequest::new(q.clone(), k).exact()),
            engine.knn(&q, k)
        );
        assert_eq!(
            engine.search(&SearchRequest::new(q.clone(), k).adaptive(4)),
            engine.knn_adaptive(&q, k, 4)
        );
        assert_eq!(
            engine.search(&SearchRequest::new(q.clone(), k).smallest()),
            engine.od_smallest(&q, k)
        );
        // resampled at a shorter length still returns k sorted results
        let short = resample_linear(&q, q.len() / 2);
        let out = engine.search(&SearchRequest::new(short, k).resampled(2));
        assert_eq!(out.results.len(), k);
    }

    #[test]
    fn search_many_is_bit_identical_to_search_per_request() {
        let (skeleton, store, ds) = build(Domain::Eeg, 350);
        let engine = KnnEngine::new(&skeleton, &store);
        // A deliberately heterogeneous batch: mixed modes, ks, budgets,
        // and a resampled short query — the serving layer's worst case.
        let mut reqs = Vec::new();
        for i in 0..10u64 {
            let q = ds.get(i * 31).to_vec();
            reqs.push(match i % 5 {
                0 => SearchRequest::new(q, 10).exact(),
                1 => SearchRequest::new(q, 10).adaptive(4),
                2 => SearchRequest::new(q, 25).adaptive(4).with_budget(3),
                3 => SearchRequest::new(resample_linear(&q, 100), 10).resampled(2),
                _ => SearchRequest::new(q, 5).smallest(),
            });
        }
        let many = engine.search_many(&reqs);
        assert_eq!(many.len(), reqs.len());
        for (req, out) in reqs.iter().zip(&many) {
            assert_eq!(out, &engine.search(req), "req {req:?}");
        }
    }

    #[test]
    fn budget_caps_partitions_opened() {
        let (skeleton, store, ds) = build(Domain::RandomWalk, 500);
        let engine = KnnEngine::new(&skeleton, &store);
        // find a query whose OD-Smallest plan spans several partitions
        let q = (0..50u64)
            .map(|i| ds.get(i * 7).to_vec())
            .find(|q| {
                engine
                    .search(&SearchRequest::new(q.clone(), 150).smallest())
                    .plan
                    .num_partitions()
                    > 1
            })
            .expect("some query must span several partitions");
        let capped = engine.search(&SearchRequest::new(q, 150).smallest().with_budget(1));
        assert!(capped.partitions_opened <= 1);
        assert!(capped.plan.num_partitions() <= 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn search_rejects_zero_k() {
        let (skeleton, store, _) = build(Domain::RandomWalk, 200);
        KnnEngine::new(&skeleton, &store).search(&SearchRequest::new(vec![1.0f32], 0));
    }

    #[test]
    fn works_after_skeleton_roundtrip() {
        let (skeleton, store, ds) = build(Domain::RandomWalk, 200);
        let restored = IndexSkeleton::from_bytes(&skeleton.to_bytes()).unwrap();
        let engine = KnnEngine::new(&restored, &store);
        let out = engine.knn(ds.get(3), 5);
        assert_eq!(out.results.len(), 5);
        let engine0 = KnnEngine::new(&skeleton, &store);
        assert_eq!(out, engine0.knn(ds.get(3), 5));
    }
}
