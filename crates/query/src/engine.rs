//! The query engine: one object tying skeleton + store + the three search
//! strategies together.

use crate::adaptive::plan_adaptive;
use crate::batch::{BatchOutcome, BatchRequest};
use crate::knn::plan_knn;
use crate::od_smallest::plan_od_smallest;
use crate::plan::QueryOutcome;
use crate::refine::refine;
use crate::updates::UpdateView;
use climber_dfs::store::PartitionStore;
use climber_index::skeleton::IndexSkeleton;

/// Executes kNN queries against a built CLIMBER index.
///
/// By default the engine serves the sealed partitions alone. Attaching an
/// [`UpdateView`] with [`with_updates`](Self::with_updates) makes every
/// search strategy — sequential and batched — merge the delta segment's
/// clusters into the candidate stream and filter tombstoned ids before
/// the top-k heap.
#[derive(Debug, Clone, Copy)]
pub struct KnnEngine<'a, S: PartitionStore> {
    skeleton: &'a IndexSkeleton,
    store: &'a S,
    updates: Option<UpdateView<'a>>,
}

impl<'a, S: PartitionStore> KnnEngine<'a, S> {
    /// Creates an engine over a skeleton and its partition store.
    pub fn new(skeleton: &'a IndexSkeleton, store: &'a S) -> Self {
        Self {
            skeleton,
            store,
            updates: None,
        }
    }

    /// Attaches the index's mutable segments: every query merges delta
    /// clusters and filters tombstones from here on.
    #[must_use]
    pub fn with_updates(mut self, updates: UpdateView<'a>) -> Self {
        self.updates = Some(updates);
        self
    }

    /// The skeleton in use.
    pub fn skeleton(&self) -> &IndexSkeleton {
        self.skeleton
    }

    /// The attached update view, if any.
    pub fn updates(&self) -> Option<UpdateView<'a>> {
        self.updates
    }

    /// CLIMBER-kNN (Algorithm 3): single best trie node, within-partition
    /// expansion when short of `k`.
    pub fn knn(&self, query: &[f32], k: usize) -> QueryOutcome {
        let sig = self.skeleton.extract_signature(query);
        let plan = plan_knn(self.skeleton, &sig, query_seed(query));
        refine(self.store, &plan, query, k, true, self.updates)
    }

    /// CLIMBER-kNN-Adaptive with partition cap `factor ×` the plain plan
    /// (2 = Adaptive-2X, 4 = Adaptive-4X).
    pub fn knn_adaptive(&self, query: &[f32], k: usize, factor: usize) -> QueryOutcome {
        let sig = self.skeleton.extract_signature(query);
        let plan = plan_adaptive(self.skeleton, &sig, k, factor, query_seed(query));
        refine(self.store, &plan, query, k, true, self.updates)
    }

    /// OD-Smallest: scan every partition of every OD-tied group
    /// (the Figure 11(b) ablation baseline).
    pub fn od_smallest(&self, query: &[f32], k: usize) -> QueryOutcome {
        let sig = self.skeleton.extract_signature(query);
        let plan = plan_od_smallest(self.skeleton, &sig);
        refine(self.store, &plan, query, k, false, self.updates)
    }

    /// Executes a whole [`BatchRequest`] partition-major across threads:
    /// each partition selected by *any* query of the batch is opened once,
    /// each needed cluster decoded once, and the decoded records scored
    /// against every query that selected them. Outcomes are bit-identical
    /// to calling [`knn`](Self::knn) / [`knn_adaptive`](Self::knn_adaptive)
    /// / [`od_smallest`](Self::od_smallest) once per query — see
    /// [`crate::batch`] for the execution model and the throughput
    /// characteristics.
    pub fn batch(&self, request: &BatchRequest<'_>) -> BatchOutcome {
        crate::batch::execute(self.skeleton, self.store, request, self.updates)
    }
}

/// Deterministic per-query seed for tie-breaks: hash of the query bytes.
pub(crate) fn query_seed(query: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in query {
        h ^= v.to_bits() as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_dfs::store::MemStore;
    use climber_index::builder::IndexBuilder;
    use climber_index::config::IndexConfig;
    use climber_series::gen::{query_workload, Domain};
    use climber_series::ground_truth::exact_knn;
    use climber_series::recall::recall_of_results;

    fn build(
        domain: Domain,
        n: usize,
    ) -> (IndexSkeleton, MemStore, climber_series::dataset::Dataset) {
        let ds = domain.generate(n, 47);
        let store = MemStore::new();
        let cfg = IndexConfig::default()
            .with_paa_segments(8)
            .with_pivots(48)
            .with_prefix_len(6)
            .with_capacity(80)
            .with_alpha(0.4)
            .with_epsilon(1)
            .with_seed(21)
            .with_workers(2);
        let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
        (skeleton, store, ds)
    }

    #[test]
    fn self_queries_find_themselves() {
        let (skeleton, store, ds) = build(Domain::RandomWalk, 400);
        let engine = KnnEngine::new(&skeleton, &store);
        let mut found = 0;
        for qid in query_workload(&ds, 20, 1) {
            let out = engine.knn(ds.get(qid), 10);
            if out.results.iter().any(|&(id, d)| id == qid && d == 0.0) {
                found += 1;
            }
        }
        // The query IS an indexed record; CLIMBER's plan covers the node
        // the record was placed under whenever the primary group matches,
        // which is the overwhelming majority of self-queries.
        assert!(found >= 16, "only {found}/20 self-queries found themselves");
    }

    #[test]
    fn knn_returns_k_results_sorted() {
        let (skeleton, store, ds) = build(Domain::Eeg, 300);
        let engine = KnnEngine::new(&skeleton, &store);
        let out = engine.knn(ds.get(5), 25);
        assert_eq!(out.results.len(), 25);
        for w in out.results.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn recall_beats_random_partition_guessing() {
        let (skeleton, store, ds) = build(Domain::TexMex, 500);
        let engine = KnnEngine::new(&skeleton, &store);
        // k small relative to n: at 500 records the 20th "neighbour" is
        // already nearly random, so probe the regime the index is for.
        let k = 5;
        let mut total = 0.0;
        let mut scanned = 0u64;
        let queries = query_workload(&ds, 15, 2);
        for &qid in &queries {
            let out = engine.knn_adaptive(ds.get(qid), k, 4);
            let exact = exact_knn(&ds, ds.get(qid), k);
            total += recall_of_results(&out.results, &exact);
            scanned += out.records_scanned;
        }
        let mean = total / queries.len() as f64;
        let frac = scanned as f64 / (queries.len() as f64 * 500.0);
        // Clustered SIFT-like data is CLIMBER's best case: recall must be
        // well above the fraction of data actually scanned.
        assert!(mean > 0.45, "mean recall {mean:.3} too low");
        assert!(
            mean > 1.5 * frac,
            "no locality lift: recall {mean:.3} vs scanned {frac:.3}"
        );
    }

    #[test]
    fn adaptive_recall_at_least_knn_recall_on_average() {
        let (skeleton, store, ds) = build(Domain::RandomWalk, 500);
        let engine = KnnEngine::new(&skeleton, &store);
        let k = 120; // larger than most trie nodes → adaptive should help
        let queries = query_workload(&ds, 12, 3);
        let (mut r_knn, mut r_adp) = (0.0, 0.0);
        for &qid in &queries {
            let exact = exact_knn(&ds, ds.get(qid), k);
            r_knn += recall_of_results(&engine.knn(ds.get(qid), k).results, &exact);
            r_adp += recall_of_results(&engine.knn_adaptive(ds.get(qid), k, 4).results, &exact);
        }
        assert!(
            r_adp >= r_knn - 1e-9,
            "adaptive {} worse than knn {}",
            r_adp,
            r_knn
        );
    }

    #[test]
    fn od_smallest_reads_most_and_recalls_most() {
        let (skeleton, store, ds) = build(Domain::Dna, 400);
        let engine = KnnEngine::new(&skeleton, &store);
        let k = 50;
        let queries = query_workload(&ds, 10, 4);
        let (mut scan_knn, mut scan_ods) = (0u64, 0u64);
        let (mut rec_knn, mut rec_ods) = (0.0, 0.0);
        for &qid in &queries {
            let exact = exact_knn(&ds, ds.get(qid), k);
            let a = engine.knn(ds.get(qid), k);
            let b = engine.od_smallest(ds.get(qid), k);
            scan_knn += a.records_scanned;
            scan_ods += b.records_scanned;
            rec_knn += recall_of_results(&a.results, &exact);
            rec_ods += recall_of_results(&b.results, &exact);
        }
        assert!(
            scan_ods >= scan_knn,
            "OD-Smallest must scan at least as much"
        );
        assert!(
            rec_ods >= rec_knn - 1e-9,
            "OD-Smallest must recall at least as much"
        );
    }

    #[test]
    fn queries_are_deterministic() {
        let (skeleton, store, ds) = build(Domain::Eeg, 200);
        let engine = KnnEngine::new(&skeleton, &store);
        let q = ds.get(9);
        assert_eq!(engine.knn(q, 10), engine.knn(q, 10));
        assert_eq!(engine.knn_adaptive(q, 50, 2), engine.knn_adaptive(q, 50, 2));
    }

    #[test]
    fn works_after_skeleton_roundtrip() {
        let (skeleton, store, ds) = build(Domain::RandomWalk, 200);
        let restored = IndexSkeleton::from_bytes(&skeleton.to_bytes()).unwrap();
        let engine = KnnEngine::new(&restored, &store);
        let out = engine.knn(ds.get(3), 5);
        assert_eq!(out.results.len(), 5);
        let engine0 = KnnEngine::new(&skeleton, &store);
        assert_eq!(out, engine0.knn(ds.get(3), 5));
    }
}
