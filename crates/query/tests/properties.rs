//! Property-based tests for query planning over randomly built indexes.

use climber_dfs::store::MemStore;
use climber_index::builder::IndexBuilder;
use climber_index::config::IndexConfig;
use climber_index::skeleton::{IndexSkeleton, FALLBACK_GROUP};
use climber_query::adaptive::plan_adaptive;
use climber_query::engine::KnnEngine;
use climber_query::knn::plan_knn;
use climber_query::od_smallest::plan_od_smallest;
use climber_series::dataset::Dataset;
use climber_series::gen::{Domain, RandomWalkGenerator, SeriesGenerator};
use proptest::prelude::*;

/// Builds a small index over a seeded random-walk dataset.
fn build_index(n: usize, seed: u64, capacity: u64) -> (IndexSkeleton, MemStore, Dataset) {
    let ds = RandomWalkGenerator::new(64).generate(n, seed);
    let store = MemStore::new();
    let cfg = IndexConfig::default()
        .with_paa_segments(8)
        .with_pivots(24)
        .with_prefix_len(4)
        .with_capacity(capacity)
        .with_alpha(0.5)
        .with_epsilon(1)
        .with_seed(seed ^ 0xABCD)
        .with_workers(2);
    let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
    (skeleton, store, ds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn plans_always_read_something(seed in 0u64..500, qid in 0u64..200) {
        let (skeleton, _, ds) = build_index(200, seed, 40);
        let sig = skeleton.extract_signature(ds.get(qid % 200));
        let plan = plan_knn(&skeleton, &sig, qid);
        prop_assert!(!plan.reads.is_empty());
        prop_assert!((plan.primary_group as usize) < skeleton.groups.len());
        prop_assert!(plan.primary_path_len <= skeleton.prefix_len);
    }

    #[test]
    fn adaptive_is_superset_of_knn(seed in 0u64..300, qid in 0u64..200, k in 1usize..400) {
        let (skeleton, _, ds) = build_index(200, seed, 40);
        let sig = skeleton.extract_signature(ds.get(qid % 200));
        let base = plan_knn(&skeleton, &sig, qid);
        let adaptive = plan_adaptive(&skeleton, &sig, k, 4, qid);
        // every read of the base plan is present in the adaptive plan
        for (pid, clusters) in &base.reads {
            let sup = adaptive.reads.get(pid);
            prop_assert!(sup.is_some(), "partition {pid} dropped");
            for c in clusters {
                prop_assert!(sup.unwrap().contains(c), "cluster {c} dropped");
            }
        }
        // and the cap holds
        prop_assert!(adaptive.num_partitions() <= base.num_partitions().max(1) * 4);
    }

    #[test]
    fn od_smallest_covers_whole_groups(seed in 0u64..300, qid in 0u64..200) {
        let (skeleton, _, ds) = build_index(200, seed, 40);
        let sig = skeleton.extract_signature(ds.get(qid % 200));
        let plan = plan_od_smallest(&skeleton, &sig);
        for &g in &plan.groups {
            let meta = &skeleton.groups[g as usize];
            // every leaf cluster of the group must be planned
            for leaf_idx in meta.trie.leaves() {
                let leaf = meta.trie.node(leaf_idx);
                let planned = plan
                    .reads
                    .get(&leaf.partitions[0])
                    .map(|cs| cs.contains(&leaf.id))
                    .unwrap_or(false);
                prop_assert!(planned, "group {g} leaf {} unplanned", leaf.id);
            }
        }
    }

    #[test]
    fn engine_results_are_sorted_unique_and_bounded(
        seed in 0u64..200,
        qid in 0u64..150,
        k in 1usize..60,
    ) {
        let (skeleton, store, ds) = build_index(150, seed, 30);
        let engine = KnnEngine::new(&skeleton, &store);
        let out = engine.knn(ds.get(qid % 150), k);
        prop_assert!(out.results.len() <= k);
        for w in out.results.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        let mut ids: Vec<u64> = out.results.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), out.results.len(), "duplicate ids in answer");
        // ids must be valid
        prop_assert!(out.results.iter().all(|&(id, _)| id < 150));
    }

    #[test]
    fn fallback_group_plan_is_usable(seed in 0u64..100) {
        // Queries engineered to share no pivots with any centroid must
        // route to G0 and still produce a valid (possibly empty) plan.
        let (skeleton, store, _) = build_index(150, seed, 30);
        // extreme constant series map far from all random-walk pivots
        let weird = vec![1e6f32; 64];
        let sig = skeleton.extract_signature(&weird);
        let (groups, _) = skeleton.groups_by_overlap(&sig);
        if groups == vec![FALLBACK_GROUP] {
            let engine = KnnEngine::new(&skeleton, &store);
            let out = engine.knn(&weird, 5);
            prop_assert!(out.results.len() <= 5);
        }
    }

    #[test]
    fn domains_other_than_randomwalk_plan_correctly(domain_idx in 0usize..4, qid in 0u64..100) {
        let domain = Domain::ALL[domain_idx];
        let ds = domain.generate(150, 99);
        let store = MemStore::new();
        let cfg = IndexConfig::default()
            .with_paa_segments(8)
            .with_pivots(24)
            .with_prefix_len(4)
            .with_capacity(40)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(3)
            .with_workers(2);
        let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
        let engine = KnnEngine::new(&skeleton, &store);
        let out = engine.knn_adaptive(ds.get(qid % 150), 10, 2);
        prop_assert!(!out.results.is_empty());
        prop_assert!(out.partitions_opened >= 1);
    }
}
