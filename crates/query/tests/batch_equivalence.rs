//! Property test: batched partition-major execution is bit-identical to
//! sequential per-query execution — across random datasets, batch sizes,
//! thread counts, and all three strategies.
//!
//! This is the contract the batch engine is built on (see
//! `climber_query::batch`): full [`QueryOutcome`] equality, i.e. result
//! ids, exact distances, `records_scanned`, `partitions_opened`, and the
//! plan itself.

use climber_dfs::store::MemStore;
use climber_index::builder::IndexBuilder;
use climber_index::config::IndexConfig;
use climber_index::skeleton::IndexSkeleton;
use climber_query::batch::{BatchRequest, BatchStrategy};
use climber_query::engine::KnnEngine;
use climber_query::plan::QueryOutcome;
use climber_series::dataset::Dataset;
use climber_series::gen::{RandomWalkGenerator, SeriesGenerator};
use proptest::prelude::*;

fn build_index(n: usize, seed: u64, capacity: u64) -> (IndexSkeleton, MemStore, Dataset) {
    let ds = RandomWalkGenerator::new(64).generate(n, seed);
    let store = MemStore::new();
    let cfg = IndexConfig::default()
        .with_paa_segments(8)
        .with_pivots(24)
        .with_prefix_len(4)
        .with_capacity(capacity)
        .with_alpha(0.5)
        .with_epsilon(1)
        .with_seed(seed ^ 0xBA7C)
        .with_workers(2);
    let (skeleton, _) = IndexBuilder::new(cfg).build(&ds, &store);
    (skeleton, store, ds)
}

fn sequential<S: climber_dfs::store::PartitionStore>(
    engine: &KnnEngine<'_, S>,
    strategy: BatchStrategy,
    query: &[f32],
    k: usize,
) -> QueryOutcome {
    match strategy {
        BatchStrategy::Knn => engine.knn(query, k),
        BatchStrategy::Adaptive { factor } => engine.knn_adaptive(query, k, factor),
        BatchStrategy::OdSmallest => engine.od_smallest(query, k),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_equals_sequential(
        seed in 0u64..1000,
        n in 150usize..400,
        capacity in 30u64..90,
        batch_size in 1usize..24,
        threads_pick in 0usize..4,
        k in 1usize..40,
        strategy_pick in 0usize..4,
    ) {
        let threads = [1usize, 2, 4, 8][threads_pick];
        let (skeleton, store, ds) = build_index(n, seed, capacity);
        let engine = KnnEngine::new(&skeleton, &store);
        let strategy = match strategy_pick {
            0 => BatchStrategy::Knn,
            1 => BatchStrategy::Adaptive { factor: 2 },
            2 => BatchStrategy::Adaptive { factor: 4 },
            _ => BatchStrategy::OdSmallest,
        };

        // Queries: members of the dataset plus slightly perturbed copies,
        // so both exact-hit and near-miss paths are exercised.
        let queries: Vec<Vec<f32>> = (0..batch_size as u64)
            .map(|i| {
                let mut q = ds.get((i * 13) % n as u64).to_vec();
                if i % 3 == 1 {
                    let j = (i as usize) % q.len();
                    q[0] += 0.25;
                    q[j] -= 0.5;
                }
                q
            })
            .collect();

        let request = BatchRequest::new(&queries, k, strategy).with_threads(threads);
        let batch = engine.batch(&request);
        prop_assert_eq!(batch.outcomes.len(), queries.len());

        for (qi, (q, out)) in queries.iter().zip(batch.outcomes.iter()).enumerate() {
            let want = sequential(&engine, strategy, q, k);
            // Full outcome equality: ids, exact distances, counters, plan.
            prop_assert_eq!(
                out, &want,
                "query {} of {} diverged (strategy {:?}, threads {})",
                qi, batch_size, strategy, threads
            );
        }

        // The shared pass never decodes more than the per-query paths
        // would: every decoded (partition, cluster) pair is in >= 1 plan.
        let seq_total: u64 = batch.outcomes.iter().map(|o| o.records_scanned).sum();
        prop_assert!(batch.records_decoded <= seq_total);
    }
}

/// A reopened (manifest-validated, read-only) disk index under concurrent
/// readers: N threads each running the full mixed workload must agree
/// bit-for-bit with the sequential answers of the freshly built index.
/// The read-only `DiskStore` shares one `IoStats` across threads and has
/// no interior mutability beyond it, but this pins the contract down.
#[test]
fn reopened_disk_index_concurrent_readers_agree() {
    use climber_core::{Climber, ClimberConfig};
    use climber_series::gen::Domain;

    let dir = std::env::temp_dir().join(format!("climber-qconc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let ds = Domain::RandomWalk.generate(600, 77);
    let config = ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(32)
        .with_prefix_len(5)
        .with_capacity(80)
        .with_alpha(0.4)
        .with_epsilon(1)
        .with_seed(0xC0C0)
        .with_workers(2);
    let built = Climber::build_on_disk(&ds, &dir, config).unwrap();

    let queries: Vec<Vec<f32>> = (0..12u64)
        .map(|i| {
            let mut q = ds.get(i * 47).to_vec();
            if i % 3 == 0 {
                q[1] -= 0.5;
            }
            q
        })
        .collect();
    let k = 15;
    let want: Vec<QueryOutcome> = queries
        .iter()
        .map(|q| built.knn_adaptive(q, k, 4))
        .collect();
    drop(built);

    let reopened = Climber::open(&dir).unwrap();
    assert!(reopened.store().is_read_only());
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let (reopened, queries, want) = (&reopened, &queries, &want);
            scope.spawn(move || {
                // Interleave strategies across threads: sequential kNN,
                // adaptive, and whole batches all race on the one store.
                for round in 0..3 {
                    for (qi, q) in queries.iter().enumerate() {
                        let got = reopened.knn_adaptive(q, k, 4);
                        assert_eq!(
                            got, want[qi],
                            "thread {t} round {round} query {qi} diverged"
                        );
                    }
                    let batch = reopened.batch(&BatchRequest::adaptive(queries, k, 4));
                    assert_eq!(&batch.outcomes, want, "thread {t} round {round} batch");
                }
            });
        }
    });
    // Serve-phase I/O accounting saw only reads, from all threads.
    let io = reopened.serve_io();
    assert_eq!(io.partitions_written, 0);
    assert!(io.partitions_opened > 0);
    std::fs::remove_dir_all(&dir).ok();
}
