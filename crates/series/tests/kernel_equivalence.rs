//! Property test: every SIMD kernel tier is **bit-identical** to scalar.
//!
//! The contract behind `climber_series::kernels`: AVX2 and SSE4.1 paths
//! keep one f64 accumulator per lane position and reduce them in the
//! same fixed pairwise order as the scalar reference, never contracting
//! through FMA. That makes the vectorised kernels drop-in replacements
//! whose results can be compared with `f64::to_bits` — not "close
//! enough", *equal* — over arbitrary finite inputs: negatives,
//! subnormals, huge magnitudes, misaligned subslices, and early-abandon
//! cutoffs that land exactly on a chunk-boundary partial sum.
#![recursion_limit = "1024"]

use climber_series::kernels::{
    self, ed_early_abandon_with, sq_dist_f64_with, sq_ed_with, sum_f32_with, Dispatch,
};
use proptest::prelude::*;

/// Maps a `(selector, magnitude)` pair onto a finite f32 that stresses a
/// specific numeric regime: plain values, exact zeros of both signs,
/// subnormals, and magnitudes large enough that squaring reorders badly
/// under any accumulation scheme other than the pinned one.
fn shape_f32(sel: u8, v: f32) -> f32 {
    match sel % 8 {
        0 => v,
        1 => -v,
        2 => 0.0,
        3 => -0.0,
        // Scaling a [0, 16) magnitude down to ~1e-41 lands in (or near)
        // the subnormal range of f32.
        4 => v * 1e-41,
        5 => -v * 1e-41,
        6 => v * 1e18,
        _ => f32::MIN_POSITIVE * f32::from(sel),
    }
}

/// A vector of "nasty" finite f32s of length `0..512`.
fn nasty_f32s() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((any::<u8>(), 0f32..16.0), 0..512)
        .prop_map(|pairs| pairs.into_iter().map(|(s, v)| shape_f32(s, v)).collect())
}

/// Two equal-length nasty vectors plus a misalignment offset in `0..8`.
/// Slicing both sides at the offset guarantees the vector loads in the
/// SIMD paths routinely start off any 16/32-byte boundary.
fn nasty_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>, usize)> {
    (
        prop::collection::vec(
            ((any::<u8>(), 0f32..16.0), (any::<u8>(), 0f32..16.0)),
            0..512,
        ),
        0usize..8,
    )
        .prop_map(|(pairs, off)| {
            let (xs, ys): (Vec<f32>, Vec<f32>) = pairs
                .into_iter()
                .map(|((sx, vx), (sy, vy))| (shape_f32(sx, vx), shape_f32(sy, vy)))
                .unzip();
            (xs, ys, off)
        })
}

/// Every tier the host can actually run, paired against the scalar
/// reference. On a plain x86-64 host this exercises SSE4.1 and AVX2;
/// elsewhere it degenerates to scalar-vs-scalar (trivially true) so the
/// suite stays green on any architecture.
fn tiers() -> Vec<Dispatch> {
    Dispatch::available()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `sq_ed` is bit-identical across tiers on misaligned nasty slices.
    #[test]
    fn sq_ed_bitwise_equal_across_tiers(input in nasty_pair()) {
        let (xs, ys, off) = input;
        let start = off.min(xs.len());
        let (x, y) = (&xs[start..], &ys[start..]);
        let want = sq_ed_with(Dispatch::Scalar, x, y);
        for tier in tiers() {
            let got = sq_ed_with(tier, x, y);
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "sq_ed {} = {got:e} != scalar {want:e} (len {})", tier.name(), x.len()
            );
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `sum_f32` (the PAA segment-mean kernel) is bit-identical across
    /// tiers, including on subslices that misalign every vector load.
    #[test]
    fn sum_f32_bitwise_equal_across_tiers(vs in nasty_f32s(), off in 0usize..8) {
        let v = &vs[off.min(vs.len())..];
        let want = sum_f32_with(Dispatch::Scalar, v);
        for tier in tiers() {
            let got = sum_f32_with(tier, v);
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "sum_f32 {} = {got:e} != scalar {want:e} (len {})", tier.name(), v.len()
            );
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `sq_dist_f64` (the pivot-space kernel) is bit-identical across
    /// tiers over signed/subnormal/large f64 inputs.
    #[test]
    fn sq_dist_f64_bitwise_equal_across_tiers(
        pairs in prop::collection::vec(
            ((any::<u8>(), 0f64..16.0), (any::<u8>(), 0f64..16.0)), 0..300),
        off in 0usize..4,
    ) {
        let shape = |sel: u8, v: f64| -> f64 {
            match sel % 6 {
                0 => v,
                1 => -v,
                2 => 0.0,
                3 => v * 1e-310, // subnormal f64 territory
                4 => v * 1e150,
                _ => -v * 1e150,
            }
        };
        let (xs, ys): (Vec<f64>, Vec<f64>) = pairs
            .into_iter()
            .map(|((sx, vx), (sy, vy))| (shape(sx, vx), shape(sy, vy)))
            .unzip();
        let start = off.min(xs.len());
        let (a, b) = (&xs[start..], &ys[start..]);
        let want = sq_dist_f64_with(Dispatch::Scalar, a, b);
        for tier in tiers() {
            let got = sq_dist_f64_with(tier, a, b);
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "sq_dist_f64 {} = {got:e} != scalar {want:e} (len {})", tier.name(), a.len()
            );
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `ed_early_abandon` agrees with scalar on *whether* it abandons and
    /// on the exact bits of the distance when it does not — for generic
    /// bounds spanning "always abandon" to "never abandon".
    #[test]
    fn ed_early_abandon_bitwise_equal_across_tiers(
        input in nasty_pair(),
        scale in 0f64..2.0,
    ) {
        let (xs, ys, off) = input;
        let start = off.min(xs.len());
        let (x, y) = (&xs[start..], &ys[start..]);
        let full = sq_ed_with(Dispatch::Scalar, x, y);
        let bounds = [0.0, full * scale, full, f64::INFINITY];
        for bound in bounds {
            let want = ed_early_abandon_with(Dispatch::Scalar, x, y, bound);
            for tier in tiers() {
                let got = ed_early_abandon_with(tier, x, y, bound);
                prop_assert_eq!(
                    got.map(f64::to_bits), want.map(f64::to_bits),
                    "ed_early_abandon {} bound {bound:e} (len {})", tier.name(), x.len()
                );
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Early-abandon cutoffs placed **exactly on chunk-boundary partial
    /// sums**: the kernel checks the combined lanes after every second
    /// 8-wide chunk, so a bound equal to the partial sum at a 16-element
    /// boundary sits precisely on the `>` comparison's knife edge. A
    /// prefix of length 16·c has no tail, so the scalar `sq_ed` of that
    /// prefix *is* the partial the check compares against — every tier
    /// must make the same keep/abandon call on it, and on its nearest
    /// representable neighbours.
    #[test]
    fn ed_early_abandon_chunk_boundary_cutoffs(input in nasty_pair()) {
        let (xs, ys, _) = input;
        let (x, y) = (&xs[..], &ys[..]);
        let mut bounds = vec![f64::INFINITY];
        let mut c = 16;
        while c <= x.len() {
            let partial = sq_ed_with(Dispatch::Scalar, &x[..c], &y[..c]);
            bounds.push(partial);
            bounds.push(f64::from_bits(partial.to_bits().saturating_sub(1)));
            bounds.push(f64::from_bits(partial.to_bits() + 1));
            c += 16;
        }
        for bound in bounds {
            let want = ed_early_abandon_with(Dispatch::Scalar, x, y, bound);
            for tier in tiers() {
                let got = ed_early_abandon_with(tier, x, y, bound);
                prop_assert_eq!(
                    got.map(f64::to_bits), want.map(f64::to_bits),
                    "ed_early_abandon {} at boundary bound {bound:e} (len {})",
                    tier.name(), x.len()
                );
            }
        }
    }
}

/// The forced-dispatch hook pins the auto path to the requested tier and
/// releases it again. Because every tier is bit-identical (the properties
/// above), concurrently running tests observe no behavioural difference
/// while the pin is held — only this test inspects `current()`.
#[test]
fn force_pins_auto_dispatch_to_each_tier() {
    let detected = kernels::detect();
    let x: Vec<f32> = (0..97).map(|i| (i as f32).sin() * 3.0).collect();
    let y: Vec<f32> = (0..97).map(|i| (i as f32).cos() * 3.0).collect();
    let want = sq_ed_with(Dispatch::Scalar, &x, &y).to_bits();
    for tier in Dispatch::available() {
        kernels::force(Some(tier));
        assert_eq!(kernels::current(), tier);
        assert_eq!(
            kernels::sq_ed(&x, &y).to_bits(),
            want,
            "auto path forced to {} disagrees with scalar",
            tier.name()
        );
    }
    kernels::force(None);
    assert_eq!(kernels::current(), detected);
}
