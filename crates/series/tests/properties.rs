//! Property-based tests for the data-series substrate.

use climber_series::distance::{ed, ed_early_abandon, sq_ed};
use climber_series::recall::recall;
use climber_series::topk::TopK;
use climber_series::znorm::{is_znormalized, znormalize};
use proptest::prelude::*;

fn finite_series(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e3f32..1e3f32, len)
}

proptest! {
    #[test]
    fn ed_is_non_negative(x in finite_series(32), y in finite_series(32)) {
        prop_assert!(ed(&x, &y) >= 0.0);
    }

    #[test]
    fn ed_is_symmetric(x in finite_series(16), y in finite_series(16)) {
        prop_assert_eq!(ed(&x, &y), ed(&y, &x));
    }

    #[test]
    fn ed_identity(x in finite_series(24)) {
        prop_assert_eq!(ed(&x, &x), 0.0);
    }

    #[test]
    fn ed_triangle_inequality(
        a in finite_series(16),
        b in finite_series(16),
        c in finite_series(16),
    ) {
        let lhs = ed(&a, &c);
        let rhs = ed(&a, &b) + ed(&b, &c);
        prop_assert!(lhs <= rhs + 1e-6 * (1.0 + rhs));
    }

    #[test]
    fn early_abandon_never_disagrees(
        x in finite_series(48),
        y in finite_series(48),
        bound in 0.0f64..1e9,
    ) {
        let exact = sq_ed(&x, &y);
        match ed_early_abandon(&x, &y, bound) {
            Some(d) => {
                prop_assert_eq!(d, exact);
            }
            None => prop_assert!(exact > bound),
        }
    }

    #[test]
    fn znorm_output_is_normalized(x in finite_series(64)) {
        let z = znormalize(&x);
        prop_assert!(is_znormalized(&z, 1e-3));
    }

    #[test]
    fn znorm_is_shift_and_scale_invariant(
        x in finite_series(32),
        shift in -100.0f32..100.0,
        scale in 0.1f32..10.0,
    ) {
        let a = znormalize(&x);
        let shifted: Vec<f32> = x.iter().map(|&v| v * scale + shift).collect();
        let b = znormalize(&shifted);
        for (p, q) in a.iter().zip(b.iter()) {
            prop_assert!((p - q).abs() < 1e-2, "{p} vs {q}");
        }
    }

    #[test]
    fn topk_matches_sort(
        dists in prop::collection::vec(0.0f64..1e6, 1..200),
        k in 1usize..50,
    ) {
        let mut t = TopK::new(k);
        for (i, &d) in dists.iter().enumerate() {
            t.offer(i as u64, d);
        }
        let got = t.into_sorted();

        let mut want: Vec<(u64, f64)> =
            dists.iter().enumerate().map(|(i, &d)| (i as u64, d)).collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn topk_bound_is_max_of_results(
        dists in prop::collection::vec(0.0f64..1e6, 1..100),
        k in 1usize..20,
    ) {
        let mut t = TopK::new(k);
        for (i, &d) in dists.iter().enumerate() {
            t.offer(i as u64, d);
        }
        let bound = t.bound();
        let results = t.into_sorted();
        if results.len() == k {
            prop_assert_eq!(bound, results.last().unwrap().1);
        } else {
            prop_assert_eq!(bound, f64::INFINITY);
        }
    }

    #[test]
    fn recall_is_within_unit_interval(
        approx in prop::collection::vec(0u64..100, 0..50),
        exact in prop::collection::vec(0u64..100, 0..50),
    ) {
        let r = recall(&approx, &exact);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn recall_of_superset_is_one(exact in prop::collection::hash_set(0u64..1000, 1..40)) {
        let exact: Vec<u64> = exact.into_iter().collect();
        let mut approx = exact.clone();
        approx.extend(2000..2010u64);
        prop_assert_eq!(recall(&approx, &exact), 1.0);
    }
}
