//! Exact kNN ground truth (the `S_exact` of Definition 4).
//!
//! Recall of every approximate algorithm in the paper is computed against the
//! exact answer set produced by a full scan. The scan is parallelised with a
//! per-worker [`TopK`] merged at the end, and uses early-abandoning ED once a
//! worker's collector is full.

use crate::dataset::Dataset;
use crate::distance::ed_early_abandon;
use crate::topk::TopK;
use rayon::prelude::*;

/// Exact k nearest neighbours of `query` in `ds` by squared ED, sorted
/// ascending by `(distance, id)`. Distances returned are squared ED.
///
/// # Panics
/// If `k == 0` or the query length differs from the dataset series length.
pub fn exact_knn(ds: &Dataset, query: &[f32], k: usize) -> Vec<(u64, f64)> {
    assert!(k > 0, "k must be positive");
    assert_eq!(
        query.len(),
        ds.series_len(),
        "query length must match dataset series length"
    );
    let n = ds.num_series();
    if n == 0 {
        return Vec::new();
    }
    // Split into contiguous chunks; each worker keeps its own TopK.
    let chunk = (n / rayon::current_num_threads().max(1)).max(1024);
    let tops: Vec<TopK> = (0..n)
        .into_par_iter()
        .chunks(chunk)
        .map(|ids| {
            let mut top = TopK::new(k);
            for id in ids {
                let cand = ds.get(id as u64);
                if let Some(d) = ed_early_abandon(query, cand, top.bound()) {
                    top.offer(id as u64, d);
                }
            }
            top
        })
        .collect();
    let mut merged = TopK::new(k);
    for t in tops {
        merged.merge(t);
    }
    merged.into_sorted()
}

/// Ground truth for a batch of queries, parallelised across queries.
pub fn exact_knn_batch(ds: &Dataset, queries: &[Vec<f32>], k: usize) -> Vec<Vec<(u64, f64)>> {
    queries
        .par_iter()
        .map(|q| exact_knn_serial(ds, q, k))
        .collect()
}

/// Single-threaded exact scan (used per-query inside [`exact_knn_batch`] and
/// as the reference implementation in tests).
pub fn exact_knn_serial(ds: &Dataset, query: &[f32], k: usize) -> Vec<(u64, f64)> {
    assert!(k > 0, "k must be positive");
    assert_eq!(
        query.len(),
        ds.series_len(),
        "query length must match dataset series length"
    );
    let mut top = TopK::new(k);
    for (id, cand) in ds.iter() {
        if let Some(d) = ed_early_abandon(query, cand, top.bound()) {
            top.offer(id, d);
        }
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::sq_ed;
    use crate::gen::RandomWalkGenerator;
    use crate::gen::{Domain, SeriesGenerator};

    fn brute_force(ds: &Dataset, q: &[f32], k: usize) -> Vec<(u64, f64)> {
        let mut all: Vec<(u64, f64)> = ds.iter().map(|(id, v)| (id, sq_ed(q, v))).collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn parallel_matches_brute_force() {
        let ds = RandomWalkGenerator::new(64).generate(500, 13);
        let q = ds.get(17).to_vec();
        for k in [1, 5, 50] {
            let got = exact_knn(&ds, &q, k);
            let want = brute_force(&ds, &q, k);
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn serial_matches_parallel() {
        let ds = Domain::Eeg.generate(300, 21);
        let q = ds.get(5).to_vec();
        assert_eq!(exact_knn_serial(&ds, &q, 10), exact_knn(&ds, &q, 10));
    }

    #[test]
    fn self_query_returns_self_first() {
        let ds = Domain::TexMex.generate(100, 22);
        let q = ds.get(42).to_vec();
        let got = exact_knn(&ds, &q, 3);
        assert_eq!(got[0].0, 42);
        assert_eq!(got[0].1, 0.0);
    }

    #[test]
    fn k_larger_than_dataset_returns_all() {
        let ds = RandomWalkGenerator::new(16).generate(7, 1);
        let q = ds.get(0).to_vec();
        let got = exact_knn(&ds, &q, 50);
        assert_eq!(got.len(), 7);
    }

    #[test]
    fn batch_matches_individual() {
        let ds = Domain::Dna.generate(150, 30);
        let queries: Vec<Vec<f32>> = (0..4).map(|i| ds.get(i * 30).to_vec()).collect();
        let batch = exact_knn_batch(&ds, &queries, 5);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], exact_knn(&ds, q, 5));
        }
    }

    #[test]
    fn results_sorted_ascending() {
        let ds = RandomWalkGenerator::new(32).generate(200, 9);
        let q = ds.get(3).to_vec();
        let got = exact_knn(&ds, &q, 20);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn empty_dataset_returns_empty() {
        let ds = Dataset::new(8);
        let q = vec![0.0f32; 8];
        assert!(exact_knn(&ds, &q, 3).is_empty());
    }
}
