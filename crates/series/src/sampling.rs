//! Sampling utilities used by the index-construction pipeline.
//!
//! CLIMBER builds its index skeleton from a *partition-level* sample
//! (§V, Step 1): rather than scanning the whole dataset, whole storage
//! partitions are selected at random and every series inside them is used.
//! This module provides that sampler plus a plain reservoir sampler used for
//! pivot selection.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Selects `take` out of `total` partition indices uniformly at random,
/// without replacement, deterministically from `seed`.
///
/// # Panics
/// If `take > total`.
pub fn partition_level_sample(total: usize, take: usize, seed: u64) -> Vec<usize> {
    assert!(
        take <= total,
        "cannot sample {take} partitions out of {total}"
    );
    let mut idx: Vec<usize> = (0..total).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(take);
    idx.sort_unstable();
    idx
}

/// Number of partitions to sample for a target sampling fraction `alpha`
/// (rounded up so tiny datasets still yield a non-empty sample).
pub fn partitions_for_alpha(total: usize, alpha: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&alpha),
        "alpha must be within [0, 1], got {alpha}"
    );
    if total == 0 {
        return 0;
    }
    ((total as f64 * alpha).ceil() as usize).clamp(1, total)
}

/// Classic reservoir sampling of `k` items from a streamed iterator.
/// Returns fewer than `k` when the stream is shorter than `k`.
pub fn reservoir_sample<T, I>(iter: I, k: usize, seed: u64) -> Vec<T>
where
    I: IntoIterator<Item = T>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.into_iter().enumerate() {
        if reservoir.len() < k {
            reservoir.push(item);
        } else {
            let j = rng.random_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_sample_is_sorted_unique_and_in_range() {
        let s = partition_level_sample(100, 10, 1);
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn partition_sample_deterministic() {
        assert_eq!(
            partition_level_sample(50, 5, 9),
            partition_level_sample(50, 5, 9)
        );
    }

    #[test]
    fn partition_sample_all() {
        let s = partition_level_sample(5, 5, 3);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        partition_level_sample(3, 4, 0);
    }

    #[test]
    fn alpha_to_partitions() {
        assert_eq!(partitions_for_alpha(100, 0.1), 10);
        assert_eq!(partitions_for_alpha(100, 0.001), 1); // never zero
        assert_eq!(partitions_for_alpha(100, 1.0), 100);
        assert_eq!(partitions_for_alpha(0, 0.5), 0);
        assert_eq!(partitions_for_alpha(7, 0.5), 4); // ceil
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_out_of_range_panics() {
        partitions_for_alpha(10, 1.5);
    }

    #[test]
    fn reservoir_returns_k_items() {
        let out = reservoir_sample(0..1000, 16, 7);
        assert_eq!(out.len(), 16);
        assert!(out.iter().all(|&x| x < 1000));
    }

    #[test]
    fn reservoir_short_stream_returns_all() {
        let out = reservoir_sample(0..3, 10, 7);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Sample 1 of 4 many times; each item should appear ~25%.
        let mut counts = [0usize; 4];
        for seed in 0..4000u64 {
            let s = reservoir_sample(0..4usize, 1, seed);
            counts[s[0]] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 1000.0).abs() < 150.0,
                "non-uniform reservoir: {counts:?}"
            );
        }
    }
}
