//! Minimal binary dataset I/O.
//!
//! A dataset file is little-endian: magic `CLDS`, format version, series
//! length, series count, then the row-major `f32` payload. Used by examples
//! to persist generated corpora and by tests for roundtrip checks. The
//! format is deliberately dependency-free (no serde) per the design notes.

use crate::dataset::Dataset;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"CLDS";
const VERSION: u32 = 1;

/// Writes `ds` to `path` in the `CLDS` binary format.
pub fn write_dataset(ds: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(ds.series_len() as u64).to_le_bytes())?;
    w.write_all(&(ds.num_series() as u64).to_le_bytes())?;
    for &v in ds.raw() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a dataset previously written with [`write_dataset`].
pub fn read_dataset(path: &Path) -> io::Result<Dataset> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad magic {magic:?}, expected {MAGIC:?}"),
        ));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported dataset format version {version}"),
        ));
    }
    let series_len = read_u64(&mut r)? as usize;
    let num_series = read_u64(&mut r)? as usize;
    if series_len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "series length of zero",
        ));
    }
    let total = series_len
        .checked_mul(num_series)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "size overflow"))?;
    let mut values = vec![0.0f32; total];
    let mut buf = [0u8; 4];
    for v in values.iter_mut() {
        r.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    // Trailing bytes indicate corruption.
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(Dataset::from_raw(series_len, values)),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes after dataset payload",
        )),
    }
}

/// Reads a dataset from a delimited text file (CSV/TSV): one series per
/// line, readings separated by `delimiter`, optionally skipping a header
/// line. This is the standard interchange format of the UCR archive and
/// most public data-series corpora.
///
/// All rows must have the same number of readings. When `label_column` is
/// true the first field of each row (a class label, as in the UCR archive)
/// is skipped.
pub fn read_delimited(
    path: &Path,
    delimiter: char,
    has_header: bool,
    label_column: bool,
) -> io::Result<Dataset> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut ds: Option<Dataset> = None;
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        if has_header && line_no == 1 {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed.split(delimiter);
        if label_column {
            fields.next();
        }
        let values: Result<Vec<f32>, _> = fields.map(|f| f.trim().parse::<f32>()).collect();
        let values = values.map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {line_no}: {e}"))
        })?;
        if values.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {line_no}: no readings"),
            ));
        }
        match &mut ds {
            None => {
                let mut d = Dataset::new(values.len());
                d.push(&values);
                ds = Some(d);
            }
            Some(d) => {
                if values.len() != d.series_len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "line {line_no}: {} readings, expected {}",
                            values.len(),
                            d.series_len()
                        ),
                    ));
                }
                d.push(&values);
            }
        }
    }
    ds.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "file holds no series"))
}

/// Writes a dataset as comma-separated text, one series per line.
pub fn write_csv(ds: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for (_, values) in ds.iter() {
        let mut first = true;
        for v in values {
            if !first {
                write!(w, ",")?;
            }
            write!(w, "{v}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Domain;
    use std::fs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("climber-series-io-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let ds = Domain::RandomWalk.generate(20, 77);
        let p = tmp("roundtrip.clds");
        write_dataset(&ds, &p).unwrap();
        let back = read_dataset(&p).unwrap();
        assert_eq!(ds, back);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("badmagic.clds");
        fs::write(&p, b"NOPE0000000000000000000000").unwrap();
        let err = read_dataset(&p).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let ds = Domain::Eeg.generate(4, 1);
        let p = tmp("trunc.clds");
        write_dataset(&ds, &p).unwrap();
        let bytes = fs::read(&p).unwrap();
        fs::write(&p, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_dataset(&p).is_err());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn trailing_garbage_rejected() {
        let ds = Domain::Dna.generate(2, 1);
        let p = tmp("trailing.clds");
        write_dataset(&ds, &p).unwrap();
        let mut bytes = fs::read(&p).unwrap();
        bytes.push(0xAB);
        fs::write(&p, &bytes).unwrap();
        assert!(read_dataset(&p).is_err());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn csv_roundtrip() {
        let ds = Domain::TexMex.generate(6, 3);
        let p = tmp("roundtrip.csv");
        write_csv(&ds, &p).unwrap();
        let back = read_delimited(&p, ',', false, false).unwrap();
        assert_eq!(back.num_series(), 6);
        assert_eq!(back.series_len(), ds.series_len());
        for (a, b) in ds.raw().iter().zip(back.raw().iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        fs::remove_file(&p).ok();
    }

    #[test]
    fn delimited_with_header_and_labels() {
        let p = tmp("ucr.tsv");
        fs::write(&p, "name\tc1\tc2\tc3\n1\t0.5\t1.5\t2.5\n2\t3.5\t4.5\t5.5\n").unwrap();
        let ds = read_delimited(&p, '\t', true, true).unwrap();
        assert_eq!(ds.num_series(), 2);
        assert_eq!(ds.get(0), &[0.5, 1.5, 2.5]);
        assert_eq!(ds.get(1), &[3.5, 4.5, 5.5]);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn delimited_blank_lines_skipped() {
        let p = tmp("blank.csv");
        fs::write(&p, "1,2\n\n3,4\n").unwrap();
        let ds = read_delimited(&p, ',', false, false).unwrap();
        assert_eq!(ds.num_series(), 2);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn delimited_ragged_rows_rejected() {
        let p = tmp("ragged.csv");
        fs::write(&p, "1,2,3\n4,5\n").unwrap();
        let err = read_delimited(&p, ',', false, false).unwrap_err();
        assert!(err.to_string().contains("expected 3"));
        fs::remove_file(&p).ok();
    }

    #[test]
    fn delimited_bad_number_rejected() {
        let p = tmp("nan.csv");
        fs::write(&p, "1,two,3\n").unwrap();
        assert!(read_delimited(&p, ',', false, false).is_err());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn delimited_empty_file_rejected() {
        let p = tmp("empty.csv");
        fs::write(&p, "").unwrap();
        assert!(read_delimited(&p, ',', false, false).is_err());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_dataset_roundtrip() {
        let ds = Dataset::new(16);
        let p = tmp("empty.clds");
        write_dataset(&ds, &p).unwrap();
        let back = read_dataset(&p).unwrap();
        assert_eq!(back.num_series(), 0);
        assert_eq!(back.series_len(), 16);
        fs::remove_file(&p).ok();
    }
}
