//! Euclidean distance kernels (Definition 3) with `f64` accumulation.
//!
//! Three variants are provided:
//! * [`sq_ed`] — squared distance, the hot kernel used by all comparisons
//!   that only need an ordering;
//! * [`ed`] — the paper's `ED(X, Y)` with the final square root;
//! * [`ed_early_abandon`] — the classic data-series optimisation that stops
//!   accumulating as soon as the running sum exceeds a known best bound.

/// Squared Euclidean distance between two equal-length slices.
///
/// Chunks of 8 with one independent `f64` accumulator per lane break the
/// loop-carried dependence on a single sum; the lanes are combined in a
/// fixed order shared by every dispatch tier in [`crate::kernels`], so the
/// scalar, SSE and AVX2 paths — and `ed_early_abandon` — all agree
/// bit-for-bit.
///
/// # Panics
/// If the slices differ in length.
#[inline]
pub fn sq_ed(x: &[f32], y: &[f32]) -> f64 {
    crate::kernels::sq_ed(x, y)
}

/// Euclidean distance `ED(X, Y)` (Definition 3).
#[inline]
pub fn ed(x: &[f32], y: &[f32]) -> f64 {
    sq_ed(x, y).sqrt()
}

/// Squared Euclidean distance with early abandoning.
///
/// Returns `None` as soon as the partial sum exceeds `sq_bound` (a squared
/// distance), otherwise `Some(squared distance)`. The bound is checked
/// every 16 readings, keeping the branch cost negligible on series of a few
/// hundred points. Accumulation uses the same 8-lane layout as [`sq_ed`],
/// so a non-abandoned result is bit-identical to `sq_ed(x, y)`.
#[inline]
pub fn ed_early_abandon(x: &[f32], y: &[f32], sq_bound: f64) -> Option<f64> {
    crate::kernels::ed_early_abandon(x, y, sq_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ed_of_identical_series_is_zero() {
        let x = [1.0f32, -2.0, 3.5];
        assert_eq!(ed(&x, &x), 0.0);
    }

    #[test]
    fn ed_known_value() {
        // 3-4-5 triangle.
        let x = [0.0f32, 0.0];
        let y = [3.0f32, 4.0];
        assert!((ed(&x, &y) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sq_ed_matches_ed_squared() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let y = [4.0f32, 3.0, 2.0, 1.0];
        let d = ed(&x, &y);
        assert!((sq_ed(&x, &y) - d * d).abs() < 1e-9);
    }

    #[test]
    fn early_abandon_agrees_when_bound_is_loose() {
        let x: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..100).map(|i| (i * 2) as f32).collect();
        let exact = sq_ed(&x, &y);
        assert_eq!(ed_early_abandon(&x, &y, f64::INFINITY), Some(exact));
        assert_eq!(ed_early_abandon(&x, &y, exact + 1.0), Some(exact));
    }

    #[test]
    fn early_abandon_fires_when_bound_is_tight() {
        let x: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..100).map(|i| (i + 10) as f32).collect();
        assert_eq!(ed_early_abandon(&x, &y, 1.0), None);
    }

    #[test]
    fn early_abandon_exact_at_boundary() {
        // bound equal to the true distance must NOT abandon (strict >).
        let x = [0.0f32; 4];
        let y = [1.0f32; 4];
        assert_eq!(ed_early_abandon(&x, &y, 4.0), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        sq_ed(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn chunked_kernel_matches_naive_sum() {
        // Lengths around the 8-lane boundary, including a pure remainder.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 64, 100, 256] {
            let x: Vec<f32> = (0..len).map(|i| (i as f32).sin() * 3.0).collect();
            let y: Vec<f32> = (0..len).map(|i| (i as f32).cos() - 0.5).collect();
            let naive: f64 = x
                .iter()
                .zip(y.iter())
                .map(|(a, b)| {
                    let d = f64::from(*a) - f64::from(*b);
                    d * d
                })
                .sum();
            let got = sq_ed(&x, &y);
            assert!(
                (got - naive).abs() <= naive.abs() * 1e-12 + 1e-12,
                "len {len}: chunked {got} vs naive {naive}"
            );
        }
    }

    #[test]
    fn distance_is_symmetric() {
        let x = [1.5f32, -0.5, 2.0];
        let y = [0.0f32, 1.0, -1.0];
        assert_eq!(ed(&x, &y), ed(&y, &x));
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let a = [0.0f32, 0.0, 0.0];
        let b = [1.0f32, 2.0, 2.0];
        let c = [-1.0f32, 0.5, 4.0];
        assert!(ed(&a, &c) <= ed(&a, &b) + ed(&b, &c) + 1e-12);
    }
}
