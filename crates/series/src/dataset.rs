//! A data-series dataset (Definition 2): a collection of `d` series, each of
//! the same length `n`, stored row-major in one contiguous buffer.

use crate::series::{DataSeries, SeriesId};

/// A collection of equal-length data series (Definition 2).
///
/// Values are stored in one contiguous row-major `Vec<f32>` so that scans are
/// cache-friendly and the dataset can be memory-mapped or sliced into
/// partitions without per-series allocations.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    len: usize,
    values: Vec<f32>,
}

impl Dataset {
    /// Creates an empty dataset whose series all have length `series_len`.
    pub fn new(series_len: usize) -> Self {
        assert!(series_len > 0, "series length must be positive");
        Self {
            len: series_len,
            values: Vec::new(),
        }
    }

    /// Creates a dataset with pre-allocated room for `capacity` series.
    pub fn with_capacity(series_len: usize, capacity: usize) -> Self {
        assert!(series_len > 0, "series length must be positive");
        Self {
            len: series_len,
            values: Vec::with_capacity(series_len * capacity),
        }
    }

    /// Builds a dataset directly from a row-major buffer.
    ///
    /// # Panics
    /// If the buffer length is not a multiple of `series_len`.
    pub fn from_raw(series_len: usize, values: Vec<f32>) -> Self {
        assert!(series_len > 0, "series length must be positive");
        assert!(
            values.len() % series_len == 0,
            "buffer length {} is not a multiple of series length {}",
            values.len(),
            series_len
        );
        Self {
            len: series_len,
            values,
        }
    }

    /// The common length `n` of all series.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.len
    }

    /// Number of series `d` in the dataset.
    #[inline]
    pub fn num_series(&self) -> usize {
        self.values.len() / self.len
    }

    /// True when the dataset contains no series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a series and returns its assigned id.
    ///
    /// # Panics
    /// If the series length differs from the dataset's series length.
    pub fn push(&mut self, values: &[f32]) -> SeriesId {
        assert_eq!(
            values.len(),
            self.len,
            "series length mismatch: got {}, want {}",
            values.len(),
            self.len
        );
        let id = self.num_series() as SeriesId;
        self.values.extend_from_slice(values);
        id
    }

    /// Borrowed view of the readings of series `id`.
    #[inline]
    pub fn get(&self, id: SeriesId) -> &[f32] {
        let i = id as usize;
        let start = i * self.len;
        &self.values[start..start + self.len]
    }

    /// Owned copy of series `id`.
    pub fn series(&self, id: SeriesId) -> DataSeries {
        DataSeries::new(id, self.get(id).to_vec())
    }

    /// Iterator over `(id, values)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SeriesId, &[f32])> {
        self.values
            .chunks_exact(self.len)
            .enumerate()
            .map(|(i, c)| (i as SeriesId, c))
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn raw(&self) -> &[f32] {
        &self.values
    }

    /// Total in-memory payload size in bytes (values only).
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut ds = Dataset::new(3);
        let a = ds.push(&[1.0, 2.0, 3.0]);
        let b = ds.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(ds.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.get(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.num_series(), 2);
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn push_wrong_length_panics() {
        let mut ds = Dataset::new(4);
        ds.push(&[1.0]);
    }

    #[test]
    fn from_raw_splits_rows() {
        let ds = Dataset::from_raw(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ds.num_series(), 2);
        assert_eq!(ds.get(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_raw_rejects_ragged_buffer() {
        Dataset::from_raw(3, vec![1.0, 2.0]);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let ds = Dataset::from_raw(1, vec![9.0, 8.0, 7.0]);
        let ids: Vec<_> = ds.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let vals: Vec<f32> = ds.iter().map(|(_, v)| v[0]).collect();
        assert_eq!(vals, vec![9.0, 8.0, 7.0]);
    }

    #[test]
    fn series_returns_owned_copy() {
        let ds = Dataset::from_raw(2, vec![1.0, 2.0]);
        let s = ds.series(0);
        assert_eq!(s.id, 0);
        assert_eq!(s.values, vec![1.0, 2.0]);
    }

    #[test]
    fn payload_bytes_counts_f32s() {
        let ds = Dataset::from_raw(4, vec![0.0; 12]);
        assert_eq!(ds.payload_bytes(), 48);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(8);
        assert!(ds.is_empty());
        assert_eq!(ds.num_series(), 0);
    }
}
