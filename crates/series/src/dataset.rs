//! A data-series dataset (Definition 2): a collection of `d` series, each of
//! the same length `n`, stored row-major in one contiguous buffer.

use crate::series::{DataSeries, SeriesId};

/// A collection of equal-length data series (Definition 2).
///
/// Values are stored in one contiguous row-major `Vec<f32>` so that scans are
/// cache-friendly and the dataset can be memory-mapped or sliced into
/// partitions without per-series allocations.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    len: usize,
    values: Vec<f32>,
}

impl Dataset {
    /// Creates an empty dataset whose series all have length `series_len`.
    pub fn new(series_len: usize) -> Self {
        assert!(series_len > 0, "series length must be positive");
        Self {
            len: series_len,
            values: Vec::new(),
        }
    }

    /// Creates a dataset with pre-allocated room for `capacity` series.
    pub fn with_capacity(series_len: usize, capacity: usize) -> Self {
        assert!(series_len > 0, "series length must be positive");
        Self {
            len: series_len,
            values: Vec::with_capacity(series_len * capacity),
        }
    }

    /// Builds a dataset directly from a row-major buffer.
    ///
    /// # Panics
    /// If the buffer length is not a multiple of `series_len`.
    pub fn from_raw(series_len: usize, values: Vec<f32>) -> Self {
        assert!(series_len > 0, "series length must be positive");
        assert!(
            values.len() % series_len == 0,
            "buffer length {} is not a multiple of series length {}",
            values.len(),
            series_len
        );
        Self {
            len: series_len,
            values,
        }
    }

    /// The common length `n` of all series.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.len
    }

    /// Number of series `d` in the dataset.
    #[inline]
    pub fn num_series(&self) -> usize {
        self.values.len() / self.len
    }

    /// True when the dataset contains no series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a series and returns its assigned id.
    ///
    /// # Panics
    /// If the series length differs from the dataset's series length.
    pub fn push(&mut self, values: &[f32]) -> SeriesId {
        assert_eq!(
            values.len(),
            self.len,
            "series length mismatch: got {}, want {}",
            values.len(),
            self.len
        );
        let id = self.num_series() as SeriesId;
        self.values.extend_from_slice(values);
        id
    }

    /// Borrowed view of the readings of series `id`.
    #[inline]
    pub fn get(&self, id: SeriesId) -> &[f32] {
        let i = id as usize;
        let start = i * self.len;
        &self.values[start..start + self.len]
    }

    /// Owned copy of series `id`.
    pub fn series(&self, id: SeriesId) -> DataSeries {
        DataSeries::new(id, self.get(id).to_vec())
    }

    /// Iterator over `(id, values)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SeriesId, &[f32])> {
        self.values
            .chunks_exact(self.len)
            .enumerate()
            .map(|(i, c)| (i as SeriesId, c))
    }

    /// Splits the dataset into contiguous [`DatasetBlock`]s of at most
    /// `block_size` series each, in id order (the last block may be
    /// shorter). Blocks borrow the row-major buffer — no values are
    /// copied — and records keep their global ids, so a parallel pass
    /// over the blocks sees exactly the records a sequential scan would.
    /// This is the unit of work the multi-core index build fans out.
    ///
    /// # Panics
    /// If `block_size == 0`.
    pub fn blocks(&self, block_size: usize) -> Vec<DatasetBlock<'_>> {
        assert!(block_size > 0, "block size must be positive");
        let n = self.num_series();
        (0..n)
            .step_by(block_size)
            .map(|start| {
                let end = (start + block_size).min(n);
                DatasetBlock {
                    start: start as SeriesId,
                    series_len: self.len,
                    values: &self.values[start * self.len..end * self.len],
                }
            })
            .collect()
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn raw(&self) -> &[f32] {
        &self.values
    }

    /// Total in-memory payload size in bytes (values only).
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }
}

/// A contiguous run of series borrowed from a [`Dataset`]: the work unit of
/// block-parallel passes (see [`Dataset::blocks`]). Records keep their
/// global ids and their original order.
#[derive(Debug, Clone, Copy)]
pub struct DatasetBlock<'a> {
    start: SeriesId,
    series_len: usize,
    values: &'a [f32],
}

impl<'a> DatasetBlock<'a> {
    /// Global id of the first series in the block.
    #[inline]
    pub fn start_id(&self) -> SeriesId {
        self.start
    }

    /// Number of series in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len() / self.series_len
    }

    /// True when the block holds no series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over `(global id, values)` pairs, ascending by id.
    pub fn iter(&self) -> impl Iterator<Item = (SeriesId, &'a [f32])> + '_ {
        self.values
            .chunks_exact(self.series_len)
            .enumerate()
            .map(|(i, c)| (self.start + i as SeriesId, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut ds = Dataset::new(3);
        let a = ds.push(&[1.0, 2.0, 3.0]);
        let b = ds.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(ds.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.get(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.num_series(), 2);
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn push_wrong_length_panics() {
        let mut ds = Dataset::new(4);
        ds.push(&[1.0]);
    }

    #[test]
    fn from_raw_splits_rows() {
        let ds = Dataset::from_raw(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ds.num_series(), 2);
        assert_eq!(ds.get(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_raw_rejects_ragged_buffer() {
        Dataset::from_raw(3, vec![1.0, 2.0]);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let ds = Dataset::from_raw(1, vec![9.0, 8.0, 7.0]);
        let ids: Vec<_> = ds.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let vals: Vec<f32> = ds.iter().map(|(_, v)| v[0]).collect();
        assert_eq!(vals, vec![9.0, 8.0, 7.0]);
    }

    #[test]
    fn series_returns_owned_copy() {
        let ds = Dataset::from_raw(2, vec![1.0, 2.0]);
        let s = ds.series(0);
        assert_eq!(s.id, 0);
        assert_eq!(s.values, vec![1.0, 2.0]);
    }

    #[test]
    fn payload_bytes_counts_f32s() {
        let ds = Dataset::from_raw(4, vec![0.0; 12]);
        assert_eq!(ds.payload_bytes(), 48);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(8);
        assert!(ds.is_empty());
        assert_eq!(ds.num_series(), 0);
    }

    #[test]
    fn blocks_cover_every_record_in_order() {
        let ds = Dataset::from_raw(2, (0..26).map(|i| i as f32).collect());
        for block_size in [1usize, 3, 5, 13, 100] {
            let blocks = ds.blocks(block_size);
            assert_eq!(
                blocks.len(),
                ds.num_series().div_ceil(block_size),
                "block_size={block_size}"
            );
            let seen: Vec<(SeriesId, &[f32])> = blocks.iter().flat_map(|b| b.iter()).collect();
            let direct: Vec<(SeriesId, &[f32])> = ds.iter().collect();
            assert_eq!(seen, direct, "block_size={block_size}");
            for b in &blocks {
                assert!(b.len() <= block_size);
                assert!(!b.is_empty());
                assert_eq!(b.iter().next().unwrap().0, b.start_id());
            }
        }
    }

    #[test]
    fn blocks_of_empty_dataset_are_none() {
        let ds = Dataset::new(4);
        assert!(ds.blocks(8).is_empty());
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        Dataset::from_raw(1, vec![1.0]).blocks(0);
    }
}
