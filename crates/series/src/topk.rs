//! Bounded top-k selection by distance (a max-heap of size `k`).
//!
//! Used by the ground-truth scan, by every query algorithm's final ED
//! refinement, and by the baselines. Ties on distance are broken by series id
//! so results are deterministic regardless of visit order.

use crate::series::SeriesId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Heap entry ordered by (distance desc, id desc) so that `peek()` is the
/// *worst* of the current top-k and pops first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    dist: f64,
    id: SeriesId,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Distances come from sq_ed and are never NaN; total_cmp keeps this
        // robust anyway.
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded collector of the `k` smallest-distance `(id, dist)` pairs.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl TopK {
    /// Creates a collector for the `k` nearest results.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The configured `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of results currently held (`<= k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no results have been offered yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current pruning bound: the distance of the worst kept result, or
    /// `f64::INFINITY` while fewer than `k` results are held.
    ///
    /// Candidates with distance `> bound()` can be skipped; candidates equal
    /// to the bound may still displace the worst entry via the id tie-break.
    #[inline]
    pub fn bound(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |e| e.dist)
        }
    }

    /// Offers a candidate; keeps it only if it belongs in the top-k.
    /// Returns true when the candidate was kept.
    pub fn offer(&mut self, id: SeriesId, dist: f64) -> bool {
        let entry = Entry { dist, id };
        if self.heap.len() < self.k {
            self.heap.push(entry);
            return true;
        }
        // Full: replace the worst entry when strictly better under the
        // (dist, id) order.
        let worst = *self.heap.peek().expect("heap is full, k > 0");
        if entry < worst {
            self.heap.pop();
            self.heap.push(entry);
            true
        } else {
            false
        }
    }

    /// Consumes the collector, returning results sorted ascending by
    /// `(distance, id)`.
    pub fn into_sorted(self) -> Vec<(SeriesId, f64)> {
        let mut v: Vec<Entry> = self.heap.into_vec();
        v.sort_unstable();
        v.into_iter().map(|e| (e.id, e.dist)).collect()
    }

    /// Merges another collector into this one (used to combine per-worker
    /// partial results).
    pub fn merge(&mut self, other: TopK) {
        for e in other.heap {
            self.offer(e.id, e.dist);
        }
    }

    /// Publishes this collector's bound into `shared` — but only once the
    /// collector is full, because a partial heap's worst distance is not
    /// yet an upper bound on the final k-th distance.
    #[inline]
    pub fn publish_bound(&self, shared: &SharedBound) {
        if self.heap.len() >= self.k {
            shared.tighten(self.bound());
        }
    }

    /// The effective pruning bound when cooperating with other workers on
    /// the *same* query: the tighter of this collector's own bound and the
    /// shared bound published by the others.
    #[inline]
    pub fn bound_with(&self, shared: &SharedBound) -> f64 {
        self.bound().min(shared.get())
    }
}

/// A pruning bound shared between workers refining the *same* query over
/// different partitions (lock-free; an atomic min over `f64` bits).
///
/// Safety of sharing: any *full* [`TopK`]'s bound is the k-th best distance
/// over a subset of the candidates, which is always `>=` the final k-th
/// best distance over all candidates. Pruning candidates strictly worse
/// than such a bound can therefore never evict a true top-k member, so
/// results stay bit-identical to a sequential scan regardless of thread
/// timing — only the amount of early-abandoned work varies.
///
/// Distances are non-negative (squared ED), so the IEEE-754 bit patterns
/// order identically to the values and a `fetch_min` on the raw bits
/// implements an atomic numeric min.
#[derive(Debug)]
pub struct SharedBound(AtomicU64);

impl SharedBound {
    /// A fresh bound: `f64::INFINITY` (nothing can be pruned yet).
    pub fn new() -> Self {
        Self(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// The current shared bound.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(AtomicOrdering::Relaxed))
    }

    /// Lowers the bound to `bound` if it is tighter than the current value.
    ///
    /// # Panics
    /// If `bound` is negative or NaN (squared distances never are).
    #[inline]
    pub fn tighten(&self, bound: f64) {
        assert!(bound >= 0.0, "shared bound must be a non-negative distance");
        self.0.fetch_min(bound.to_bits(), AtomicOrdering::Relaxed);
    }
}

impl Default for SharedBound {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (id, d) in [(0, 9.0), (1, 1.0), (2, 5.0), (3, 3.0), (4, 7.0)] {
            t.offer(id, d);
        }
        let out = t.into_sorted();
        assert_eq!(
            out.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![1, 3, 2]
        );
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.bound(), f64::INFINITY);
        t.offer(0, 1.0);
        assert_eq!(t.bound(), f64::INFINITY);
        t.offer(1, 2.0);
        assert_eq!(t.bound(), 2.0);
        t.offer(2, 0.5);
        assert_eq!(t.bound(), 1.0);
    }

    #[test]
    fn ties_broken_by_smaller_id() {
        let mut t = TopK::new(2);
        t.offer(5, 1.0);
        t.offer(3, 1.0);
        t.offer(1, 1.0);
        let out = t.into_sorted();
        assert_eq!(
            out.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn deterministic_under_any_insertion_order() {
        let pairs = [(0u64, 2.0), (1, 1.0), (2, 3.0), (3, 1.0), (4, 0.0)];
        let mut expected: Option<Vec<(SeriesId, f64)>> = None;
        // try a few permutations
        let orders = [
            [0usize, 1, 2, 3, 4],
            [4, 3, 2, 1, 0],
            [2, 0, 4, 1, 3],
            [1, 4, 0, 3, 2],
        ];
        for order in orders {
            let mut t = TopK::new(3);
            for &i in &order {
                t.offer(pairs[i].0, pairs[i].1);
            }
            let got = t.into_sorted();
            match &expected {
                None => expected = Some(got),
                Some(e) => assert_eq!(&got, e),
            }
        }
    }

    #[test]
    fn merge_combines_partials() {
        let mut a = TopK::new(2);
        a.offer(0, 5.0);
        a.offer(1, 4.0);
        let mut b = TopK::new(2);
        b.offer(2, 1.0);
        b.offer(3, 9.0);
        a.merge(b);
        let out = a.into_sorted();
        assert_eq!(
            out.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![2, 1]
        );
    }

    #[test]
    fn offer_returns_whether_kept() {
        let mut t = TopK::new(1);
        assert!(t.offer(0, 2.0));
        assert!(t.offer(1, 1.0));
        assert!(!t.offer(2, 3.0));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        TopK::new(0);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut t = TopK::new(10);
        t.offer(7, 3.0);
        let out = t.into_sorted();
        assert_eq!(out, vec![(7, 3.0)]);
    }

    #[test]
    fn shared_bound_is_an_atomic_min() {
        let s = SharedBound::new();
        assert_eq!(s.get(), f64::INFINITY);
        s.tighten(5.0);
        assert_eq!(s.get(), 5.0);
        s.tighten(9.0); // looser: ignored
        assert_eq!(s.get(), 5.0);
        s.tighten(1.5);
        assert_eq!(s.get(), 1.5);
        s.tighten(0.0);
        assert_eq!(s.get(), 0.0);
    }

    #[test]
    fn partial_heap_never_publishes() {
        let s = SharedBound::new();
        let mut t = TopK::new(3);
        t.offer(0, 1.0);
        t.offer(1, 2.0);
        t.publish_bound(&s); // only 2 of 3 held: not a valid upper bound
        assert_eq!(s.get(), f64::INFINITY);
        t.offer(2, 3.0);
        t.publish_bound(&s);
        assert_eq!(s.get(), 3.0);
    }

    #[test]
    fn bound_with_takes_the_tighter_side() {
        let s = SharedBound::new();
        s.tighten(2.0);
        let mut t = TopK::new(1);
        assert_eq!(t.bound_with(&s), 2.0); // own bound is INF
        t.offer(0, 0.5);
        assert_eq!(t.bound_with(&s), 0.5); // own bound now tighter
    }

    #[test]
    fn shared_bound_concurrent_tighten() {
        let s = SharedBound::new();
        std::thread::scope(|scope| {
            for i in 0..8u32 {
                let s = &s;
                scope.spawn(move || {
                    for j in 0..1000u32 {
                        s.tighten(f64::from(i * 1000 + j) + 1.0);
                    }
                });
            }
        });
        assert_eq!(s.get(), 1.0);
    }
}
