//! The RandomWalk benchmark generator.
//!
//! The standard data-series benchmark used by iSAX, iSAX 2.0, TARDIS, DPiSAX
//! and the CLIMBER paper itself: each series is a cumulative sum of N(0, 1)
//! steps, z-normalised. Random walks are the *hard* case for pivot and SAX
//! methods alike because the space has no cluster structure.

use super::{gauss, SeriesGenerator};
use crate::znorm::znormalize_in_place;
use rand::rngs::StdRng;

/// Generator of z-normalised random-walk series.
#[derive(Debug, Clone)]
pub struct RandomWalkGenerator {
    len: usize,
    step_std: f64,
}

impl RandomWalkGenerator {
    /// Creates a generator of walks with `len` points and unit step variance.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "series length must be positive");
        Self { len, step_std: 1.0 }
    }

    /// Overrides the step standard deviation (the benchmark default is 1.0).
    /// Has no effect on the z-normalised output shape distribution, but is
    /// exposed for raw-walk experiments.
    pub fn with_step_std(mut self, step_std: f64) -> Self {
        assert!(step_std > 0.0, "step std must be positive");
        self.step_std = step_std;
        self
    }
}

impl SeriesGenerator for RandomWalkGenerator {
    fn series_len(&self) -> usize {
        self.len
    }

    fn fill(&self, rng: &mut StdRng, out: &mut [f32]) {
        let mut acc = 0.0f64;
        for v in out.iter_mut() {
            acc += self.step_std * gauss(rng);
            *v = acc as f32;
        }
        znormalize_in_place(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znorm::is_znormalized;
    use rand::SeedableRng;

    #[test]
    fn output_is_znormalized() {
        let g = RandomWalkGenerator::new(256);
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0.0; 256];
        g.fill(&mut rng, &mut buf);
        assert!(is_znormalized(&buf, 1e-3));
    }

    #[test]
    fn walks_are_smooth_relative_to_white_noise() {
        // Adjacent readings of a random walk are strongly correlated; the
        // mean |first difference| of a z-normalised walk of length 256 is
        // far below that of z-normalised white noise (~1.1).
        let g = RandomWalkGenerator::new(256);
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = vec![0.0; 256];
        let mut mean_abs_diff = 0.0f64;
        const REPS: usize = 20;
        for _ in 0..REPS {
            g.fill(&mut rng, &mut buf);
            let d: f64 = buf
                .windows(2)
                .map(|w| (w[1] - w[0]).abs() as f64)
                .sum::<f64>()
                / (buf.len() - 1) as f64;
            mean_abs_diff += d / REPS as f64;
        }
        assert!(
            mean_abs_diff < 0.5,
            "walks look like noise: {mean_abs_diff}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        RandomWalkGenerator::new(0);
    }

    #[test]
    fn step_std_builder() {
        let g = RandomWalkGenerator::new(16).with_step_std(3.0);
        assert_eq!(g.series_len(), 16);
    }
}
