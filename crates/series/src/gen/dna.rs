//! DNA subsequence generator.
//!
//! The paper's DNA dataset converts human-genome assembly strings into data
//! series the way iSAX 2.0 does: each base maps to a numeric increment and a
//! sliding window over the cumulative signal becomes one series. The
//! resulting series have a distinctive *step/plateau* structure (long runs of
//! similar bases) and mid-range autocorrelation — harder for SAX-style mean
//! encodings than smooth walks.
//!
//! The generator emits 4-letter alphabet walks with run-length bias
//! (Markovian base repeats, as in real genomes), then integrates and
//! z-normalises.

use super::SeriesGenerator;
use crate::znorm::znormalize_in_place;
use rand::rngs::StdRng;
use rand::RngExt;

/// Numeric increments for the bases A, C, G, T (iSAX 2.0 convention).
const BASE_STEPS: [f64; 4] = [2.0, -1.0, 1.0, -2.0];

/// Probability that the next base repeats the previous one (run-length bias;
/// real genomes are far from i.i.d.).
const REPEAT_PROB: f64 = 0.55;

/// Generator of genome-subsequence-like series.
#[derive(Debug, Clone)]
pub struct DnaGenerator {
    len: usize,
}

impl DnaGenerator {
    /// Creates a generator of `len`-point DNA series.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "series length must be positive");
        Self { len }
    }
}

impl SeriesGenerator for DnaGenerator {
    fn series_len(&self) -> usize {
        self.len
    }

    fn fill(&self, rng: &mut StdRng, out: &mut [f32]) {
        let mut base = rng.random_range(0..4usize);
        let mut acc = 0.0f64;
        for v in out.iter_mut() {
            if rng.random::<f64>() >= REPEAT_PROB {
                base = rng.random_range(0..4usize);
            }
            acc += BASE_STEPS[base];
            *v = acc as f32;
        }
        znormalize_in_place(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znorm::is_znormalized;
    use rand::SeedableRng;

    #[test]
    fn output_is_znormalized() {
        let g = DnaGenerator::new(192);
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = vec![0.0; 192];
        g.fill(&mut rng, &mut buf);
        assert!(is_znormalized(&buf, 1e-3));
    }

    #[test]
    fn series_have_plateau_structure() {
        // Run-length bias means the signal often moves in the same direction
        // several steps in a row: count sign-preserving consecutive diffs.
        let g = DnaGenerator::new(192);
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = vec![0.0; 192];
        g.fill(&mut rng, &mut buf);
        let diffs: Vec<f32> = buf.windows(2).map(|w| w[1] - w[0]).collect();
        let same_sign = diffs
            .windows(2)
            .filter(|w| (w[0] > 0.0) == (w[1] > 0.0))
            .count();
        // i.i.d. directions would give ~50%; run bias pushes it well above.
        assert!(
            same_sign as f64 / (diffs.len() - 1) as f64 > 0.55,
            "no run structure: {same_sign}/{}",
            diffs.len() - 1
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = DnaGenerator::new(64);
        assert_eq!(g.generate(6, 10), g.generate(6, 10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        DnaGenerator::new(0);
    }
}
