//! Synthetic dataset generators standing in for the paper's evaluation
//! corpora (§VII-A).
//!
//! The paper evaluates on four datasets: the RandomWalk benchmark (1B series
//! × 256 points), the TexMex corpus (1B SIFT vectors × 128), a DNA dataset
//! (subsequences of the human genome, 192 points) and a seizure EEG dataset
//! (16-electrode recordings split into 256-point series). None of those
//! corpora are available offline at terabyte scale, so each generator below
//! synthesises series with the same *geometry* that drives index behaviour:
//!
//! * `randomwalk` — the exact benchmark process (cumulative N(0,1) steps);
//! * `sift` — clustered, non-negative, heavy-tailed gradient-histogram-like
//!   vectors (SIFT features are strongly clustered, which is why pivots work
//!   well on TexMex);
//! * `dna` — 4-letter-alphabet walks smoothed into numeric series, giving
//!   the step-plateau structure of genome subsequence encodings;
//! * `eeg` — oscillatory background with injected high-amplitude "seizure"
//!   regimes, mimicking epileptic EEG morphology.
//!
//! All generators are fully deterministic given a seed, and all emit
//! z-normalised series (the standard preprocessing for data-series indexes).

mod dna;
mod eeg;
mod randomwalk;
mod sift;

pub use dna::DnaGenerator;
pub use eeg::EegGenerator;
pub use randomwalk::RandomWalkGenerator;
pub use sift::SiftGenerator;

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Default series length used by the RandomWalk benchmark (paper: 256).
pub const RANDOMWALK_LEN: usize = 256;
/// Default series length of the TexMex SIFT corpus (paper: 128).
pub const SIFT_LEN: usize = 128;
/// Default series length of the DNA dataset (paper: 192).
pub const DNA_LEN: usize = 192;
/// Default series length of the seizure EEG dataset (paper: 256).
pub const EEG_LEN: usize = 256;

/// A deterministic generator of equal-length data series.
pub trait SeriesGenerator {
    /// Length of every generated series.
    fn series_len(&self) -> usize;

    /// Writes one series into `out` (which has length [`Self::series_len`])
    /// using the provided RNG.
    fn fill(&self, rng: &mut StdRng, out: &mut [f32]);

    /// Generates a dataset of `n` series, deterministically from `seed`.
    fn generate(&self, n: usize, seed: u64) -> Dataset {
        let len = self.series_len();
        let mut ds = Dataset::with_capacity(len, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut buf = vec![0.0f32; len];
        for _ in 0..n {
            self.fill(&mut rng, &mut buf);
            ds.push(&buf);
        }
        ds
    }
}

/// The four evaluation domains of the paper (§VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// RandomWalk benchmark, 256 points.
    RandomWalk,
    /// TexMex / SIFT image features, 128 points.
    TexMex,
    /// Human-genome subsequences, 192 points.
    Dna,
    /// Seizure EEG recordings, 256 points.
    Eeg,
}

impl Domain {
    /// All four domains, in the order the paper's figures list them.
    pub const ALL: [Domain; 4] = [Domain::RandomWalk, Domain::TexMex, Domain::Eeg, Domain::Dna];

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Domain::RandomWalk => "RandomWalk",
            Domain::TexMex => "TexMex",
            Domain::Dna => "DNA",
            Domain::Eeg => "EEG",
        }
    }

    /// The per-domain series length used by the paper.
    pub fn series_len(&self) -> usize {
        match self {
            Domain::RandomWalk => RANDOMWALK_LEN,
            Domain::TexMex => SIFT_LEN,
            Domain::Dna => DNA_LEN,
            Domain::Eeg => EEG_LEN,
        }
    }

    /// Generates `n` series of this domain, deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        match self {
            Domain::RandomWalk => RandomWalkGenerator::new(RANDOMWALK_LEN).generate(n, seed),
            Domain::TexMex => SiftGenerator::new(SIFT_LEN).generate(n, seed),
            Domain::Dna => DnaGenerator::new(DNA_LEN).generate(n, seed),
            Domain::Eeg => EegGenerator::new(EEG_LEN).generate(n, seed),
        }
    }
}

/// Samples a standard normal via the Box-Muller transform.
///
/// Implemented locally so the crate stays within the approved dependency set
/// (`rand_distr` is not used).
#[inline]
pub fn gauss(rng: &mut StdRng) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Selects `count` query series uniformly at random from `ds` (the paper's
/// query workload: "query objects are randomly selected from the entire
/// dataset"), returning their ids.
pub fn query_workload(ds: &Dataset, count: usize, seed: u64) -> Vec<u64> {
    assert!(
        ds.num_series() > 0,
        "cannot draw queries from an empty dataset"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| rng.random_range(0..ds.num_series() as u64))
        .collect()
}

/// Selects `count` query series like [`query_workload`], then perturbs each
/// with Gaussian noise of relative magnitude `noise` so queries are *near*
/// dataset members without being exact copies. Useful for harder workloads.
pub fn noisy_query_workload(ds: &Dataset, count: usize, noise: f64, seed: u64) -> Vec<Vec<f32>> {
    let ids = query_workload(ds, count, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    ids.into_iter()
        .map(|id| {
            ds.get(id)
                .iter()
                .map(|&v| (v as f64 + noise * gauss(&mut rng)) as f32)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znorm::is_znormalized;

    #[test]
    fn all_domains_generate_requested_shape() {
        for d in Domain::ALL {
            let ds = d.generate(10, 42);
            assert_eq!(ds.num_series(), 10, "{}", d.name());
            assert_eq!(ds.series_len(), d.series_len(), "{}", d.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for d in Domain::ALL {
            let a = d.generate(5, 7);
            let b = d.generate(5, 7);
            assert_eq!(a, b, "{}", d.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Domain::RandomWalk.generate(3, 1);
        let b = Domain::RandomWalk.generate(3, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_series_are_znormalized() {
        for d in Domain::ALL {
            let ds = d.generate(8, 11);
            for (id, v) in ds.iter() {
                assert!(
                    is_znormalized(v, 1e-3),
                    "{} series {} not z-normalised",
                    d.name(),
                    id
                );
            }
        }
    }

    #[test]
    fn gauss_has_roughly_standard_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn query_workload_ids_are_in_range() {
        let ds = Domain::Eeg.generate(20, 3);
        let q = query_workload(&ds, 50, 4);
        assert_eq!(q.len(), 50);
        assert!(q.iter().all(|&id| id < 20));
    }

    #[test]
    fn noisy_queries_have_right_length_and_differ_from_source() {
        let ds = Domain::TexMex.generate(10, 5);
        let qs = noisy_query_workload(&ds, 4, 0.1, 6);
        assert_eq!(qs.len(), 4);
        for q in &qs {
            assert_eq!(q.len(), ds.series_len());
        }
    }

    #[test]
    fn domain_names_are_stable() {
        assert_eq!(Domain::RandomWalk.name(), "RandomWalk");
        assert_eq!(Domain::TexMex.name(), "TexMex");
        assert_eq!(Domain::Dna.name(), "DNA");
        assert_eq!(Domain::Eeg.name(), "EEG");
    }
}
