//! Seizure EEG generator.
//!
//! The paper's EEG dataset contains 400 Hz recordings from epileptic dogs and
//! humans, split into 256-point series. EEG morphology that matters for the
//! index: a band-limited oscillatory background (alpha/theta-like rhythms,
//! making series far smoother than white noise) and a minority of
//! high-amplitude, higher-frequency *ictal* (seizure) segments that form
//! their own tight region of the space.
//!
//! The generator synthesises a sum of low-frequency sinusoids with random
//! phase/amplitude plus pink-ish noise; with probability [`SEIZURE_PROB`]
//! a burst regime with larger amplitude and faster spiking is overlaid.

use super::{gauss, SeriesGenerator};
use crate::znorm::znormalize_in_place;
use rand::rngs::StdRng;
use rand::RngExt;

/// Fraction of series containing a seizure burst.
pub const SEIZURE_PROB: f64 = 0.15;

/// Generator of seizure-EEG-like series.
#[derive(Debug, Clone)]
pub struct EegGenerator {
    len: usize,
}

impl EegGenerator {
    /// Creates a generator of `len`-point EEG series.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "series length must be positive");
        Self { len }
    }
}

/// Number of latent patient-state profiles. Recordings from the same
/// subject/state repeat morphology, which is what makes kNN meaningful on
/// real EEG corpora; the palette reproduces that repetition.
pub const EEG_STATES: usize = 48;

impl EegGenerator {
    /// Deterministic palette of background-rhythm profiles (3 sinusoid
    /// components each) shared by all datasets from this generator.
    fn state_palette() -> Vec<[(f64, f64, f64); 3]> {
        use rand::SeedableRng;
        let mut prng = StdRng::seed_from_u64(0xEE61_57A7E);
        (0..EEG_STATES)
            .map(|_| {
                [0, 1, 2].map(|_| {
                    let freq = 2.0 + 6.0 * prng.random::<f64>(); // cycles/series
                    let amp = 0.5 + prng.random::<f64>();
                    let phase = std::f64::consts::TAU * prng.random::<f64>();
                    (freq, amp, phase)
                })
            })
            .collect()
    }
}

impl SeriesGenerator for EegGenerator {
    fn series_len(&self) -> usize {
        self.len
    }

    fn fill(&self, rng: &mut StdRng, out: &mut [f32]) {
        let n = self.len as f64;
        // Background rhythm: a latent patient-state profile, slightly
        // perturbed per series (recordings of one state repeat morphology).
        let palette = Self::state_palette();
        let state = palette[rng.random_range(0..palette.len())];
        let comps: Vec<(f64, f64, f64)> = state
            .iter()
            .map(|&(f, a, p)| {
                (
                    f * (1.0 + 0.02 * gauss(rng)),
                    a * (1.0 + 0.05 * gauss(rng)),
                    p + 0.05 * gauss(rng),
                )
            })
            .collect();
        let seizure = rng.random::<f64>() < SEIZURE_PROB;
        let (burst_start, burst_len, burst_freq, burst_amp) = if seizure {
            let bl = self.len / 3 + rng.random_range(0..self.len / 3);
            (
                rng.random_range(0..self.len.saturating_sub(bl).max(1)),
                bl,
                16.0 + 8.0 * rng.random::<f64>(),
                3.0 + 2.0 * rng.random::<f64>(),
            )
        } else {
            (0, 0, 0.0, 0.0)
        };
        // Pink-ish noise via a leaky integrator over white noise.
        let mut pink = 0.0f64;
        for (i, v) in out.iter_mut().enumerate() {
            let t = i as f64 / n;
            let mut x = 0.0f64;
            for &(f, a, p) in &comps {
                x += a * (std::f64::consts::TAU * f * t + p).sin();
            }
            pink = 0.9 * pink + 0.3 * gauss(rng);
            x += pink;
            if seizure && i >= burst_start && i < burst_start + burst_len {
                x += burst_amp * (std::f64::consts::TAU * burst_freq * t).sin();
            }
            *v = x as f32;
        }
        znormalize_in_place(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znorm::is_znormalized;
    use rand::SeedableRng;

    #[test]
    fn output_is_znormalized() {
        let g = EegGenerator::new(256);
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = vec![0.0; 256];
        g.fill(&mut rng, &mut buf);
        assert!(is_znormalized(&buf, 1e-3));
    }

    #[test]
    fn background_is_band_limited() {
        // Mean |first difference| of the z-normalised signal must sit well
        // below white noise (~1.1): EEG rhythms are smooth.
        let g = EegGenerator::new(256);
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = vec![0.0; 256];
        let mut mad = 0.0f64;
        const REPS: usize = 16;
        for _ in 0..REPS {
            g.fill(&mut rng, &mut buf);
            mad += buf
                .windows(2)
                .map(|w| (w[1] - w[0]).abs() as f64)
                .sum::<f64>()
                / ((buf.len() - 1) as f64 * REPS as f64);
        }
        assert!(mad < 0.8, "EEG looks like white noise: {mad}");
    }

    #[test]
    fn some_series_contain_bursts() {
        // Across many draws the fraction of high-kurtosis series should be
        // in the rough vicinity of SEIZURE_PROB.
        let g = EegGenerator::new(256);
        let ds = g.generate(200, 8);
        let mut bursty = 0usize;
        for (_, v) in ds.iter() {
            let m4: f64 = v.iter().map(|&x| (x as f64).powi(4)).sum::<f64>() / v.len() as f64;
            // kurtosis of a pure sinusoid is 1.5, Gaussian 3.0; bursts push
            // the max amplitude and the tails up.
            if m4 > 3.2 {
                bursty += 1;
            }
        }
        assert!(bursty > 0, "no seizure-like series generated");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = EegGenerator::new(128);
        assert_eq!(g.generate(4, 20), g.generate(4, 20));
    }
}
