//! TexMex / SIFT-like feature-vector generator.
//!
//! The TexMex corpus contains SIFT descriptors: 128-dimensional histograms of
//! local image gradients. Two properties matter for index behaviour and are
//! reproduced here: the vectors are **strongly clustered** (descriptors of
//! similar patches repeat across images — this is exactly why pivot/Voronoi
//! methods shine on TexMex) and individual dimensions are **non-negative and
//! heavy-tailed** before normalisation.
//!
//! The generator draws a fixed palette of cluster centres from a Dirichlet-
//! ish process, then emits each vector as `centre + intra-cluster noise`,
//! z-normalised like the rest of the pipeline.

use super::{gauss, SeriesGenerator};
use crate::znorm::znormalize_in_place;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Default number of latent descriptor clusters.
pub const DEFAULT_CLUSTERS: usize = 64;

/// Generator of clustered SIFT-like descriptor series.
#[derive(Debug, Clone)]
pub struct SiftGenerator {
    len: usize,
    clusters: usize,
    /// Intra-cluster noise scale relative to centre magnitude.
    spread: f64,
}

impl SiftGenerator {
    /// Creates a generator of `len`-dimensional descriptors with the default
    /// cluster count.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "series length must be positive");
        Self {
            len,
            clusters: DEFAULT_CLUSTERS,
            spread: 0.35,
        }
    }

    /// Overrides the number of latent clusters.
    pub fn with_clusters(mut self, clusters: usize) -> Self {
        assert!(clusters > 0, "cluster count must be positive");
        self.clusters = clusters;
        self
    }

    /// Overrides the intra-cluster spread (0 = duplicates of the centres).
    pub fn with_spread(mut self, spread: f64) -> Self {
        assert!(spread >= 0.0, "spread must be non-negative");
        self.spread = spread;
        self
    }

    /// Deterministically materialises the cluster-centre palette for a seed.
    fn centres(&self, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.clusters)
            .map(|_| {
                (0..self.len)
                    // |N(0,1)|^2 gives non-negative, heavy-tailed magnitudes
                    // like gradient-histogram bins.
                    .map(|_| {
                        let g = gauss(&mut rng);
                        g * g
                    })
                    .collect()
            })
            .collect()
    }
}

impl SeriesGenerator for SiftGenerator {
    fn series_len(&self) -> usize {
        self.len
    }

    fn fill(&self, rng: &mut StdRng, out: &mut [f32]) {
        // The palette must be a pure function of the generator, not of the
        // per-dataset RNG stream position, so it is derived from a fixed
        // internal seed: every dataset produced by this generator shares one
        // cluster geometry, and membership is driven by the caller's RNG.
        let centres = self.centres(0xC1D0_5EED);
        let c = rng.random_range(0..centres.len());
        let centre = &centres[c];
        for (v, &mu) in out.iter_mut().zip(centre.iter()) {
            let noisy = mu + self.spread * mu.max(0.05) * gauss(rng);
            *v = noisy.max(0.0) as f32;
        }
        znormalize_in_place(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::ed;
    use crate::znorm::is_znormalized;

    #[test]
    fn output_is_znormalized() {
        let g = SiftGenerator::new(128);
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![0.0; 128];
        g.fill(&mut rng, &mut buf);
        assert!(is_znormalized(&buf, 1e-3));
    }

    #[test]
    fn vectors_are_clustered() {
        // With 8 clusters and many points, the nearest neighbour of most
        // points is far closer than the average pairwise distance.
        let g = SiftGenerator::new(64).with_clusters(8);
        let ds = g.generate(120, 9);
        let mut nn = 0.0f64;
        let mut avg = 0.0f64;
        let mut pairs = 0usize;
        for i in 0..ds.num_series() {
            let mut best = f64::INFINITY;
            for j in 0..ds.num_series() {
                if i == j {
                    continue;
                }
                let d = ed(ds.get(i as u64), ds.get(j as u64));
                avg += d;
                pairs += 1;
                if d < best {
                    best = d;
                }
            }
            nn += best;
        }
        nn /= ds.num_series() as f64;
        avg /= pairs as f64;
        assert!(
            nn < 0.5 * avg,
            "no cluster structure: mean-NN {nn:.3} vs mean-pair {avg:.3}"
        );
    }

    #[test]
    fn spread_zero_duplicates_centres() {
        let g = SiftGenerator::new(32).with_clusters(2).with_spread(0.0);
        let ds = g.generate(40, 1);
        // With only 2 clusters and zero spread there are at most 2 distinct
        // z-normalised shapes.
        let mut distinct: Vec<Vec<f32>> = Vec::new();
        for (_, v) in ds.iter() {
            if !distinct
                .iter()
                .any(|d| d.iter().zip(v.iter()).all(|(a, b)| (a - b).abs() < 1e-5))
            {
                distinct.push(v.to_vec());
            }
        }
        assert!(distinct.len() <= 2, "found {} shapes", distinct.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clusters_rejected() {
        SiftGenerator::new(8).with_clusters(0);
    }
}
