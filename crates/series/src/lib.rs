//! # climber-series
//!
//! Data-series substrate for the CLIMBER reproduction.
//!
//! This crate owns everything that exists *below* the index: the data-series
//! model of the paper (Definitions 1-4), Euclidean distance kernels,
//! z-normalisation, the four synthetic dataset generators standing in for the
//! paper's evaluation corpora (RandomWalk, TexMex/SIFT, DNA, seizure EEG),
//! exact ground-truth computation, recall scoring, bounded top-k selection,
//! sampling utilities, and a small binary dataset I/O format.
//!
//! Series values are `f32` (accumulated in `f64` inside distance kernels);
//! this halves the memory footprint of large in-memory datasets, which is
//! what lets the scaled-down experiments still run "big" workloads.

pub mod dataset;
pub mod distance;
pub mod gen;
pub mod ground_truth;
pub mod io;
pub mod kernels;
pub mod recall;
pub mod resample;
pub mod sampling;
pub mod series;
pub mod topk;
pub mod znorm;

pub use dataset::Dataset;
pub use distance::{ed, ed_early_abandon, sq_ed};
pub use ground_truth::{exact_knn, exact_knn_batch};
pub use recall::recall;
pub use series::{DataSeries, SeriesId};
pub use topk::TopK;

/// Identifier of a stored series inside a dataset (dense, 0-based).
pub type Neighbor = (SeriesId, f64);
