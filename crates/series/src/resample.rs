//! Linear resampling of data series.
//!
//! §II notes that PAA/SAX-family representations "allow for queries shorter
//! than the length on which the index is built" — unlike DFT/wavelets. The
//! standard whole-series mechanism is to bring the query to the indexed
//! length; this module provides deterministic linear interpolation used by
//! `Climber::knn_resampled`.

/// Linearly resamples `values` to `target_len` points.
///
/// Endpoints are preserved; interior points are interpolated at uniform
/// fractional positions. A single-point input is replicated.
///
/// # Panics
/// If either length is zero.
pub fn resample_linear(values: &[f32], target_len: usize) -> Vec<f32> {
    assert!(!values.is_empty(), "cannot resample an empty series");
    assert!(target_len > 0, "target length must be positive");
    let n = values.len();
    if n == target_len {
        return values.to_vec();
    }
    if n == 1 {
        return vec![values[0]; target_len];
    }
    let mut out = Vec::with_capacity(target_len);
    let scale = (n - 1) as f64 / (target_len - 1).max(1) as f64;
    for i in 0..target_len {
        let pos = i as f64 * scale;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        let v = values[lo] as f64 * (1.0 - frac) + values[hi] as f64 * frac;
        out.push(v as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_lengths_match() {
        let v = vec![1.0f32, 2.0, 3.0];
        assert_eq!(resample_linear(&v, 3), v);
    }

    #[test]
    fn endpoints_are_preserved() {
        let v = vec![5.0f32, 1.0, -2.0, 8.0];
        for target in [2usize, 3, 7, 16] {
            let r = resample_linear(&v, target);
            assert_eq!(r.len(), target);
            assert_eq!(r[0], 5.0);
            assert!((r[target - 1] - 8.0).abs() < 1e-6);
        }
    }

    #[test]
    fn upsampling_a_line_stays_linear() {
        let v = vec![0.0f32, 1.0, 2.0, 3.0];
        let r = resample_linear(&v, 7);
        for (i, x) in r.iter().enumerate() {
            let want = 3.0 * i as f32 / 6.0;
            assert!((x - want).abs() < 1e-5, "{r:?}");
        }
    }

    #[test]
    fn downsampling_preserves_monotonicity() {
        let v: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let r = resample_linear(&v, 10);
        for w in r.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn single_point_replicates() {
        assert_eq!(resample_linear(&[7.0], 4), vec![7.0; 4]);
    }

    #[test]
    fn target_one_takes_first_point() {
        let r = resample_linear(&[3.0, 9.0, 27.0], 1);
        assert_eq!(r, vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        resample_linear(&[], 5);
    }

    #[test]
    #[should_panic(expected = "target length")]
    fn zero_target_panics() {
        resample_linear(&[1.0], 0);
    }
}
