//! Runtime-dispatched SIMD distance kernels, bit-identical to scalar.
//!
//! This module holds the repo's only `unsafe` code: AVX2 and SSE paths for
//! the hot inner loops (`sq_ed`, `ed_early_abandon`, f32 segment sums for
//! PAA, and f64 squared distances for pivot space). The contract that makes
//! them safe to dispatch freely is **bit-identity**: every tier reduces its
//! lane accumulators in exactly the same pairwise order as the scalar
//! reference, and no tier uses fused multiply-add (FMA changes rounding).
//! A query answered on an AVX2 host is therefore byte-for-byte the query
//! answered on a scalar host — dispatch is a pure speed knob, never a
//! semantics knob.
//!
//! ## Lane layout
//!
//! The f32 kernels accumulate in chunks of 8 with one `f64` accumulator per
//! lane, reduced as `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`; the f64 kernel
//! uses chunks of 4 reduced as `(l0+l2)+(l1+l3)`. The SIMD tiers materialise
//! the same lanes in vector registers:
//!
//! * AVX2: lanes 0-3 in one `__m256d`, lanes 4-7 in another; one
//!   `_mm256_add_pd` yields `[l0+l4, l1+l5, l2+l6, l3+l7]` and the final
//!   scalar combine `(s0+s2)+(s1+s3)` reproduces the reference tree.
//! * SSE: four `__m128d` accumulators `[l0,l1] [l2,l3] [l4,l5] [l6,l7]`;
//!   `(A+C) + (B+D)` yields the same vector, then `t0+t1`.
//!
//! Tails shorter than a chunk are always summed sequentially in scalar code,
//! identically across tiers.
//!
//! ## Dispatch
//!
//! [`detect`] probes CPU features once (cached in an atomic); [`force`] is a
//! test hook that pins the auto-dispatched entry points to a specific tier.
//! Forcing is a process-global toggle, which is race-safe precisely because
//! tiers never disagree on results.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// A kernel implementation tier. Ordered from most portable to fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dispatch {
    /// Portable Rust, the reference implementation. Always available.
    Scalar,
    /// 128-bit SSE path (gated on `sse4.1` detection; x86-64 only).
    Sse41,
    /// 256-bit AVX path (gated on `avx2` detection; x86-64 only).
    Avx2,
}

impl Dispatch {
    /// Human-readable feature name, as printed by benches and CI logs.
    pub fn name(self) -> &'static str {
        match self {
            Dispatch::Scalar => "scalar",
            Dispatch::Sse41 => "sse4.1",
            Dispatch::Avx2 => "avx2",
        }
    }

    /// Every tier this host can execute, in ascending speed order.
    /// Always contains at least [`Dispatch::Scalar`].
    pub fn available() -> Vec<Dispatch> {
        let best = detect();
        [Dispatch::Scalar, Dispatch::Sse41, Dispatch::Avx2]
            .into_iter()
            .filter(|t| *t <= best)
            .collect()
    }
}

const TIER_UNSET: u8 = 0;
const TIER_SCALAR: u8 = 1;
const TIER_SSE41: u8 = 2;
const TIER_AVX2: u8 = 3;

/// Cached result of CPU-feature probing (0 = not yet probed).
static DETECTED: AtomicU8 = AtomicU8::new(TIER_UNSET);
/// Test hook: a forced tier for the auto-dispatched entry points (0 = none).
static FORCED: AtomicU8 = AtomicU8::new(TIER_UNSET);

fn tier_of(code: u8) -> Dispatch {
    match code {
        TIER_SSE41 => Dispatch::Sse41,
        TIER_AVX2 => Dispatch::Avx2,
        _ => Dispatch::Scalar,
    }
}

fn code_of(tier: Dispatch) -> u8 {
    match tier {
        Dispatch::Scalar => TIER_SCALAR,
        Dispatch::Sse41 => TIER_SSE41,
        Dispatch::Avx2 => TIER_AVX2,
    }
}

/// The best tier this host supports, probed once and cached.
pub fn detect() -> Dispatch {
    let cached = DETECTED.load(Ordering::Relaxed);
    if cached != TIER_UNSET {
        return tier_of(cached);
    }
    #[cfg(target_arch = "x86_64")]
    let probed = if std::arch::is_x86_feature_detected!("avx2") {
        Dispatch::Avx2
    } else if std::arch::is_x86_feature_detected!("sse4.1") {
        Dispatch::Sse41
    } else {
        Dispatch::Scalar
    };
    #[cfg(not(target_arch = "x86_64"))]
    let probed = Dispatch::Scalar;
    DETECTED.store(code_of(probed), Ordering::Relaxed);
    probed
}

/// Pins (`Some`) or releases (`None`) the tier used by the auto-dispatched
/// entry points. Test hook for exercising lower tiers on capable hosts.
///
/// # Panics
/// If the requested tier is not supported by this host (executing it would
/// be undefined behaviour, so the hook refuses).
pub fn force(tier: Option<Dispatch>) {
    match tier {
        None => FORCED.store(TIER_UNSET, Ordering::Relaxed),
        Some(t) => {
            assert!(
                t <= detect(),
                "cannot force {:?}: host only supports up to {:?}",
                t,
                detect()
            );
            FORCED.store(code_of(t), Ordering::Relaxed);
        }
    }
}

/// The tier the auto-dispatched entry points use right now: the forced tier
/// if one is pinned, otherwise the detected best.
pub fn current() -> Dispatch {
    let forced = FORCED.load(Ordering::Relaxed);
    if forced != TIER_UNSET {
        tier_of(forced)
    } else {
        detect()
    }
}

// ---------------------------------------------------------------------------
// Scalar reference implementations
// ---------------------------------------------------------------------------

/// Reduces the 8 lane accumulators in the fixed pairwise order shared by
/// every tier.
#[inline]
pub(crate) fn combine_lanes(l: &[f64; 8]) -> f64 {
    ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]))
}

/// Reduces the 4 lane accumulators of the f64 kernel in fixed order.
#[inline]
fn combine_lanes4(l: &[f64; 4]) -> f64 {
    (l[0] + l[2]) + (l[1] + l[3])
}

#[inline]
fn sq_ed_scalar(x: &[f32], y: &[f32]) -> f64 {
    let mut lanes = [0.0f64; 8];
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact(8);
    for (cx, cy) in (&mut xc).zip(&mut yc) {
        for i in 0..8 {
            let d = f64::from(cx[i]) - f64::from(cy[i]);
            lanes[i] += d * d;
        }
    }
    let mut acc = combine_lanes(&lanes);
    for (a, b) in xc.remainder().iter().zip(yc.remainder().iter()) {
        let d = f64::from(*a) - f64::from(*b);
        acc += d * d;
    }
    acc
}

#[inline]
fn ed_early_abandon_scalar(x: &[f32], y: &[f32], sq_bound: f64) -> Option<f64> {
    let mut lanes = [0.0f64; 8];
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact(8);
    for (i, (cx, cy)) in (&mut xc).zip(&mut yc).enumerate() {
        for j in 0..8 {
            let d = f64::from(cx[j]) - f64::from(cy[j]);
            lanes[j] += d * d;
        }
        // Check after every second 8-chunk (16 readings). Combining the
        // lanes for the check does not disturb their running values.
        if i % 2 == 1 && combine_lanes(&lanes) > sq_bound {
            return None;
        }
    }
    let mut acc = combine_lanes(&lanes);
    for (a, b) in xc.remainder().iter().zip(yc.remainder().iter()) {
        let d = f64::from(*a) - f64::from(*b);
        acc += d * d;
    }
    if acc > sq_bound {
        return None;
    }
    Some(acc)
}

#[inline]
fn sum_f32_scalar(v: &[f32]) -> f64 {
    let mut lanes = [0.0f64; 8];
    let mut vc = v.chunks_exact(8);
    for c in &mut vc {
        for i in 0..8 {
            lanes[i] += f64::from(c[i]);
        }
    }
    let mut acc = combine_lanes(&lanes);
    for a in vc.remainder() {
        acc += f64::from(*a);
    }
    acc
}

#[inline]
fn sq_dist_f64_scalar(a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for i in 0..4 {
            let d = ca[i] - cb[i];
            lanes[i] += d * d;
        }
    }
    let mut acc = combine_lanes4(&lanes);
    for (x, y) in ac.remainder().iter().zip(bc.remainder().iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

// ---------------------------------------------------------------------------
// x86-64 SIMD tiers
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2 and SSE lanes. Every function here upholds the module's
    //! bit-identity contract: same lane layout, same combine tree, no FMA.
    //! Loads are all bounds-respecting: 256-bit f32 loads cover exactly one
    //! 8-chunk, and the SSE f32 path loads 64-bit pairs so the final chunk
    //! never reads past the slice.

    use core::arch::x86_64::*;

    /// Combines AVX2 accumulators `[l0..l3]` and `[l4..l7]` in the scalar
    /// reference order.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn combine_avx2(lo: __m256d, hi: __m256d) -> f64 {
        let s = _mm256_add_pd(lo, hi); // [l0+l4, l1+l5, l2+l6, l3+l7]
        let mut out = [0.0f64; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), s);
        (out[0] + out[2]) + (out[1] + out[3])
    }

    /// Combines SSE accumulators `[l0,l1] [l2,l3] [l4,l5] [l6,l7]` in the
    /// scalar reference order.
    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn combine_sse(a: __m128d, b: __m128d, c: __m128d, d: __m128d) -> f64 {
        let sac = _mm_add_pd(a, c); // [l0+l4, l1+l5]
        let sbd = _mm_add_pd(b, d); // [l2+l6, l3+l7]
        let t = _mm_add_pd(sac, sbd); // [(l0+l4)+(l2+l6), (l1+l5)+(l3+l7)]
        let mut out = [0.0f64; 2];
        _mm_storeu_pd(out.as_mut_ptr(), t);
        out[0] + out[1]
    }

    /// Loads two consecutive f32 at `p` widened to f64 — an 8-byte load, so
    /// it stays in bounds even at the very end of a slice.
    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn load2_ps_pd(p: *const f32) -> __m128d {
        _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(p as *const __m128i)))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_ed_avx2(x: &[f32], y: &[f32]) -> f64 {
        let n = x.len();
        let chunks = n / 8;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        for c in 0..chunks {
            let vx = _mm256_loadu_ps(x.as_ptr().add(c * 8));
            let vy = _mm256_loadu_ps(y.as_ptr().add(c * 8));
            let dlo = _mm256_sub_pd(
                _mm256_cvtps_pd(_mm256_castps256_ps128(vx)),
                _mm256_cvtps_pd(_mm256_castps256_ps128(vy)),
            );
            let dhi = _mm256_sub_pd(
                _mm256_cvtps_pd(_mm256_extractf128_ps(vx, 1)),
                _mm256_cvtps_pd(_mm256_extractf128_ps(vy, 1)),
            );
            acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(dlo, dlo));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(dhi, dhi));
        }
        let mut acc = combine_avx2(acc_lo, acc_hi);
        for i in chunks * 8..n {
            let d = f64::from(*x.get_unchecked(i)) - f64::from(*y.get_unchecked(i));
            acc += d * d;
        }
        acc
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn ed_early_abandon_avx2(x: &[f32], y: &[f32], sq_bound: f64) -> Option<f64> {
        let n = x.len();
        let chunks = n / 8;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        for c in 0..chunks {
            let vx = _mm256_loadu_ps(x.as_ptr().add(c * 8));
            let vy = _mm256_loadu_ps(y.as_ptr().add(c * 8));
            let dlo = _mm256_sub_pd(
                _mm256_cvtps_pd(_mm256_castps256_ps128(vx)),
                _mm256_cvtps_pd(_mm256_castps256_ps128(vy)),
            );
            let dhi = _mm256_sub_pd(
                _mm256_cvtps_pd(_mm256_extractf128_ps(vx, 1)),
                _mm256_cvtps_pd(_mm256_extractf128_ps(vy, 1)),
            );
            acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(dlo, dlo));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(dhi, dhi));
            // Same cadence as scalar: every second chunk, strict >.
            if c % 2 == 1 && combine_avx2(acc_lo, acc_hi) > sq_bound {
                return None;
            }
        }
        let mut acc = combine_avx2(acc_lo, acc_hi);
        for i in chunks * 8..n {
            let d = f64::from(*x.get_unchecked(i)) - f64::from(*y.get_unchecked(i));
            acc += d * d;
        }
        if acc > sq_bound {
            return None;
        }
        Some(acc)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_f32_avx2(v: &[f32]) -> f64 {
        let n = v.len();
        let chunks = n / 8;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        for c in 0..chunks {
            let vv = _mm256_loadu_ps(v.as_ptr().add(c * 8));
            acc_lo = _mm256_add_pd(acc_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(vv)));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(vv, 1)));
        }
        let mut acc = combine_avx2(acc_lo, acc_hi);
        for i in chunks * 8..n {
            acc += f64::from(*v.get_unchecked(i));
        }
        acc
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist_f64_avx2(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let chunks = n / 4;
        let mut accv = _mm256_setzero_pd();
        for c in 0..chunks {
            let d = _mm256_sub_pd(
                _mm256_loadu_pd(a.as_ptr().add(c * 4)),
                _mm256_loadu_pd(b.as_ptr().add(c * 4)),
            );
            accv = _mm256_add_pd(accv, _mm256_mul_pd(d, d));
        }
        let mut out = [0.0f64; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), accv);
        let mut acc = (out[0] + out[2]) + (out[1] + out[3]);
        for i in chunks * 4..n {
            let d = *a.get_unchecked(i) - *b.get_unchecked(i);
            acc += d * d;
        }
        acc
    }

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn sq_ed_sse(x: &[f32], y: &[f32]) -> f64 {
        let n = x.len();
        let chunks = n / 8;
        let mut la = _mm_setzero_pd();
        let mut lb = _mm_setzero_pd();
        let mut lc = _mm_setzero_pd();
        let mut ld = _mm_setzero_pd();
        for c in 0..chunks {
            let px = x.as_ptr().add(c * 8);
            let py = y.as_ptr().add(c * 8);
            let d0 = _mm_sub_pd(load2_ps_pd(px), load2_ps_pd(py));
            let d1 = _mm_sub_pd(load2_ps_pd(px.add(2)), load2_ps_pd(py.add(2)));
            let d2 = _mm_sub_pd(load2_ps_pd(px.add(4)), load2_ps_pd(py.add(4)));
            let d3 = _mm_sub_pd(load2_ps_pd(px.add(6)), load2_ps_pd(py.add(6)));
            la = _mm_add_pd(la, _mm_mul_pd(d0, d0));
            lb = _mm_add_pd(lb, _mm_mul_pd(d1, d1));
            lc = _mm_add_pd(lc, _mm_mul_pd(d2, d2));
            ld = _mm_add_pd(ld, _mm_mul_pd(d3, d3));
        }
        let mut acc = combine_sse(la, lb, lc, ld);
        for i in chunks * 8..n {
            let d = f64::from(*x.get_unchecked(i)) - f64::from(*y.get_unchecked(i));
            acc += d * d;
        }
        acc
    }

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn ed_early_abandon_sse(x: &[f32], y: &[f32], sq_bound: f64) -> Option<f64> {
        let n = x.len();
        let chunks = n / 8;
        let mut la = _mm_setzero_pd();
        let mut lb = _mm_setzero_pd();
        let mut lc = _mm_setzero_pd();
        let mut ld = _mm_setzero_pd();
        for c in 0..chunks {
            let px = x.as_ptr().add(c * 8);
            let py = y.as_ptr().add(c * 8);
            let d0 = _mm_sub_pd(load2_ps_pd(px), load2_ps_pd(py));
            let d1 = _mm_sub_pd(load2_ps_pd(px.add(2)), load2_ps_pd(py.add(2)));
            let d2 = _mm_sub_pd(load2_ps_pd(px.add(4)), load2_ps_pd(py.add(4)));
            let d3 = _mm_sub_pd(load2_ps_pd(px.add(6)), load2_ps_pd(py.add(6)));
            la = _mm_add_pd(la, _mm_mul_pd(d0, d0));
            lb = _mm_add_pd(lb, _mm_mul_pd(d1, d1));
            lc = _mm_add_pd(lc, _mm_mul_pd(d2, d2));
            ld = _mm_add_pd(ld, _mm_mul_pd(d3, d3));
            if c % 2 == 1 && combine_sse(la, lb, lc, ld) > sq_bound {
                return None;
            }
        }
        let mut acc = combine_sse(la, lb, lc, ld);
        for i in chunks * 8..n {
            let d = f64::from(*x.get_unchecked(i)) - f64::from(*y.get_unchecked(i));
            acc += d * d;
        }
        if acc > sq_bound {
            return None;
        }
        Some(acc)
    }

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn sum_f32_sse(v: &[f32]) -> f64 {
        let n = v.len();
        let chunks = n / 8;
        let mut la = _mm_setzero_pd();
        let mut lb = _mm_setzero_pd();
        let mut lc = _mm_setzero_pd();
        let mut ld = _mm_setzero_pd();
        for c in 0..chunks {
            let p = v.as_ptr().add(c * 8);
            la = _mm_add_pd(la, load2_ps_pd(p));
            lb = _mm_add_pd(lb, load2_ps_pd(p.add(2)));
            lc = _mm_add_pd(lc, load2_ps_pd(p.add(4)));
            ld = _mm_add_pd(ld, load2_ps_pd(p.add(6)));
        }
        let mut acc = combine_sse(la, lb, lc, ld);
        for i in chunks * 8..n {
            acc += f64::from(*v.get_unchecked(i));
        }
        acc
    }

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn sq_dist_f64_sse(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let chunks = n / 4;
        let mut la = _mm_setzero_pd();
        let mut lb = _mm_setzero_pd();
        for c in 0..chunks {
            let pa = a.as_ptr().add(c * 4);
            let pb = b.as_ptr().add(c * 4);
            let d0 = _mm_sub_pd(_mm_loadu_pd(pa), _mm_loadu_pd(pb));
            let d1 = _mm_sub_pd(_mm_loadu_pd(pa.add(2)), _mm_loadu_pd(pb.add(2)));
            la = _mm_add_pd(la, _mm_mul_pd(d0, d0));
            lb = _mm_add_pd(lb, _mm_mul_pd(d1, d1));
        }
        let t = _mm_add_pd(la, lb); // [l0+l2, l1+l3]
        let mut out = [0.0f64; 2];
        _mm_storeu_pd(out.as_mut_ptr(), t);
        let mut acc = out[0] + out[1];
        for i in chunks * 4..n {
            let d = *a.get_unchecked(i) - *b.get_unchecked(i);
            acc += d * d;
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Tier-explicit entry points
// ---------------------------------------------------------------------------

/// [`sq_ed`] on an explicit tier.
///
/// # Panics
/// If the slices differ in length, or `tier` is unsupported on this host.
#[inline]
pub fn sq_ed_with(tier: Dispatch, x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "ED requires equal-length series");
    match tier {
        Dispatch::Scalar => sq_ed_scalar(x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `force`/`current` only hand out host-supported tiers;
        // explicit callers are checked here before entering SIMD code.
        Dispatch::Sse41 => {
            assert_supported(tier);
            unsafe { x86::sq_ed_sse(x, y) }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => {
            assert_supported(tier);
            unsafe { x86::sq_ed_avx2(x, y) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => unsupported(tier),
    }
}

/// [`ed_early_abandon`] on an explicit tier.
///
/// # Panics
/// If the slices differ in length, or `tier` is unsupported on this host.
#[inline]
pub fn ed_early_abandon_with(tier: Dispatch, x: &[f32], y: &[f32], sq_bound: f64) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "ED requires equal-length series");
    match tier {
        Dispatch::Scalar => ed_early_abandon_scalar(x, y, sq_bound),
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse41 => {
            assert_supported(tier);
            unsafe { x86::ed_early_abandon_sse(x, y, sq_bound) }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => {
            assert_supported(tier);
            unsafe { x86::ed_early_abandon_avx2(x, y, sq_bound) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => unsupported(tier),
    }
}

/// [`sum_f32`] on an explicit tier.
///
/// # Panics
/// If `tier` is unsupported on this host.
#[inline]
pub fn sum_f32_with(tier: Dispatch, v: &[f32]) -> f64 {
    match tier {
        Dispatch::Scalar => sum_f32_scalar(v),
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse41 => {
            assert_supported(tier);
            unsafe { x86::sum_f32_sse(v) }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => {
            assert_supported(tier);
            unsafe { x86::sum_f32_avx2(v) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => unsupported(tier),
    }
}

/// [`sq_dist_f64`] on an explicit tier.
///
/// # Panics
/// If the slices differ in length, or `tier` is unsupported on this host.
#[inline]
pub fn sq_dist_f64_with(tier: Dispatch, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared distance requires equal lengths");
    match tier {
        Dispatch::Scalar => sq_dist_f64_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse41 => {
            assert_supported(tier);
            unsafe { x86::sq_dist_f64_sse(a, b) }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => {
            assert_supported(tier);
            unsafe { x86::sq_dist_f64_avx2(a, b) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => unsupported(tier),
    }
}

#[inline]
fn assert_supported(tier: Dispatch) {
    assert!(
        tier <= detect(),
        "kernel tier {:?} not supported on this host (best: {:?})",
        tier,
        detect()
    );
}

#[cfg(not(target_arch = "x86_64"))]
fn unsupported(tier: Dispatch) -> ! {
    panic!("kernel tier {tier:?} not supported on this architecture")
}

// ---------------------------------------------------------------------------
// Auto-dispatched entry points
// ---------------------------------------------------------------------------

/// Below this length the auto-dispatched entry points route straight to
/// the scalar tier: the vector paths' fixed costs (dispatch load,
/// accumulator setup, lane combine) exceed their per-element win on
/// short inputs like PAA segments and pivot-space points. Because every
/// tier is bit-identical, the cutoff is unobservable in results.
const SIMD_MIN_LEN: usize = 32;

/// Squared Euclidean distance on the current tier.
#[inline]
pub fn sq_ed(x: &[f32], y: &[f32]) -> f64 {
    if x.len() < SIMD_MIN_LEN {
        sq_ed_with(Dispatch::Scalar, x, y)
    } else {
        sq_ed_with(current(), x, y)
    }
}

/// Early-abandoning squared Euclidean distance on the current tier.
#[inline]
pub fn ed_early_abandon(x: &[f32], y: &[f32], sq_bound: f64) -> Option<f64> {
    if x.len() < SIMD_MIN_LEN {
        ed_early_abandon_with(Dispatch::Scalar, x, y, sq_bound)
    } else {
        ed_early_abandon_with(current(), x, y, sq_bound)
    }
}

/// Sum of an f32 slice accumulated in f64 lanes on the current tier —
/// the segment-mean kernel behind PAA extraction.
#[inline]
pub fn sum_f32(v: &[f32]) -> f64 {
    if v.len() < SIMD_MIN_LEN {
        sum_f32_with(Dispatch::Scalar, v)
    } else {
        sum_f32_with(current(), v)
    }
}

/// Squared Euclidean distance between f64 points on the current tier —
/// the pivot-space kernel behind signature extraction.
#[inline]
pub fn sq_dist_f64(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < SIMD_MIN_LEN {
        sq_dist_f64_with(Dispatch::Scalar, a, b)
    } else {
        sq_dist_f64_with(current(), a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(len: usize, salt: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(salt);
                ((x % 1000) as f32 - 500.0) / 37.0
            })
            .collect()
    }

    #[test]
    fn detection_is_cached_and_consistent() {
        let first = detect();
        assert_eq!(detect(), first);
        assert!(Dispatch::available().contains(&Dispatch::Scalar));
        assert!(Dispatch::available().contains(&first));
    }

    #[test]
    fn every_available_tier_matches_scalar_bitwise() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 64, 100, 255, 256] {
            let x = series(len, 1);
            let y = series(len, 2);
            let want = sq_ed_with(Dispatch::Scalar, &x, &y);
            let want_sum = sum_f32_with(Dispatch::Scalar, &x);
            for tier in Dispatch::available() {
                assert_eq!(
                    sq_ed_with(tier, &x, &y).to_bits(),
                    want.to_bits(),
                    "sq_ed {tier:?} len {len}"
                );
                assert_eq!(
                    sum_f32_with(tier, &x).to_bits(),
                    want_sum.to_bits(),
                    "sum_f32 {tier:?} len {len}"
                );
            }
        }
    }

    #[test]
    fn force_pins_and_releases_the_auto_path() {
        force(Some(Dispatch::Scalar));
        assert_eq!(current(), Dispatch::Scalar);
        force(None);
        assert_eq!(current(), detect());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        sq_ed(&[1.0], &[1.0, 2.0]);
    }
}
