//! Z-normalisation of data series.
//!
//! Data-series indexes (SAX/iSAX in particular) assume z-normalised input:
//! each series is shifted to zero mean and scaled to unit variance, so the
//! Gaussian breakpoint tables of `climber-repr` apply. Constant series (zero
//! variance) normalise to all-zero, matching common practice (e.g. the UCR
//! suite).

/// Minimum standard deviation below which a series is treated as constant.
pub const EPSILON_STD: f64 = 1e-8;

/// Z-normalises `values` in place: zero mean, unit (population) variance.
///
/// Constant series become all zeros rather than dividing by ~0.
pub fn znormalize_in_place(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let n = values.len() as f64;
    let mean: f64 = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var: f64 = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let std = var.sqrt();
    if std < EPSILON_STD {
        values.iter_mut().for_each(|v| *v = 0.0);
    } else {
        values
            .iter_mut()
            .for_each(|v| *v = ((*v as f64 - mean) / std) as f32);
    }
}

/// Returns a z-normalised copy of `values`.
pub fn znormalize(values: &[f32]) -> Vec<f32> {
    let mut out = values.to_vec();
    znormalize_in_place(&mut out);
    out
}

/// True when the series already has (approximately) zero mean and unit
/// variance, within `tol`.
pub fn is_znormalized(values: &[f32], tol: f64) -> bool {
    if values.is_empty() {
        return true;
    }
    let n = values.len() as f64;
    let mean: f64 = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var: f64 = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    // all-zero (constant input) series also count as normalised
    (mean.abs() < tol && (var - 1.0).abs() < tol) || var < tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_zero_mean_unit_variance() {
        let mut v: Vec<f32> = (0..64).map(|i| (i as f32) * 3.0 + 7.0).collect();
        znormalize_in_place(&mut v);
        assert!(is_znormalized(&v, 1e-4));
    }

    #[test]
    fn constant_series_becomes_zeros() {
        let mut v = vec![42.0f32; 10];
        znormalize_in_place(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_series_is_noop() {
        let mut v: Vec<f32> = vec![];
        znormalize_in_place(&mut v);
        assert!(v.is_empty());
        assert!(is_znormalized(&v, 1e-9));
    }

    #[test]
    fn znormalize_returns_copy() {
        let v = vec![1.0f32, 2.0, 3.0];
        let z = znormalize(&v);
        assert_eq!(v, vec![1.0, 2.0, 3.0]); // original untouched
        assert!(is_znormalized(&z, 1e-5));
    }

    #[test]
    fn idempotent_on_normalized_input() {
        let v = znormalize(&[5.0, -2.0, 0.5, 9.0, -7.0]);
        let w = znormalize(&v);
        for (a, b) in v.iter().zip(w.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn preserves_shape_ordering() {
        // z-normalisation is monotone: ordering of readings is preserved.
        let v = vec![3.0f32, 1.0, 2.0];
        let z = znormalize(&v);
        assert!(z[0] > z[2] && z[2] > z[1]);
    }
}
