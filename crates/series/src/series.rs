//! The data-series model (Definitions 1 and 2 of the paper).

use std::fmt;

/// Dense, 0-based identifier of a data series within a [`crate::Dataset`].
pub type SeriesId = u64;

/// A data series `X = [x1, .., xn]`, an ordered sequence of real values
/// (Definition 1). A series of length `n` is a point in `n`-dimensional
/// space: reading `i` is the value of dimension `i`.
#[derive(Clone, PartialEq)]
pub struct DataSeries {
    /// Identifier of the series within its dataset.
    pub id: SeriesId,
    /// The readings, in order.
    pub values: Vec<f32>,
}

impl DataSeries {
    /// Creates a series from raw readings.
    pub fn new(id: SeriesId, values: Vec<f32>) -> Self {
        Self { id, values }
    }

    /// Length `n = |X|` of the series (its dimensionality).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series holds no readings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean of the readings.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.values.iter().map(|&v| v as f64).sum();
        sum / self.values.len() as f64
    }

    /// Population standard deviation of the readings.
    pub fn std_dev(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var: f64 = self
            .values
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }
}

impl fmt::Debug for DataSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Avoid dumping hundreds of readings in assertion failures.
        let head: Vec<f32> = self.values.iter().take(4).copied().collect();
        write!(
            f,
            "DataSeries(id={}, n={}, head={:?}{})",
            self.id,
            self.values.len(),
            head,
            if self.values.len() > 4 { ", .." } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_emptiness() {
        let s = DataSeries::new(0, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(DataSeries::new(1, vec![]).is_empty());
    }

    #[test]
    fn mean_of_known_values() {
        let s = DataSeries::new(0, vec![1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn std_dev_of_constant_series_is_zero() {
        let s = DataSeries::new(0, vec![5.0; 17]);
        assert!(s.std_dev().abs() < 1e-12);
    }

    #[test]
    fn std_dev_of_known_values() {
        // Population stddev of [2,4,4,4,5,5,7,9] is exactly 2.
        let s = DataSeries::new(0, vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_series_stats_are_zero() {
        let s = DataSeries::new(0, vec![]);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn debug_output_is_truncated() {
        let s = DataSeries::new(3, (0..100).map(|i| i as f32).collect());
        let d = format!("{s:?}");
        assert!(d.contains("id=3"));
        assert!(d.contains("n=100"));
        assert!(d.contains(".."));
        assert!(d.len() < 120);
    }
}
