//! The recall metric of Definition 4:
//! `recall = |S_approx ∩ S_exact| / |S_exact|`.

use crate::series::SeriesId;
use std::collections::HashSet;

/// Recall of an approximate answer set against the exact one (Definition 4).
///
/// Only ids participate; distances are ignored. Returns 1.0 for an empty
/// exact set (nothing to find ⇒ nothing missed).
pub fn recall(approx: &[SeriesId], exact: &[SeriesId]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let exact_set: HashSet<SeriesId> = exact.iter().copied().collect();
    // Intersection is a set operation: duplicate approx ids count once.
    let approx_set: HashSet<SeriesId> = approx.iter().copied().collect();
    let hit = approx_set.intersection(&exact_set).count();
    hit as f64 / exact_set.len() as f64
}

/// Recall computed directly from `(id, dist)` result lists, the shape that
/// query algorithms and [`crate::ground_truth::exact_knn`] return.
pub fn recall_of_results(approx: &[(SeriesId, f64)], exact: &[(SeriesId, f64)]) -> f64 {
    let a: Vec<SeriesId> = approx.iter().map(|&(id, _)| id).collect();
    let e: Vec<SeriesId> = exact.iter().map(|&(id, _)| id).collect();
    recall(&a, &e)
}

/// Mean recall over a batch of query results.
pub fn mean_recall(approx: &[Vec<(SeriesId, f64)>], exact: &[Vec<(SeriesId, f64)>]) -> f64 {
    assert_eq!(
        approx.len(),
        exact.len(),
        "batch sizes differ: {} vs {}",
        approx.len(),
        exact.len()
    );
    if approx.is_empty() {
        return 1.0;
    }
    approx
        .iter()
        .zip(exact.iter())
        .map(|(a, e)| recall_of_results(a, e))
        .sum::<f64>()
        / approx.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recall() {
        assert_eq!(recall(&[1, 2, 3], &[3, 2, 1]), 1.0);
    }

    #[test]
    fn zero_recall() {
        assert_eq!(recall(&[4, 5], &[1, 2]), 0.0);
    }

    #[test]
    fn partial_recall() {
        assert!((recall(&[1, 9, 2, 8], &[1, 2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_exact_set_is_perfect() {
        assert_eq!(recall(&[1, 2], &[]), 1.0);
    }

    #[test]
    fn extra_approx_entries_do_not_exceed_one() {
        assert_eq!(recall(&[1, 2, 3, 4, 5], &[1, 2]), 1.0);
    }

    #[test]
    fn duplicate_approx_ids_not_double_counted() {
        // |{1} ∩ {1,2}| = 1: duplicates on the approx side count once.
        assert!((recall(&[1, 1], &[1, 2]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_of_results_ignores_distances() {
        let a = vec![(1u64, 9.0), (2, 8.0)];
        let e = vec![(1u64, 0.1), (3, 0.2)];
        assert!((recall_of_results(&a, &e) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_recall_averages() {
        let a = vec![vec![(1u64, 0.0)], vec![(9u64, 0.0)]];
        let e = vec![vec![(1u64, 0.0)], vec![(1u64, 0.0)]];
        assert!((mean_recall(&a, &e) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch sizes differ")]
    fn mean_recall_requires_equal_batches() {
        mean_recall(&[vec![]], &[]);
    }
}
