//! Self-healing opens and scrubbing: the recovery surface over the
//! storage layer's quarantine primitives.
//!
//! A standard [`Climber::open`] is strict: the first damaged partition
//! aborts the open with a typed [`OpenError`]. That is the right default
//! for a cold start that can retry from a replica — but a serving node
//! that *is* the replica wants the other trade: open what validates,
//! quarantine what does not, and keep answering queries degraded (with
//! per-shard status, so callers can tell a partial answer from a complete
//! one). [`Climber::open_with`] and [`ShardedClimber::open_with`] select
//! that behaviour per call site via [`RecoveryPolicy`];
//! [`Climber::scrub`] re-verifies every checksum afterwards, re-admitting
//! partitions whose bytes were restored and quarantining fresh damage.
//!
//! [`Climber::open`]: crate::Climber::open
//! [`Climber::open_with`]: crate::Climber::open_with
//! [`Climber::scrub`]: crate::Climber::scrub
//! [`ShardedClimber::open_with`]: crate::ShardedClimber::open_with
//! [`OpenError`]: climber_dfs::manifest::OpenError

use climber_dfs::store::PartitionId;

/// How an open treats a directory that fails validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// The first damaged partition (or shard) aborts the open with a
    /// typed error — the behaviour of [`Climber::open`] /
    /// [`Climber::open_rw`].
    ///
    /// [`Climber::open`]: crate::Climber::open
    /// [`Climber::open_rw`]: crate::Climber::open_rw
    #[default]
    Strict,
    /// Damaged partitions are moved into the directory's `QUARANTINE/`
    /// subdirectory and recorded; the index opens and serves the
    /// partitions that validated, degraded-with-status. On a shard set,
    /// a shard that cannot open at all is left as a dead slot and every
    /// query reports it unhealthy.
    Quarantine,
}

/// What a recovering open ([`RecoveryPolicy::Quarantine`]) had to do.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Partitions quarantined because their committed bytes failed
    /// validation (missing file, size mismatch, checksum mismatch).
    pub quarantined_partitions: Vec<PartitionId>,
    /// Shards that failed to open wholesale (corrupt manifest/skeleton,
    /// generation drift) and were left as dead slots; empty for a
    /// single-index open.
    pub dead_shards: Vec<usize>,
    /// Decompressed partition bytes the open fed into the block cache
    /// from its validation reads (0 without a cache): first-query latency
    /// after this open skips the filesystem for those partitions.
    pub warmed_bytes: u64,
}

impl RecoveryReport {
    /// True when the open needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        self.quarantined_partitions.is_empty() && self.dead_shards.is_empty()
    }
}

/// What one [`Climber::scrub`](crate::Climber::scrub) pass found and did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Manifest partitions whose committed bytes were re-read and
    /// re-checksummed this pass (quarantined ones are counted separately).
    pub partitions_checked: usize,
    /// Of those, how many validated clean.
    pub partitions_ok: usize,
    /// Previously quarantined partitions brought back into service: the
    /// main file matched its manifest entry again (operator restored it),
    /// or the quarantined copy itself validated and was renamed back.
    pub readmitted: Vec<PartitionId>,
    /// Partitions newly quarantined by this pass (fresh damage).
    pub quarantined: Vec<PartitionId>,
    /// Partitions that stayed quarantined: neither the main path nor the
    /// quarantined copy validates, so repair needs an external source.
    pub still_quarantined: Vec<PartitionId>,
}

impl ScrubReport {
    /// True when every manifest partition is serving and clean.
    pub fn is_fully_healthy(&self) -> bool {
        self.quarantined.is_empty() && self.still_quarantined.is_empty()
    }

    /// Folds another shard's report into this one (set-level scrub).
    pub fn absorb(&mut self, other: ScrubReport) {
        self.partitions_checked += other.partitions_checked;
        self.partitions_ok += other.partitions_ok;
        self.readmitted.extend(other.readmitted);
        self.quarantined.extend(other.quarantined);
        self.still_quarantined.extend(other.still_quarantined);
    }
}

/// A backend's health as the serving layer reports it: shard liveness
/// plus partition quarantine counts. Produced by
/// [`SearchBackend::health`](crate::SearchBackend::health), carried over
/// the wire by the serve crate's health endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendHealth {
    /// Shards the backend is composed of (1 for a single index).
    pub shards: u32,
    /// Shards currently dead (failed to open and not yet re-admitted).
    pub dead_shards: u32,
    /// Partitions currently quarantined, summed across live shards.
    pub quarantined_partitions: u64,
}

impl BackendHealth {
    /// A fully healthy single-backend report (the trait default).
    pub fn healthy() -> Self {
        Self {
            shards: 1,
            dead_shards: 0,
            quarantined_partitions: 0,
        }
    }

    /// True when nothing is dead or quarantined.
    pub fn is_healthy(&self) -> bool {
        self.dead_shards == 0 && self.quarantined_partitions == 0
    }

    /// Fixed-width wire encoding (16 bytes, little-endian).
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&self.shards.to_le_bytes());
        out[4..8].copy_from_slice(&self.dead_shards.to_le_bytes());
        out[8..16].copy_from_slice(&self.quarantined_partitions.to_le_bytes());
        out
    }

    /// Decodes [`encode`](Self::encode)'s 16-byte layout.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() != 16 {
            return Err(format!("backend health is {} bytes, want 16", bytes.len()));
        }
        Ok(Self {
            shards: u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
            dead_shards: u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            quarantined_partitions: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_health_roundtrips_and_classifies() {
        let h = BackendHealth {
            shards: 4,
            dead_shards: 1,
            quarantined_partitions: 3,
        };
        assert_eq!(BackendHealth::decode(&h.encode()).unwrap(), h);
        assert!(!h.is_healthy());
        assert!(BackendHealth::healthy().is_healthy());
        assert!(BackendHealth::decode(&[0u8; 5]).is_err());
    }

    #[test]
    fn scrub_report_absorbs_and_classifies() {
        let mut a = ScrubReport {
            partitions_checked: 3,
            partitions_ok: 3,
            ..ScrubReport::default()
        };
        assert!(a.is_fully_healthy());
        a.absorb(ScrubReport {
            partitions_checked: 2,
            partitions_ok: 1,
            quarantined: vec![7],
            ..ScrubReport::default()
        });
        assert_eq!(a.partitions_checked, 5);
        assert!(!a.is_fully_healthy());
        assert!(RecoveryReport::default().is_clean());
    }
}
