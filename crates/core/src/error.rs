//! The unified error surface of the facade.
//!
//! Before this module the facade mixed three conventions: build/save/update
//! paths returned `io::Result`, cold-start returned `Result<_, OpenError>`,
//! and the serving layer would have needed a third family. [`ClimberError`]
//! folds them into one top-level enum with `From` impls in every
//! direction, and maps each variant onto a stable wire status code so the
//! network protocol can carry any facade failure as a typed response.

use climber_dfs::manifest::OpenError;
use std::fmt;
use std::io;

/// Wire status codes for [`ClimberError`] / [`ServeError`]: a stable `u8`
/// per failure family, carried in the serving protocol's error responses.
pub mod status {
    /// Success (never carried by an error response).
    pub const OK: u8 = 0;
    /// The request failed validation ([`SearchRequest::validate`]).
    ///
    /// [`SearchRequest::validate`]: climber_query::search::SearchRequest::validate
    pub const BAD_REQUEST: u8 = 1;
    /// The admission queue was full; retry with backoff.
    pub const OVERLOADED: u8 = 2;
    /// The server is draining and accepts no new requests.
    pub const SHUTTING_DOWN: u8 = 3;
    /// A malformed frame or codec failure on the wire.
    pub const PROTOCOL: u8 = 4;
    /// An I/O failure underneath the index.
    pub const IO: u8 = 5;
    /// A cold-start validation failure ([`OpenError`]).
    ///
    /// [`OpenError`]: climber_dfs::manifest::OpenError
    pub const OPEN: u8 = 6;
    /// The request's per-request deadline expired before a worker
    /// answered; the search may still complete server-side, but the
    /// response was abandoned.
    pub const DEADLINE_EXCEEDED: u8 = 7;
}

/// Every way the facade can fail, in one enum.
///
/// Constructed via `From` from the layer-specific errors, so internal code
/// keeps its precise types and only the public boundary widens:
///
/// ```
/// use climber_core::ClimberError;
///
/// fn load(dir: &std::path::Path) -> Result<(), ClimberError> {
///     let bytes = std::fs::read(dir.join("manifest.clm"))?; // io::Error
///     let _ = bytes;
///     Ok(())
/// }
/// assert!(load(std::path::Path::new("/nonexistent")).is_err());
/// ```
#[derive(Debug)]
pub enum ClimberError {
    /// Cold-start validation failed (manifest, checksums, journal, ...).
    Open(OpenError),
    /// An I/O failure underneath a build, save, or update path.
    Io(io::Error),
    /// A serving-layer failure (queueing, protocol, remote status).
    Serve(ServeError),
}

impl ClimberError {
    /// The wire status code this error maps onto.
    pub fn wire_status(&self) -> u8 {
        match self {
            ClimberError::Open(_) => status::OPEN,
            ClimberError::Io(_) => status::IO,
            ClimberError::Serve(e) => e.wire_status(),
        }
    }
}

impl fmt::Display for ClimberError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClimberError::Open(e) => write!(f, "open failed: {e}"),
            ClimberError::Io(e) => write!(f, "I/O error: {e}"),
            ClimberError::Serve(e) => write!(f, "serving error: {e}"),
        }
    }
}

impl std::error::Error for ClimberError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClimberError::Open(e) => Some(e),
            ClimberError::Io(e) => Some(e),
            ClimberError::Serve(e) => Some(e),
        }
    }
}

impl From<OpenError> for ClimberError {
    fn from(e: OpenError) -> Self {
        ClimberError::Open(e)
    }
}

impl From<io::Error> for ClimberError {
    fn from(e: io::Error) -> Self {
        ClimberError::Io(e)
    }
}

impl From<ServeError> for ClimberError {
    fn from(e: ServeError) -> Self {
        ClimberError::Serve(e)
    }
}

/// Failures of the network serving layer.
///
/// Defined here (not in `climber-serve`) so [`ClimberError`] can embed it
/// without inverting the crate dependency: the server crate depends on the
/// facade, never the other way around. The overload and shutdown variants
/// are unit variants so callers can `match` on them for retry policy.
#[derive(Debug)]
pub enum ServeError {
    /// The admission queue was full — the typed backpressure response.
    /// The request was **not** enqueued; retry with backoff.
    Overloaded,
    /// The server is draining: in-flight requests finish, new ones are
    /// refused.
    ShuttingDown,
    /// The request failed validation before admission.
    BadRequest(String),
    /// The per-request deadline expired before the batch engine answered.
    /// The request itself was valid and read-only; retrying is safe but a
    /// client should treat repeated deadline misses as overload.
    DeadlineExceeded,
    /// A malformed or unexpected frame on the wire.
    Protocol(String),
    /// A failure reported by the remote server that is not one of the
    /// typed families above (e.g. a server-side I/O error).
    Remote {
        /// The wire status code the server sent.
        status: u8,
        /// The server's human-readable message.
        message: String,
    },
}

impl ServeError {
    /// The wire status code this error maps onto.
    pub fn wire_status(&self) -> u8 {
        match self {
            ServeError::Overloaded => status::OVERLOADED,
            ServeError::ShuttingDown => status::SHUTTING_DOWN,
            ServeError::BadRequest(_) => status::BAD_REQUEST,
            ServeError::DeadlineExceeded => status::DEADLINE_EXCEEDED,
            ServeError::Protocol(_) => status::PROTOCOL,
            ServeError::Remote { status, .. } => *status,
        }
    }

    /// Reconstructs the typed error a wire error response encodes, so a
    /// client `match`es the same variants a local caller would.
    pub fn from_wire(code: u8, message: String) -> Self {
        match code {
            status::OVERLOADED => ServeError::Overloaded,
            status::SHUTTING_DOWN => ServeError::ShuttingDown,
            status::BAD_REQUEST => ServeError::BadRequest(message),
            status::DEADLINE_EXCEEDED => ServeError::DeadlineExceeded,
            status::PROTOCOL => ServeError::Protocol(message),
            code => ServeError::Remote {
                status: code,
                message,
            },
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "admission queue full (overloaded)"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Remote { status, message } => {
                write!(f, "remote error (status {status}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_status_roundtrips_typed_variants() {
        let cases = [
            ServeError::Overloaded,
            ServeError::ShuttingDown,
            ServeError::BadRequest("k must be positive".into()),
            ServeError::DeadlineExceeded,
            ServeError::Protocol("bad frame".into()),
        ];
        for e in cases {
            let code = e.wire_status();
            let back = ServeError::from_wire(code, e.to_string());
            assert_eq!(back.wire_status(), code);
            assert_eq!(std::mem::discriminant(&back), std::mem::discriminant(&e));
        }
        // unknown codes collapse into Remote but keep the status
        let r = ServeError::from_wire(status::IO, "disk died".into());
        assert_eq!(r.wire_status(), status::IO);
        assert!(matches!(r, ServeError::Remote { .. }));
    }

    #[test]
    fn climber_error_converts_from_every_layer() {
        let io_err: ClimberError = io::Error::other("boom").into();
        assert_eq!(io_err.wire_status(), status::IO);
        let open_err: ClimberError =
            OpenError::MissingManifest(std::path::PathBuf::from("/x")).into();
        assert_eq!(open_err.wire_status(), status::OPEN);
        let serve_err: ClimberError = ServeError::Overloaded.into();
        assert_eq!(serve_err.wire_status(), status::OVERLOADED);
        // Display + source chain are wired
        assert!(open_err.to_string().contains("open failed"));
        assert!(std::error::Error::source(&io_err).is_some());
    }
}
