//! Scatter-gather sharding: N independent [`Climber`] shards behind one
//! query surface, with bit-identical results to a single index.
//!
//! One index is one machine's ceiling. A [`ShardedClimber`] splits the
//! record set across N full [`Climber`] shards — each with its own
//! partition store, manifest, and mutable segments — while every shard
//! shares the **same frozen skeleton** (pivots, groups, tries). That
//! shared skeleton is what makes scatter-gather exact:
//!
//! * **Routing** is by record id: `shard_of(id) = xxh64(id, router_seed)
//!   mod N`. The seed is fixed at build time and persisted, so routing is
//!   deterministic at build, append, and delete time, and stable across
//!   reopens. Every record lives in exactly one shard.
//! * **Queries** are planned **once** against the shared skeleton (plans
//!   depend only on skeleton + query), the same plans are scattered to
//!   every shard through the partition-major batch scan
//!   ([`climber_query::scatter::scan_shard`]), and the per-shard top-k
//!   streams are merged per query. All shards share one
//!   [`SharedBound`] per query, so the moment any shard holds `k`
//!   candidates every other shard early-abandons against the best global
//!   k-th distance — cross-shard pruning that is provably lossless (a
//!   published bound always reflects `k` real candidates, so anything
//!   pruned is outside the global top-k).
//! * **Results are bit-identical** to one [`Climber`] over the same
//!   records: shards are record-disjoint, the scan offers every surviving
//!   candidate of every shard, and a [`TopK`] is insertion-order
//!   independent with deterministic `(distance, id)` tie-breaking — so
//!   the merged heap holds exactly the single-index answer, ties at the
//!   k-boundary included. Per-query `records_scanned` sums across shards
//!   to the single-index count, and the expansion fallback replays the
//!   sequential engine's plan-order loop shard-by-shard with the same
//!   partition-granular stopping rule.
//!
//! ## Persistence
//!
//! [`save`](ShardedClimber::save) writes each shard as a normal index
//! directory (`shard-000/`, `shard-001/`, ...) through the per-shard
//! seal, then a tiny super-manifest [`SHARD_SET_FILE`] — shard count,
//! router seed, per-shard generations, self-checksummed — atomically
//! last, so a crash mid-save never leaves an openable-but-wrong set.
//! [`open`](ShardedClimber::open) validates the super-manifest, opens
//! every shard through the full single-index validation, and
//! cross-checks each shard's generation against the set's snapshot; any
//! per-shard failure surfaces as [`OpenError::Shard`] naming the shard.
//!
//! ## Failure semantics
//!
//! A shard whose partitions disappear mid-flight degrades, never panics:
//! the scan marks the partitions failed and the merge returns the
//! surviving shards' answer.
//! [`ShardedClimber::search_many_with_status`] exposes the per-shard
//! health so callers can distinguish a complete answer from a partial
//! one.

use crate::error::ClimberError;
use crate::recover::{BackendHealth, RecoveryPolicy, RecoveryReport, ScrubReport};
use crate::{Climber, ClimberConfig, MaintenanceReport, SearchMode, SearchRequest};
use climber_dfs::format::PartitionWriter;
use climber_dfs::manifest::{self, xxh64, OpenError};
use climber_dfs::page::{BlockCache, CacheConfig};
use climber_dfs::stats::IoSnapshot;
use climber_dfs::store::{DiskStore, MemStore, PartitionId, PartitionStore};
use climber_index::builder::{BuildOptions, IndexBuilder};
use climber_query::batch::BatchStrategy;
use climber_query::engine::strategy_of;
use climber_query::plan::QueryOutcome;
use climber_query::scatter::{expand_shard_partition, plan_queries, scan_shard, ShardScan};
use climber_query::updates::UpdateView;
use climber_series::dataset::Dataset;
use climber_series::resample::resample_linear;
use climber_series::topk::{SharedBound, TopK};
use rayon::prelude::*;
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Name of the shard-set super-manifest inside a sharded index directory.
pub const SHARD_SET_FILE: &str = "SHARDS.clsm";

const SHARD_SET_MAGIC: [u8; 4] = *b"CLSH";
const SHARD_SET_VERSION: u32 = 1;

/// Mixed into the build config's seed to derive the router seed, so the
/// routing hash is decorrelated from every other seeded component
/// (pivot selection, planner tie-breaks) without a new config knob.
const ROUTER_SALT: u64 = 0x5AAD_C11B_ED0A_7A5E;

/// The directory name of shard `i` inside a sharded index directory.
pub fn shard_dir_name(shard: usize) -> String {
    format!("shard-{shard:03}")
}

/// Which shard owns record `id` under `router_seed` — the one routing
/// function used at build, append, delete, and (implicitly) query time.
fn route(id: u64, router_seed: u64, num_shards: usize) -> usize {
    (xxh64(&id.to_le_bytes(), router_seed) % num_shards as u64) as usize
}

/// The super-manifest of a sharded index: everything needed to reopen the
/// set — how many shards, how records route, and which generation each
/// shard was at when the set was sealed (the snapshot-consistency check:
/// a shard updated behind the set's back fails reopen instead of silently
/// serving drifted data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSetManifest {
    /// Number of shard directories the set holds.
    pub num_shards: u32,
    /// Seed of the record→shard routing hash.
    pub router_seed: u64,
    /// Per-shard segment generation at seal time, indexed by shard.
    pub generations: Vec<u64>,
}

impl ShardSetManifest {
    /// Serialises the super-manifest: magic, version, shard count, router
    /// seed, per-shard generations, then an xxHash64 self-checksum over
    /// everything preceding it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.generations.len() * 8 + 8);
        out.extend_from_slice(&SHARD_SET_MAGIC);
        out.extend_from_slice(&SHARD_SET_VERSION.to_le_bytes());
        out.extend_from_slice(&self.num_shards.to_le_bytes());
        out.extend_from_slice(&self.router_seed.to_le_bytes());
        for g in &self.generations {
            out.extend_from_slice(&g.to_le_bytes());
        }
        let checksum = xxh64(&out, 0);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes and validates a serialised super-manifest; the message
    /// names what is structurally wrong (surfaced as
    /// [`OpenError::CorruptShardSet`]).
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 28 {
            return Err(format!(
                "shard-set manifest is {} bytes, minimum is 28",
                bytes.len()
            ));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let found = xxh64(body, 0);
        if stored != found {
            return Err(format!(
                "shard-set checksum mismatch: stored {stored:#018x}, computed {found:#018x}"
            ));
        }
        if body[0..4] != SHARD_SET_MAGIC {
            return Err(format!("bad shard-set magic {:?}", &body[0..4]));
        }
        let version = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
        if version != SHARD_SET_VERSION {
            return Err(format!(
                "unsupported shard-set version {version} (supported: {SHARD_SET_VERSION})"
            ));
        }
        let num_shards = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
        if num_shards == 0 {
            return Err("shard-set declares zero shards".into());
        }
        let router_seed = u64::from_le_bytes(body[12..20].try_into().expect("8 bytes"));
        let expected = 20 + num_shards as usize * 8;
        if body.len() != expected {
            return Err(format!(
                "shard-set body is {} bytes, {num_shards} shards need {expected}",
                body.len()
            ));
        }
        let generations = (0..num_shards as usize)
            .map(|i| {
                let at = 20 + i * 8;
                u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"))
            })
            .collect();
        Ok(Self {
            num_shards,
            router_seed,
            generations,
        })
    }
}

/// Health of one shard after a scatter-gather query pass — the per-shard
/// status a degraded (partial) answer carries instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard this status describes.
    pub shard: usize,
    /// True iff every planned partition of every query opened on this
    /// shard (no candidate from this shard was silently missing).
    pub healthy: bool,
    /// Planned partitions that failed to open on this shard.
    pub failed_partitions: BTreeSet<PartitionId>,
    /// Records this shard contributed to the candidate streams (scan +
    /// expansion). Sums across shards to the single-index totals.
    pub records_scanned: u64,
}

/// N independent [`Climber`] shards behind one scatter-gather query
/// surface, with results bit-identical to a single index over the same
/// records (see the [module docs](self) for why).
///
/// ```
/// use climber_core::{Climber, ClimberConfig, SearchRequest, ShardedClimber};
/// use climber_core::series::gen::Domain;
///
/// let data = Domain::RandomWalk.generate(600, 42);
/// let config = ClimberConfig::default().with_pivots(32).with_capacity(100);
///
/// let single = Climber::build_in_memory(&data, config);
/// let sharded = ShardedClimber::build_in_memory(&data, config, 3);
///
/// let req = SearchRequest::new(data.get(17), 10);
/// assert_eq!(sharded.search(&req), single.search(&req));
/// ```
#[derive(Debug)]
pub struct ShardedClimber<S: PartitionStore = MemStore> {
    /// One slot per shard; `None` marks a dead shard a quarantining open
    /// ([`ShardedClimber::open_with`]) could not bring up. Dead slots
    /// keep their position so routing — which depends only on the shard
    /// count and router seed — is unchanged by quarantine and repair.
    shards: Vec<Option<Climber<S>>>,
    router_seed: u64,
    /// Per-shard generation snapshot from the last seal: the value
    /// reported for dead slots, whose live generation is unknowable.
    sealed_generations: Vec<u64>,
    /// Set-wide next append id (1 + the largest id stored anywhere); each
    /// shard's own counter trails it, tracking only that shard's records.
    next_id: AtomicU64,
}

impl ShardedClimber<MemStore> {
    /// Builds a sharded index in memory: one full single-index build, then
    /// a deterministic per-partition split of every cluster across
    /// `num_shards` record-disjoint stores sharing the skeleton. Within a
    /// shard, cluster order and in-cluster record order are preserved, so
    /// each shard's scan visits exactly the single index's records that
    /// route to it.
    ///
    /// # Panics
    /// If `num_shards == 0`.
    pub fn build_in_memory(ds: &Dataset, config: ClimberConfig, num_shards: usize) -> Self {
        Self::build_in_memory_with(
            ds,
            config,
            BuildOptions::default().with_threads(config.workers),
            num_shards,
        )
    }

    /// [`build_in_memory`](Self::build_in_memory) with explicit
    /// [`BuildOptions`] for the staging build (options never affect index
    /// content, only build speed).
    ///
    /// # Panics
    /// If `num_shards == 0`.
    pub fn build_in_memory_with(
        ds: &Dataset,
        config: ClimberConfig,
        options: BuildOptions,
        num_shards: usize,
    ) -> Self {
        assert!(num_shards > 0, "num_shards must be positive");
        let staging = MemStore::new();
        let (skeleton, _report) = IndexBuilder::with_options(config, options).build(ds, &staging);
        let router_seed = config.seed ^ ROUTER_SALT;

        // Split every partition of the staging store across the shards.
        // Every shard gets a file for EVERY skeleton partition — possibly
        // with zero clusters — so per-shard partition opens (and the
        // per-query `partitions_opened` accounting) mirror the single
        // index exactly.
        let stores: Vec<MemStore> = (0..num_shards).map(|_| MemStore::new()).collect();
        let mut per_shard: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); num_shards];
        for pid in skeleton.partition_ids() {
            let reader = staging.open(pid).expect("staging partition just built");
            let mut writers: Vec<PartitionWriter> = (0..num_shards)
                .map(|_| PartitionWriter::new(reader.group_id(), reader.series_len()))
                .collect();
            for node in reader.cluster_ids() {
                for recs in per_shard.iter_mut() {
                    recs.clear();
                }
                reader.for_each_in_cluster(node, |id, vals| {
                    per_shard[route(id, router_seed, num_shards)].push((id, vals.to_vec()));
                });
                for (s, recs) in per_shard.iter().enumerate() {
                    if !recs.is_empty() {
                        writers[s]
                            .push_cluster(node, recs.iter().map(|(id, v)| (*id, v.as_slice())));
                    }
                }
            }
            for (s, w) in writers.into_iter().enumerate() {
                stores[s].put(pid, w.finish()).expect("in-memory put");
            }
        }

        let shards: Vec<Option<Climber<MemStore>>> = stores
            .into_iter()
            .map(|st| {
                Some(Climber::from_parts_with_config(
                    skeleton.clone(),
                    st,
                    config,
                    options,
                ))
            })
            .collect();
        let next_id = shards
            .iter()
            .flatten()
            .map(|c| c.next_id.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        Self {
            sealed_generations: vec![0; shards.len()],
            shards,
            router_seed,
            next_id: AtomicU64::new(next_id),
        }
    }
}

impl ShardedClimber<DiskStore> {
    /// Builds a sharded index and persists it under `dir` (one
    /// subdirectory per shard plus the super-manifest), returning the set
    /// reopened read-write through the full cold-start validation — the
    /// sharded counterpart of [`Climber::build_on_disk`].
    ///
    /// # Panics
    /// If `num_shards == 0`.
    pub fn build_on_disk(
        ds: &Dataset,
        dir: impl AsRef<Path>,
        config: ClimberConfig,
        num_shards: usize,
    ) -> Result<Self, ClimberError> {
        Self::build_on_disk_with(
            ds,
            dir,
            config,
            BuildOptions::default().with_threads(config.workers),
            num_shards,
        )
    }

    /// [`build_on_disk`](Self::build_on_disk) with explicit
    /// [`BuildOptions`].
    ///
    /// # Panics
    /// If `num_shards == 0`.
    pub fn build_on_disk_with(
        ds: &Dataset,
        dir: impl AsRef<Path>,
        config: ClimberConfig,
        options: BuildOptions,
        num_shards: usize,
    ) -> Result<Self, ClimberError> {
        let mem = ShardedClimber::build_in_memory_with(ds, config, options, num_shards);
        mem.save(dir.as_ref())?;
        Self::open_rw(dir)
    }

    /// Cold-starts a saved shard set **read-only**: validates the
    /// super-manifest (magic, version, self-checksum), opens every shard
    /// through the full single-index validation, and cross-checks each
    /// shard's generation against the set's sealed snapshot. Any
    /// per-shard failure — a missing directory, a corrupt partition, a
    /// drifted generation — surfaces as [`OpenError::Shard`] naming the
    /// shard.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, ClimberError> {
        Ok(Self::open_impl(dir.as_ref(), false)?)
    }

    /// [`open`](Self::open) with updates enabled on every shard — the
    /// serve-and-ingest mode of the whole set.
    pub fn open_rw(dir: impl AsRef<Path>) -> Result<Self, ClimberError> {
        Ok(Self::open_impl(dir.as_ref(), true)?)
    }

    fn open_impl(dir: &Path, writable: bool) -> Result<Self, OpenError> {
        let sm = Self::load_set_manifest(dir)?;
        let mut shards = Vec::with_capacity(sm.num_shards as usize);
        for i in 0..sm.num_shards as usize {
            let sub = dir.join(shard_dir_name(i));
            let shard = Climber::open_impl(&sub, writable).map_err(|e| OpenError::Shard {
                shard: i,
                source: Box::new(e),
            })?;
            if shard.generation() != sm.generations[i] {
                return Err(OpenError::Shard {
                    shard: i,
                    source: Box::new(OpenError::CorruptShardSet(format!(
                        "shard generation {} disagrees with the shard set's sealed {}",
                        shard.generation(),
                        sm.generations[i]
                    ))),
                });
            }
            shards.push(Some(shard));
        }
        Ok(Self::from_slots(shards, sm))
    }

    fn load_set_manifest(dir: &Path) -> Result<ShardSetManifest, OpenError> {
        let path = dir.join(SHARD_SET_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(OpenError::MissingManifest(path))
            }
            Err(e) => return Err(OpenError::Io(e)),
        };
        ShardSetManifest::decode(&bytes).map_err(OpenError::CorruptShardSet)
    }

    fn from_slots(shards: Vec<Option<Climber<DiskStore>>>, sm: ShardSetManifest) -> Self {
        let next_id = shards
            .iter()
            .flatten()
            .map(|c| c.next_id.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        Self {
            shards,
            router_seed: sm.router_seed,
            sealed_generations: sm.generations,
            next_id: AtomicU64::new(next_id),
        }
    }

    /// A self-healing set open. Each shard is opened under `policy`:
    /// partitions that fail validation are quarantined *inside* their
    /// shard (see [`Climber::open_with`]); a shard that cannot open at
    /// all — corrupt manifest or skeleton, drifted generation — is left
    /// as a **dead slot** instead of failing the set. Queries over a set
    /// with dead slots return the surviving shards' answer, with every
    /// dead shard reported unhealthy in its [`ShardStatus`]. Routing and
    /// id assignment depend only on the persisted shard count and router
    /// seed, so they are byte-for-byte stable across quarantine, repair
    /// ([`scrub`](Self::scrub)), and reopen.
    ///
    /// Fails when *no* shard opens (nothing left to serve), and behaves
    /// exactly like [`open_rw`](Self::open_rw) under
    /// [`RecoveryPolicy::Strict`].
    pub fn open_with(
        dir: impl AsRef<Path>,
        policy: RecoveryPolicy,
    ) -> Result<(Self, RecoveryReport), ClimberError> {
        let dir = dir.as_ref();
        if policy == RecoveryPolicy::Strict {
            return Ok((Self::open_rw(dir)?, RecoveryReport::default()));
        }
        let sm = Self::load_set_manifest(dir)?;
        let mut report = RecoveryReport::default();
        let mut shards = Vec::with_capacity(sm.num_shards as usize);
        for i in 0..sm.num_shards as usize {
            let sub = dir.join(shard_dir_name(i));
            match Climber::open_with(&sub, RecoveryPolicy::Quarantine) {
                Ok((shard, r)) if shard.generation() == sm.generations[i] => {
                    report
                        .quarantined_partitions
                        .extend(r.quarantined_partitions);
                    shards.push(Some(shard));
                }
                _ => {
                    report.dead_shards.push(i);
                    shards.push(None);
                }
            }
        }
        if shards.iter().all(Option::is_none) {
            return Err(
                OpenError::CorruptShardSet("every shard of the set failed to open".into()).into(),
            );
        }
        Ok((Self::from_slots(shards, sm), report))
    }

    /// [`open_with`](Self::open_with) plus **one** paged block cache
    /// shared by every shard: a single byte budget (and a single LRU)
    /// serves the whole set, entries namespaced per shard store so shards
    /// never serve each other's partitions. Validation reads pre-warm the
    /// cache (the merged report's
    /// [`warmed_bytes`](RecoveryReport::warmed_bytes)); with
    /// [`CacheConfig::compress`] set, every shard's maintenance rewrites
    /// land compressed. Results stay bit-identical to a cacheless open.
    ///
    /// Under [`RecoveryPolicy::Strict`] any shard failure aborts the
    /// open; under [`RecoveryPolicy::Quarantine`] it degrades exactly
    /// like [`open_with`](Self::open_with).
    pub fn open_with_cache(
        dir: impl AsRef<Path>,
        policy: RecoveryPolicy,
        config: CacheConfig,
    ) -> Result<(Self, RecoveryReport), ClimberError> {
        let dir = dir.as_ref();
        let cache = Arc::new(BlockCache::new(config));
        let sm = Self::load_set_manifest(dir)?;
        let mut report = RecoveryReport::default();
        let mut shards = Vec::with_capacity(sm.num_shards as usize);
        for i in 0..sm.num_shards as usize {
            let sub = dir.join(shard_dir_name(i));
            let opened = Climber::open_cached_impl(
                &sub,
                climber_dfs::fsio::std_fs(),
                policy,
                config,
                Arc::clone(&cache),
            );
            match opened {
                Ok((shard, r)) if shard.generation() == sm.generations[i] => {
                    report
                        .quarantined_partitions
                        .extend(r.quarantined_partitions);
                    report.warmed_bytes += r.warmed_bytes;
                    shards.push(Some(shard));
                }
                Ok(shard_r) if policy == RecoveryPolicy::Strict => {
                    return Err(OpenError::Shard {
                        shard: i,
                        source: Box::new(OpenError::CorruptShardSet(format!(
                            "shard generation {} disagrees with the shard set's sealed {}",
                            shard_r.0.generation(),
                            sm.generations[i]
                        ))),
                    }
                    .into());
                }
                Err(e) if policy == RecoveryPolicy::Strict => {
                    return Err(OpenError::Shard {
                        shard: i,
                        source: Box::new(e),
                    }
                    .into());
                }
                _ => {
                    report.dead_shards.push(i);
                    shards.push(None);
                }
            }
        }
        if shards.iter().all(Option::is_none) {
            return Err(
                OpenError::CorruptShardSet("every shard of the set failed to open".into()).into(),
            );
        }
        Ok((Self::from_slots(shards, sm), report))
    }

    /// Scrubs the whole set: every live shard runs [`Climber::scrub`]
    /// (re-verify, re-admit, quarantine fresh damage), and every dead
    /// slot retries a quarantining open — a shard whose directory was
    /// repaired since is re-admitted **in place**, with routing and ids
    /// untouched. Returns the merged report; re-opened shards' remaining
    /// quarantined partitions count as still-quarantined.
    pub fn scrub(&mut self) -> Result<ScrubReport, ClimberError> {
        let mut merged = ScrubReport::default();
        let home = self.home_dir();
        for (i, slot) in self.shards.iter_mut().enumerate() {
            match slot {
                Some(shard) => merged.absorb(shard.scrub()?),
                None => {
                    let Some(home) = &home else { continue };
                    let sub = home.join(shard_dir_name(i));
                    if let Ok((shard, r)) = Climber::open_with(&sub, RecoveryPolicy::Quarantine) {
                        if shard.generation() == self.sealed_generations[i] {
                            merged.still_quarantined.extend(r.quarantined_partitions);
                            *slot = Some(shard);
                        }
                    }
                }
            }
        }
        // A re-admitted shard may hold the set's largest stored id.
        let seen = self
            .shards
            .iter()
            .flatten()
            .map(|c| c.next_id.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        self.next_id.fetch_max(seen, Ordering::Relaxed);
        Ok(merged)
    }
}

impl<S: PartitionStore> ShardedClimber<S> {
    /// Number of shards in the set.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The live shards (each a full [`Climber`]; dead slots omitted);
    /// read-side access for accounting and tests — route updates through
    /// the set so the set-wide id counter and super-manifest stay
    /// consistent.
    pub fn shards(&self) -> Vec<&Climber<S>> {
        self.shards.iter().flatten().collect()
    }

    /// The slot-indexed shard view: `None` marks a dead shard left
    /// behind by a quarantining open (see
    /// [`open_with`](ShardedClimber::open_with)).
    pub fn shard_slots(&self) -> &[Option<Climber<S>>] {
        &self.shards
    }

    /// The set's health: slot count, dead slots, and partitions
    /// quarantined inside live shards.
    pub fn health(&self) -> BackendHealth {
        BackendHealth {
            shards: self.shards.len() as u32,
            dead_shards: self.shards.iter().filter(|s| s.is_none()).count() as u32,
            quarantined_partitions: self
                .shards
                .iter()
                .flatten()
                .map(|c| c.quarantined_partitions().len() as u64)
                .sum(),
        }
    }

    /// Seed of the record→shard routing hash (persisted, so routing is
    /// stable across save/reopen).
    pub fn router_seed(&self) -> u64 {
        self.router_seed
    }

    /// Serve-phase I/O summed across live shards. Block-cache counters
    /// are overlaid **once** from the set's shared cache (see
    /// [`open_with_cache`](ShardedClimber::open_with_cache)) — every
    /// shard reports the same shared cache, so summing per-shard copies
    /// would multiply-count them.
    pub fn serve_io(&self) -> IoSnapshot {
        let mut total = IoSnapshot::default();
        for shard in self.shards.iter().flatten() {
            let s = shard.serve_io();
            total.partitions_written += s.partitions_written;
            total.partitions_opened += s.partitions_opened;
            total.bytes_written += s.bytes_written;
            total.bytes_read += s.bytes_read;
            total.records_shuffled += s.records_shuffled;
            total.records_read += s.records_read;
        }
        match self.block_cache() {
            Some(cache) => total.with_cache(&cache.stats()),
            None => total,
        }
    }

    /// The shared block cache serving the set's partition opens — `Some`
    /// only after [`open_with_cache`](ShardedClimber::open_with_cache)
    /// (every live shard holds the same cache).
    pub fn block_cache(&self) -> Option<Arc<BlockCache>> {
        self.shards
            .iter()
            .flatten()
            .find_map(|c| c.store().block_cache())
    }

    /// Enables (or disables) the quantized record cache on every shard —
    /// the set-wide counterpart of [`Climber::set_quant_enabled`]: sealed
    /// cluster scans are served from 8-bit codes with exact promotion of
    /// the survivors, leaving every answer bit-identical.
    pub fn set_quant_enabled(&self, enabled: bool) {
        for shard in self.shards.iter().flatten() {
            shard.set_quant_enabled(enabled);
        }
    }

    /// Which shard owns record `id`. Deterministic for the lifetime of
    /// the set, including across reopens.
    pub fn shard_of(&self, id: u64) -> usize {
        route(id, self.router_seed, self.shards.len())
    }

    /// False only for sets opened read-only via
    /// [`ShardedClimber::open`].
    pub fn is_writable(&self) -> bool {
        self.shards.iter().flatten().all(Climber::is_writable)
    }

    /// Per-shard segment generations, indexed by shard slot; dead slots
    /// report their last sealed generation.
    pub fn generations(&self) -> Vec<u64> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                s.as_ref()
                    .map_or(self.sealed_generations[i], Climber::generation)
            })
            .collect()
    }

    /// The indexed series length, from any live shard (all agree: they
    /// share the skeleton and the split preserves partition metadata).
    fn series_len_hint(&self) -> Option<usize> {
        self.shards.iter().flatten().next()?.series_len_hint()
    }

    fn set_manifest(&self) -> ShardSetManifest {
        ShardSetManifest {
            num_shards: self.shards.len() as u32,
            router_seed: self.router_seed,
            generations: self.generations(),
        }
    }

    /// The directory holding the shard set, when the shards are
    /// disk-backed under their standard subdirectories.
    fn home_dir(&self) -> Option<PathBuf> {
        let first = self.shards.iter().flatten().next()?.store.persist_dir()?;
        first.parent().map(Path::to_path_buf)
    }

    /// Persists the whole set under `dir`: every shard sealed into its
    /// own `shard-NNN/` index directory (full per-shard validation
    /// machinery — manifest, checksums, journal), then the super-manifest
    /// written atomically **last**, so a crash mid-save never yields a
    /// set that opens against half-new shards. Returns the written
    /// super-manifest.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<ShardSetManifest, ClimberError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(ClimberError::Io)?;
        // Dead slots are skipped: their directories keep whatever state
        // they sealed last (recorded in `sealed_generations`), so a
        // repaired shard can still re-admit under the super-manifest
        // written below.
        for (i, shard) in self.shards.iter().enumerate() {
            let Some(shard) = shard else { continue };
            shard.save(dir.join(shard_dir_name(i)))?;
        }
        let sm = self.set_manifest();
        manifest::write_file_atomic(&dir.join(SHARD_SET_FILE), &sm.encode())
            .map_err(ClimberError::Io)?;
        Ok(sm)
    }

    /// Re-seals the super-manifest of a disk-backed set after a fold
    /// bumped shard generations; without it a reopen would (correctly)
    /// refuse the drifted shard.
    fn reseal_set(&self) -> Result<(), ClimberError> {
        if let Some(home) = self.home_dir() {
            if home.join(SHARD_SET_FILE).is_file() {
                manifest::write_file_atomic(
                    &home.join(SHARD_SET_FILE),
                    &self.set_manifest().encode(),
                )
                .map_err(ClimberError::Io)?;
            }
        }
        Ok(())
    }

    /// Appends a new series, returning its set-wide assigned id: the id
    /// is drawn from the set-wide counter (so ids are identical to a
    /// single index absorbing the same appends), routed to its owning
    /// shard, and lands in that shard's delta segment — O(record), no
    /// partition touched anywhere.
    ///
    /// # Panics
    /// If the series length differs from the indexed length.
    pub fn append(&self, values: &[f32]) -> Result<u64, ClimberError> {
        Ok(self.append_batch(std::slice::from_ref(&values.to_vec()))?[0])
    }

    /// Appends a batch of series, returning their set-wide assigned ids:
    /// one id-range reservation, one routing pass, one grouped delta
    /// insertion per touched shard.
    ///
    /// # Panics
    /// If any series length differs from the indexed length.
    pub fn append_batch(&self, series: &[Vec<f32>]) -> Result<Vec<u64>, ClimberError> {
        for shard in self.shards.iter().flatten() {
            shard.ensure_writable()?;
        }
        if series.is_empty() {
            return Ok(Vec::new());
        }
        let expected = self.series_len_hint().unwrap_or(series[0].len());
        for v in series {
            assert_eq!(
                v.len(),
                expected,
                "appended series length {} != indexed length {expected}",
                v.len()
            );
        }
        let first = self
            .next_id
            .fetch_add(series.len() as u64, Ordering::Relaxed);
        let ids: Vec<u64> = (first..first + series.len() as u64).collect();
        // Group the batch by owning shard, preserving ascending-id order
        // within each group (delta folds replay in id order).
        let mut grouped: Vec<Vec<(u64, &[f32])>> = vec![Vec::new(); self.shards.len()];
        for (v, &id) in series.iter().zip(&ids) {
            grouped[self.shard_of(id)].push((id, v.as_slice()));
        }
        // All-or-nothing: refuse the whole batch before any record lands
        // if one routes to a dead slot (the reserved ids stay unused — a
        // gap, never a partial append).
        for (s, group) in grouped.iter().enumerate() {
            if !group.is_empty() && self.shards[s].is_none() {
                return Err(ClimberError::Io(dead_shard_error(s)));
            }
        }
        for (s, group) in grouped.into_iter().enumerate() {
            let Some(&(max_id, _)) = group.last() else {
                continue;
            };
            let shard = self.shards[s].as_ref().expect("dead slots checked above");
            let routed: Vec<_> = group
                .into_iter()
                .map(|(id, v)| {
                    let p = shard.skeleton.place(v, id);
                    (p.partition, p.node, id, v)
                })
                .collect();
            shard.delta.append_many(routed);
            // The shard's own counter tracks the largest id it stores, so
            // a per-shard seal records the right `max_series_id`.
            shard.next_id.fetch_max(max_id + 1, Ordering::Relaxed);
        }
        Ok(ids)
    }

    /// Deletes series `id` set-wide — routed to the owning shard's
    /// tombstone set. Returns `false` when the id was never assigned or
    /// is already deleted, exactly like [`Climber::delete`].
    pub fn delete(&self, id: u64) -> Result<bool, ClimberError> {
        for shard in self.shards.iter().flatten() {
            shard.ensure_writable()?;
        }
        if id >= self.next_id.load(Ordering::Relaxed) {
            return Ok(false);
        }
        let owner = self.shard_of(id);
        let Some(shard) = self.shards[owner].as_ref() else {
            return Err(ClimberError::Io(dead_shard_error(owner)));
        };
        // The owning shard's own id counter may trail the set-wide one
        // (it only counts records routed to it), so the existence check
        // above is set-wide and the tombstone goes straight in.
        Ok(shard.tombstones.delete(id))
    }

    /// Folds every shard's delta segment into its sealed partitions
    /// ([`Climber::flush`] per shard), then re-seals the super-manifest
    /// so the on-disk set stays openable at the bumped generations.
    /// Counters in the merged report are summed across shards; the
    /// reported generation is the highest shard generation.
    pub fn flush(&self) -> Result<MaintenanceReport, ClimberError> {
        self.maintain(false)
    }

    /// [`flush`](Self::flush) + purge on every shard
    /// ([`Climber::compact`] per shard).
    pub fn compact(&self) -> Result<MaintenanceReport, ClimberError> {
        self.maintain(true)
    }

    fn maintain(&self, purge: bool) -> Result<MaintenanceReport, ClimberError> {
        let mut merged = MaintenanceReport {
            partitions_rewritten: 0,
            records_folded: 0,
            records_purged: 0,
            tombstones_remaining: 0,
            generation: 0,
        };
        for shard in self.shards.iter().flatten() {
            let r = if purge {
                shard.compact()?
            } else {
                shard.flush()?
            };
            merged.partitions_rewritten += r.partitions_rewritten;
            merged.records_folded += r.records_folded;
            merged.records_purged += r.records_purged;
            merged.tombstones_remaining += r.tombstones_remaining;
            merged.generation = merged.generation.max(r.generation);
        }
        self.reseal_set()?;
        Ok(merged)
    }

    /// Executes one [`SearchRequest`] across every shard — scatter, merge,
    /// expansion — with an outcome bit-identical to [`Climber::search`]
    /// on a single index over the same records.
    ///
    /// # Panics
    /// If [`SearchRequest::validate`] fails, exactly like the
    /// single-index surface.
    ///
    /// [`SearchRequest::validate`]: climber_query::search::SearchRequest::validate
    pub fn search(&self, req: &SearchRequest) -> QueryOutcome {
        self.search_many(std::slice::from_ref(req))
            .pop()
            .expect("one outcome per request")
    }

    /// Executes many [`SearchRequest`]s across every shard: compatible
    /// requests are grouped and planned once on the shared skeleton, the
    /// plans scattered to all shards through the partition-major batch
    /// scan, and per-shard top-k streams merged per query under a shared
    /// cross-shard bound. Outcomes come back in request order,
    /// bit-identical to [`Climber::search_many`] on a single index.
    ///
    /// # Panics
    /// If any request fails validation.
    pub fn search_many(&self, reqs: &[SearchRequest]) -> Vec<QueryOutcome> {
        self.search_many_with_status(reqs, 0).0
    }

    /// [`search_many`](Self::search_many) with an explicit worker thread
    /// count (`0` = the machine's available parallelism).
    pub fn search_many_with_threads(
        &self,
        reqs: &[SearchRequest],
        threads: usize,
    ) -> Vec<QueryOutcome> {
        self.search_many_with_status(reqs, threads).0
    }

    /// The full scatter-gather entry point: outcomes in request order
    /// plus one [`ShardStatus`] per shard. When every status is healthy
    /// the outcomes are complete (bit-identical to a single index); a
    /// shard that failed partitions mid-scatter degrades to the surviving
    /// shards' answer, reported — never a panic or a hang.
    ///
    /// # Panics
    /// If any request fails validation.
    pub fn search_many_with_status(
        &self,
        reqs: &[SearchRequest],
        threads: usize,
    ) -> (Vec<QueryOutcome>, Vec<ShardStatus>) {
        let slots: Vec<Option<&Climber<S>>> = self.shards.iter().map(Option::as_ref).collect();
        scatter_search_with_status(&slots, reqs, threads)
    }
}

/// The error an update targeting a dead (quarantined) shard slot gets.
fn dead_shard_error(shard: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("shard {shard} is quarantined (dead slot); scrub the set to re-admit it"),
    )
}

/// The scatter-gather batch engine over a slice of shard slots — the
/// shared implementation behind
/// [`ShardedClimber::search_many_with_status`] and the degraded
/// single-index path [`Climber::search_many_with_status`] (one slot).
/// Dead (`None`) slots contribute nothing and are reported unhealthy;
/// planned partitions that fail to open on a live shard (quarantined,
/// deleted mid-flight) are recorded in that shard's status instead of
/// failing the pass.
///
/// # Panics
/// If any request fails validation, or every slot is dead (there is no
/// skeleton to plan against).
pub(crate) fn scatter_search_with_status<S: PartitionStore>(
    shards: &[Option<&Climber<S>>],
    reqs: &[SearchRequest],
    threads: usize,
) -> (Vec<QueryOutcome>, Vec<ShardStatus>) {
    let mut statuses: Vec<ShardStatus> = (0..shards.len())
        .map(|s| ShardStatus {
            shard: s,
            healthy: shards[s].is_some(),
            failed_partitions: BTreeSet::new(),
            records_scanned: 0,
        })
        .collect();
    if reqs.is_empty() {
        return (Vec::new(), statuses);
    }
    for req in reqs {
        if let Err(e) = req.validate() {
            panic!("{e}");
        }
    }
    let first_live = shards
        .iter()
        .flatten()
        .next()
        .expect("at least one live shard");
    // Group compatible requests exactly like the single-index
    // micro-batch path (first-seen order, tiny linear scan).
    type GroupKey = (BatchStrategy, usize, Option<u32>);
    let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        let key = (strategy_of(req.mode), req.k, req.budget);
        match groups.iter_mut().find(|(gk, _)| *gk == key) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    let len_hint = first_live.series_len_hint();
    let mut out: Vec<Option<QueryOutcome>> = Vec::with_capacity(reqs.len());
    out.resize_with(reqs.len(), || None);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(|| {
        for ((strategy, k, budget), idxs) in &groups {
            let queries: Vec<Vec<f32>> = idxs
                .iter()
                .map(|&i| {
                    let req = &reqs[i];
                    if matches!(req.mode, SearchMode::Resampled(_)) {
                        let target = len_hint.unwrap_or(req.query.len());
                        resample_linear(&req.query, target)
                    } else {
                        req.query.clone()
                    }
                })
                .collect();
            // One planning pass on the shared skeleton serves every
            // shard; one bound array per query is shared across
            // shards for cross-shard pruning.
            let plans = plan_queries(
                first_live.skeleton(),
                &queries,
                *k,
                *strategy,
                budget.map(|b| b as usize),
            );
            let bounds: Vec<SharedBound> = (0..queries.len()).map(|_| SharedBound::new()).collect();
            let scans: Vec<Option<ShardScan>> = shards
                .par_iter()
                .map(|slot| {
                    slot.map(|shard| {
                        scan_shard(
                            &shard.store,
                            &queries,
                            *k,
                            &plans,
                            &bounds,
                            updates_of(shard),
                            Some(&shard.quant),
                        )
                    })
                })
                .collect();
            for (si, scan) in scans.iter().enumerate() {
                let Some(scan) = scan else { continue };
                statuses[si]
                    .failed_partitions
                    .extend(scan.failed.iter().copied());
                statuses[si].records_scanned += scan.scanned.iter().sum::<u64>();
            }
            let expands = strategy.expands();
            for (qi, &ri) in idxs.iter().enumerate() {
                let plan = &plans[qi];
                // Seeking k-way merge of the per-shard streams: each
                // shard's heap already holds its best ≤ k candidates
                // sorted by (distance, id), so merging heaps IS the
                // stream merge — deterministic tie-breaking included.
                let mut top = TopK::new(*k);
                let mut records_scanned = 0u64;
                for scan in scans.iter().flatten() {
                    top.merge(scan.tops[qi].clone());
                    records_scanned += scan.scanned[qi];
                }
                // A planned partition counts as opened when any live
                // shard opened it — with healthy shards that is every
                // planned partition, the single-index count.
                let partitions_opened = plan
                    .reads
                    .keys()
                    .filter(|pid| scans.iter().flatten().any(|s| !s.failed.contains(pid)))
                    .count();
                if expands && top.len() < *k {
                    // The sequential engine's expansion loop, fanned
                    // across shards: plan order, stop checked at
                    // partition granularity. Each shard expands into
                    // a FRESH heap (TopK::merge does not dedup; shard
                    // stores are record-disjoint and expansion
                    // clusters are disjoint from planned ones, so a
                    // fresh local per shard merges exactly once).
                    'partitions: for (pid, planned) in &plan.reads {
                        for (si, slot) in shards.iter().enumerate() {
                            let Some(shard) = slot else { continue };
                            let failed_scan =
                                scans[si].as_ref().is_some_and(|s| s.failed.contains(pid));
                            if failed_scan {
                                continue;
                            }
                            let mut local = TopK::new(*k);
                            match expand_shard_partition(
                                &shard.store,
                                *pid,
                                planned,
                                &queries[qi],
                                &mut local,
                                updates_of(shard),
                                Some(&shard.quant),
                            ) {
                                Some(n) => {
                                    records_scanned += n;
                                    statuses[si].records_scanned += n;
                                    top.merge(local);
                                }
                                None => {
                                    statuses[si].failed_partitions.insert(*pid);
                                }
                            }
                        }
                        if top.len() >= *k {
                            break 'partitions;
                        }
                    }
                }
                out[ri] = Some(QueryOutcome {
                    results: top.into_sorted(),
                    partitions_opened,
                    records_scanned,
                    plan: plan.clone(),
                });
            }
        }
    });
    for s in &mut statuses {
        s.healthy = shards[s.shard].is_some() && s.failed_partitions.is_empty();
    }
    let outcomes = out
        .into_iter()
        .map(|o| o.expect("every request answered"))
        .collect();
    (outcomes, statuses)
}

/// The shard's mutable segments as an [`UpdateView`], or `None` when both
/// are empty (keeping the sealed-only fast path of the scan).
fn updates_of<S: PartitionStore>(shard: &Climber<S>) -> Option<UpdateView<'_>> {
    if shard.delta.is_empty() && shard.tombstones.is_empty() {
        None
    } else {
        Some(UpdateView {
            delta: &shard.delta,
            tombstones: &shard.tombstones,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_series::gen::Domain;

    fn cfg() -> ClimberConfig {
        ClimberConfig::default()
            .with_paa_segments(8)
            .with_pivots(32)
            .with_prefix_len(5)
            .with_capacity(60)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(7)
            .with_workers(2)
    }

    #[test]
    fn sharded_matches_single_across_modes() {
        let ds = Domain::RandomWalk.generate(400, 11);
        let single = Climber::build_in_memory(&ds, cfg());
        for shards in [1usize, 2, 3] {
            let sharded = ShardedClimber::build_in_memory(&ds, cfg(), shards);
            for req in [
                SearchRequest::new(ds.get(5), 10),
                SearchRequest::new(ds.get(17), 7).exact(),
                SearchRequest::new(ds.get(30), 12).smallest(),
                SearchRequest::new(ds.get(44), 9).adaptive(2).with_budget(3),
            ] {
                assert_eq!(sharded.search(&req), single.search(&req), "shards={shards}");
            }
        }
    }

    #[test]
    fn every_record_routes_to_exactly_one_shard() {
        let ds = Domain::Eeg.generate(300, 3);
        let sharded = ShardedClimber::build_in_memory(&ds, cfg(), 3);
        let mut seen = vec![0u32; 300];
        for (si, shard) in sharded.shards().iter().enumerate() {
            for pid in shard.store().ids() {
                shard.store().open(pid).unwrap().for_each(|id, _| {
                    seen[id as usize] += 1;
                    assert_eq!(sharded.shard_of(id), si, "record {id} off its shard");
                });
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "routing not a partition");
    }

    #[test]
    fn updates_flow_through_the_set() {
        let ds = Domain::RandomWalk.generate(250, 9);
        let single = Climber::build_in_memory(&ds, cfg());
        let sharded = ShardedClimber::build_in_memory(&ds, cfg(), 2);
        let probe: Vec<f32> = ds.get(10).iter().map(|v| v + 0.01).collect();
        assert_eq!(
            single.append(&probe).unwrap(),
            sharded.append(&probe).unwrap(),
            "set-wide ids must match the single index"
        );
        single.delete(10).unwrap();
        sharded.delete(10).unwrap();
        let req = SearchRequest::new(&probe[..], 8);
        assert_eq!(sharded.search(&req), single.search(&req));
        // fold both; answers must be unchanged and still equal
        let before = sharded.search(&req);
        single.flush().unwrap();
        sharded.flush().unwrap();
        assert_eq!(sharded.search(&req), before);
        assert_eq!(sharded.search(&req), single.search(&req));
    }

    #[test]
    fn shard_set_manifest_roundtrip_and_corruption() {
        let sm = ShardSetManifest {
            num_shards: 3,
            router_seed: 0xDEAD_BEEF,
            generations: vec![0, 4, 1],
        };
        let bytes = sm.encode();
        assert_eq!(ShardSetManifest::decode(&bytes).unwrap(), sm);
        // flip a byte: checksum catches it
        let mut bad = bytes.clone();
        bad[9] ^= 0xFF;
        assert!(ShardSetManifest::decode(&bad)
            .unwrap_err()
            .contains("checksum"));
        // truncate: length check catches it
        assert!(ShardSetManifest::decode(&bytes[..10]).is_err());
    }

    #[test]
    fn disk_roundtrip_preserves_results_and_routing() {
        let dir = std::env::temp_dir().join(format!("climber-shard-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ds = Domain::TexMex.generate(220, 5);
        let built = ShardedClimber::build_on_disk(&ds, &dir, cfg(), 2).unwrap();
        let req = SearchRequest::new(ds.get(3), 6);
        let want = built.search(&req);
        let reopened = ShardedClimber::open(&dir).unwrap();
        assert_eq!(reopened.search(&req), want);
        assert_eq!(reopened.router_seed(), built.router_seed());
        assert_eq!(reopened.num_shards(), 2);
        assert!(!reopened.is_writable());
        std::fs::remove_dir_all(&dir).ok();
    }
}
