//! # CLIMBER — pivot-based approximate similarity search over big data series
//!
//! A from-scratch Rust reproduction of *"CLIMBER++: Pivot-Based Approximate
//! Similarity Search over Big Data Series"* (ICDE 2024). CLIMBER extracts a
//! dual pivot-permutation-prefix signature from every series (rank-sensitive
//! `P4→` and rank-insensitive `P4↛`), organises the data into a two-level
//! index — rank-insensitive *groups* refined by rank-sensitive *tries* into
//! capacity-bounded partitions — and answers approximate kNN queries by
//! navigating that index and refining with Euclidean distance inside a
//! handful of partitions.
//!
//! ## Quick start
//!
//! ```
//! use climber_core::{Climber, ClimberConfig};
//! use climber_core::series::gen::Domain;
//!
//! // 1. a dataset of 2 000 random-walk series (the standard benchmark)
//! let data = Domain::RandomWalk.generate(2_000, 42);
//!
//! // 2. build the index in memory (use `build_on_disk` for persistence)
//! let config = ClimberConfig::default()
//!     .with_pivots(64)
//!     .with_prefix_len(8)
//!     .with_capacity(250)
//!     .with_alpha(0.2);
//! let climber = Climber::build_in_memory(&data, config);
//!
//! // 3. approximate 10-NN of any query series
//! let answer = climber.knn(data.get(17), 10);
//! assert_eq!(answer.results.len(), 10);
//! assert_eq!(answer.results[0].0, 17); // the query itself is indexed
//!
//! // 4. the approximate answer overlaps the exact one (recall@10 > 0)
//! use climber_core::series::{exact_knn, recall};
//! let exact = exact_knn(&data, data.get(17), 10);
//! let approx_ids: Vec<u64> = answer.results.iter().map(|&(id, _)| id).collect();
//! let exact_ids: Vec<u64> = exact.iter().map(|&(id, _)| id).collect();
//! assert!(recall(&approx_ids, &exact_ids) > 0.0);
//! ```
//!
//! The sibling crates are re-exported under short names: [`series`]
//! (datasets, generators, ground truth), [`repr`] (PAA/SAX/iSAX),
//! [`pivot`] (signatures and metrics), [`dfs`] (storage substrate),
//! [`index`] (skeleton/builder), [`query`] (search algorithms) and
//! [`baselines`] (Dss, DPiSAX-like, TARDIS-like, LSH, HNSW, Odyssey-like).

#![warn(missing_docs)]

pub use climber_baselines as baselines;
pub use climber_dfs as dfs;
pub use climber_index as index;
pub use climber_pivot as pivot;
pub use climber_query as query;
pub use climber_repr as repr;
pub use climber_series as series;

pub use climber_dfs::manifest::{Manifest, OpenError, FORMAT_VERSION, MANIFEST_FILE};
pub use climber_index::builder::{BuildOptions, BuildReport};
pub use climber_index::config::IndexConfig as ClimberConfig;
pub use climber_index::skeleton::IndexSkeleton;
pub use climber_query::batch::{BatchOutcome, BatchRequest, BatchStrategy};
pub use climber_query::plan::QueryOutcome;

use climber_dfs::format::{Decode, Encode, PartitionWriter};
use climber_dfs::manifest::{self, xxh64, FileEntry, PartitionEntry};
use climber_dfs::stats::IoSnapshot;
use climber_dfs::store::{partition_file_name, DiskStore, MemStore, PartitionStore};
use climber_index::builder::IndexBuilder;
use climber_query::engine::KnnEngine;
use climber_series::dataset::Dataset;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Name of the skeleton file inside a disk-backed index directory.
pub const SKELETON_FILE: &str = "skeleton.clsk";

/// A built CLIMBER index: skeleton + partition store + build report.
#[derive(Debug)]
pub struct Climber<S: PartitionStore = MemStore> {
    skeleton: IndexSkeleton,
    store: S,
    config: ClimberConfig,
    /// Execution options the index was built with; [`save`](Self::save)
    /// reuses the same thread count for its checksum/copy fan-out.
    build_options: BuildOptions,
    report: Option<BuildReport>,
    /// Next series id for appends (1 + the largest stored id).
    next_id: AtomicU64,
    /// Store I/O at the moment the index became servable; the zero point
    /// for [`serve_io`](Self::serve_io). Behind a mutex because
    /// [`save`](Self::save) (which takes `&self`) advances it past its
    /// own checksum reads.
    ready_io: Mutex<IoSnapshot>,
}

impl Climber<MemStore> {
    /// Builds an index with in-memory partitions (fastest; combine with
    /// [`save`](Self::save) for build/serve process separation). Build
    /// parallelism follows `config.workers`; use
    /// [`build_in_memory_with`](Self::build_in_memory_with) for explicit
    /// thread/block control.
    pub fn build_in_memory(ds: &Dataset, config: ClimberConfig) -> Self {
        Self::build_in_memory_with(
            ds,
            config,
            BuildOptions::default().with_threads(config.workers),
        )
    }

    /// Builds an in-memory index with explicit [`BuildOptions`] — every
    /// build phase fans out across `options` threads in record blocks,
    /// producing output bit-identical to any other thread count.
    pub fn build_in_memory_with(
        ds: &Dataset,
        config: ClimberConfig,
        options: BuildOptions,
    ) -> Self {
        let store = MemStore::new();
        let (skeleton, report) = IndexBuilder::with_options(config, options).build(ds, &store);
        let mut c = Self::assemble(skeleton, store, config, Some(report));
        c.build_options = options;
        c.seed_next_id_by_scan();
        c.mark_ready();
        c
    }
}

impl Climber<DiskStore> {
    /// Builds a disk-backed index under `dir` — partition files, the
    /// serialised skeleton, and the checksummed [`Manifest`] — the
    /// paper's deployment mode. The directory can be reopened cold with
    /// [`Climber::open`], in this or any later process.
    pub fn build_on_disk(
        ds: &Dataset,
        dir: impl AsRef<Path>,
        config: ClimberConfig,
    ) -> io::Result<Self> {
        Self::build_on_disk_with(
            ds,
            dir,
            config,
            BuildOptions::default().with_threads(config.workers),
        )
    }

    /// [`build_on_disk`](Self::build_on_disk) with explicit
    /// [`BuildOptions`]: build phases, partition writes, and the sealing
    /// save's checksum pass all fan out across `options` threads. The
    /// resulting directory is byte-identical for any thread count.
    pub fn build_on_disk_with(
        ds: &Dataset,
        dir: impl AsRef<Path>,
        config: ClimberConfig,
        options: BuildOptions,
    ) -> io::Result<Self> {
        let store = DiskStore::new(dir.as_ref())?;
        let (skeleton, report) = IndexBuilder::with_options(config, options).build(ds, &store);
        let mut c = Self::assemble(skeleton, store, config, Some(report));
        c.build_options = options;
        c.seed_next_id_by_scan();
        c.save(dir)?;
        c.mark_ready();
        Ok(c)
    }

    /// Cold-starts a previously saved index: validates the manifest
    /// (magic, format version, self-checksum), every partition file's
    /// byte range and checksum, the skeleton's checksum, and the
    /// manifest/skeleton partition-set agreement — then serves queries
    /// with no access to the original raw dataset.
    ///
    /// The store is **read-only**: [`append`](Self::append) fails with
    /// `PermissionDenied`. Every failure mode is a typed [`OpenError`];
    /// opening never panics and never yields a silently wrong index.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, OpenError> {
        let dir = dir.as_ref();
        let (store, manifest) = DiskStore::open_read_only(dir)?;
        let skel_bytes = std::fs::read(dir.join(SKELETON_FILE)).map_err(OpenError::Io)?;
        let found = xxh64(&skel_bytes, 0);
        if found != manifest.skeleton.checksum || skel_bytes.len() as u64 != manifest.skeleton.bytes
        {
            return Err(OpenError::ChecksumMismatch {
                what: "skeleton".into(),
                expected: manifest.skeleton.checksum,
                found,
            });
        }
        let skeleton =
            IndexSkeleton::from_bytes(&skel_bytes).map_err(OpenError::CorruptSkeleton)?;
        if skeleton.partition_ids() != manifest.partition_ids() {
            return Err(OpenError::StoreMismatch(format!(
                "skeleton references {} partitions, manifest lists {}",
                skeleton.num_partitions(),
                manifest.partitions.len()
            )));
        }
        let config = ClimberConfig::decode_vec(&manifest.config)
            .map_err(|e| OpenError::CorruptManifest(format!("config: {e}")))?;
        let mut c = Self::assemble(skeleton, store, config, None);
        // The manifest records the largest stored id, so cold start needs
        // no full scan to seed the append counter.
        c.next_id = AtomicU64::new(manifest.max_series_id.map_or(0, |m| m + 1));
        c.mark_ready();
        Ok(c)
    }
}

impl<S: PartitionStore> Climber<S> {
    /// Wraps an existing skeleton + store (advanced; used by the bench
    /// harness to share stores between algorithms). The configuration is
    /// reconstructed from the skeleton's persisted parameters; build-only
    /// knobs (α, capacity, workers) take their defaults.
    pub fn from_parts(skeleton: IndexSkeleton, store: S) -> Self {
        let config = ClimberConfig::default()
            .with_paa_segments(skeleton.paa_segments)
            .with_pivots(skeleton.pivots.len())
            .with_prefix_len(skeleton.prefix_len)
            .with_decay(skeleton.decay)
            .with_seed(skeleton.seed);
        let mut c = Self::assemble(skeleton, store, config, None);
        c.seed_next_id_by_scan();
        c.mark_ready();
        c
    }

    fn assemble(
        skeleton: IndexSkeleton,
        store: S,
        config: ClimberConfig,
        report: Option<BuildReport>,
    ) -> Self {
        Self {
            skeleton,
            store,
            config,
            build_options: BuildOptions::default(),
            report,
            next_id: AtomicU64::new(0),
            ready_io: Mutex::new(IoSnapshot::default()),
        }
    }

    /// Snapshots store I/O as the serve-phase zero point. Called at the
    /// end of every constructor so build reads/writes (and save's reads)
    /// are never double-counted into serve-phase measurements.
    fn mark_ready(&mut self) {
        *self.ready_io.lock().unwrap() = self.store.stats().snapshot();
    }

    /// Persists the index into `dir` as a self-validating directory:
    /// every partition file, the serialised skeleton, and — written last,
    /// via temp file + atomic rename — the [`Manifest`] holding the
    /// format version, the build [`ClimberConfig`], a dataset
    /// fingerprint, and per-file byte ranges + xxHash64 checksums.
    ///
    /// Works for any store backend, so an index built in memory can be
    /// handed to a separate serve process. A crash before the final
    /// rename leaves no valid manifest, so [`Climber::open`] can never
    /// observe a half-written index. Returns the written manifest.
    ///
    /// The partition reads save performs for checksumming are excluded
    /// from [`serve_io`](Self::serve_io): the phase zero point advances
    /// past them when save completes.
    pub fn save(&self, dir: impl AsRef<Path>) -> io::Result<Manifest> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let ids = self.store.ids();
        if ids.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot save an index with no partitions",
            ));
        }
        let io_before = self.store.stats().snapshot();
        // Partition copy + checksum is per-partition independent; fan it
        // out over the build's thread count with the cluster's
        // order-preserving map, keeping the manifest's partition list in
        // ascending-id order. The copy is deliberate even when the store
        // already lives in `dir`: the builder's puts are plain writes,
        // while a sealed manifest must only ever reference files that
        // went through the temp-file + fsync + rename protocol.
        let cluster = climber_dfs::cluster::Cluster::new(self.build_options.resolved_threads());
        let copied: Vec<io::Result<(PartitionEntry, u32)>> = cluster.par_map(ids, |pid| {
            let reader = self.store.open(pid)?;
            let bytes = reader.raw_bytes();
            manifest::write_file_atomic(&dir.join(partition_file_name(pid)), bytes)?;
            Ok((
                PartitionEntry {
                    id: pid,
                    bytes: bytes.len() as u64,
                    checksum: xxh64(bytes, 0),
                    records: reader.record_count(),
                },
                reader.series_len() as u32,
            ))
        });
        let mut partitions = Vec::with_capacity(copied.len());
        let mut num_records = 0u64;
        let mut series_len = 0u32;
        for entry in copied {
            let (p, sl) = entry?;
            num_records += p.records;
            series_len = sl;
            partitions.push(p);
        }
        let skel = self.skeleton.to_bytes();
        manifest::write_file_atomic(&dir.join(SKELETON_FILE), &skel)?;
        let m = Manifest {
            format_version: FORMAT_VERSION,
            config: self.config.encode_vec(),
            fingerprint: Manifest::fingerprint_of(series_len, num_records, &partitions),
            num_records,
            max_series_id: self.next_id.load(Ordering::Relaxed).checked_sub(1),
            series_len,
            skeleton: FileEntry {
                bytes: skel.len() as u64,
                checksum: xxh64(&skel, 0),
            },
            partitions,
        };
        m.write_atomic(dir)?;
        // Advance the serve-phase zero point past save's own checksum
        // reads so they never show up as query traffic. (Queries racing a
        // concurrent save may be partially absorbed too; save while
        // measuring serve I/O is not a meaningful combination.)
        let save_io = self.store.stats().snapshot().since(&io_before);
        let mut ready = self.ready_io.lock().unwrap();
        *ready = IoSnapshot {
            partitions_written: ready.partitions_written + save_io.partitions_written,
            partitions_opened: ready.partitions_opened + save_io.partitions_opened,
            bytes_written: ready.bytes_written + save_io.bytes_written,
            bytes_read: ready.bytes_read + save_io.bytes_read,
            records_shuffled: ready.records_shuffled + save_io.records_shuffled,
            records_read: ready.records_read + save_io.records_read,
        };
        Ok(m)
    }

    /// CLIMBER-kNN (Algorithm 3): approximate `k` nearest neighbours.
    /// Results are `(series id, squared ED)` ascending.
    pub fn knn(&self, query: &[f32], k: usize) -> QueryOutcome {
        KnnEngine::new(&self.skeleton, &self.store).knn(query, k)
    }

    /// CLIMBER-kNN-Adaptive with a partition budget of `factor ×` the plain
    /// plan (the paper evaluates 2X and 4X; 4X is its default variation).
    pub fn knn_adaptive(&self, query: &[f32], k: usize, factor: usize) -> QueryOutcome {
        KnnEngine::new(&self.skeleton, &self.store).knn_adaptive(query, k, factor)
    }

    /// The OD-Smallest full-group scan (ablation baseline, Figure 11(b)).
    pub fn od_smallest(&self, query: &[f32], k: usize) -> QueryOutcome {
        KnnEngine::new(&self.skeleton, &self.store).od_smallest(query, k)
    }

    /// Executes a whole [`BatchRequest`] partition-major across threads:
    /// the union of all per-query plans is regrouped by partition, each
    /// partition is opened once, each needed cluster decoded once, and the
    /// decoded records are scored against every query that selected them.
    /// Per-query outcomes are bit-identical to the sequential methods —
    /// see [`climber_query::batch`] for the execution model.
    ///
    /// ```
    /// use climber_core::{BatchRequest, Climber, ClimberConfig};
    /// use climber_core::series::gen::Domain;
    ///
    /// let data = Domain::RandomWalk.generate(500, 3);
    /// let climber = Climber::build_in_memory(&data, ClimberConfig::default()
    ///     .with_pivots(32).with_capacity(100));
    /// let queries: Vec<Vec<f32>> = (0..16u64).map(|i| data.get(i * 31).to_vec()).collect();
    ///
    /// let batch = climber.batch(&BatchRequest::adaptive(&queries, 10, 4));
    /// assert_eq!(batch.outcomes.len(), 16);
    /// assert_eq!(batch.outcomes[0], climber.knn_adaptive(&queries[0], 10, 4));
    /// ```
    pub fn batch(&self, request: &BatchRequest<'_>) -> BatchOutcome {
        KnnEngine::new(&self.skeleton, &self.store).batch(request)
    }

    /// Batch evaluation of CLIMBER-kNN-Adaptive over many queries — the
    /// sustained-throughput workload (queries/second) the Lernaean Hydra
    /// evaluation measures engines by. A convenience wrapper over
    /// [`batch`](Self::batch) returning just the per-query outcomes.
    pub fn knn_batch(&self, queries: &[Vec<f32>], k: usize, factor: usize) -> Vec<QueryOutcome> {
        self.batch(&BatchRequest::adaptive(queries, k, factor))
            .outcomes
    }

    /// Approximate kNN for a query *shorter or longer* than the indexed
    /// series length: the query is linearly resampled to the index length
    /// first (§II: PAA-family representations support shorter queries,
    /// unlike DFT/wavelet indexes).
    ///
    /// Distances in the result are squared ED between the resampled query
    /// and the stored series.
    pub fn knn_resampled(&self, query: &[f32], k: usize, factor: usize) -> QueryOutcome {
        let target = self.series_len_hint().unwrap_or(query.len());
        let full = climber_series::resample::resample_linear(query, target);
        self.knn_adaptive(&full, k, factor)
    }

    /// The indexed series length, recovered from any stored partition.
    fn series_len_hint(&self) -> Option<usize> {
        let pid = *self.store.ids().first()?;
        self.store.open(pid).ok().map(|r| r.series_len())
    }

    /// Scans the store once to seed the append id counter (reopened
    /// indexes skip this — the manifest records the largest id).
    fn seed_next_id_by_scan(&mut self) {
        let mut max_id: Option<u64> = None;
        for pid in self.store.ids() {
            if let Ok(reader) = self.store.open(pid) {
                reader.for_each(|id, _| {
                    max_id = Some(max_id.map_or(id, |m| m.max(id)));
                });
            }
        }
        self.next_id
            .store(max_id.map_or(0, |m| m + 1), Ordering::Relaxed);
    }

    /// Appends a new series to the built index, returning its assigned id.
    ///
    /// The paper's prototype is batch-built; appends are the natural
    /// maintenance extension: the record is routed with the frozen skeleton
    /// (pivots and centroids never change, §V Step 1) and its target
    /// partition is rewritten with the record added to the right trie-node
    /// cluster. Capacity remains a soft constraint, exactly as for unseen
    /// signatures during the initial build.
    ///
    /// # Panics
    /// If the series length differs from the indexed length.
    pub fn append(&self, values: &[f32]) -> io::Result<u64> {
        let expected = self.series_len_hint().unwrap_or(values.len());
        assert_eq!(
            values.len(),
            expected,
            "appended series length {} != indexed length {expected}",
            values.len()
        );
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let placement = self.skeleton.place(values, id);

        // Rewrite the target partition with the record added to its
        // cluster (clusters stay contiguous; directory is rebuilt).
        let reader = self.store.open(placement.partition)?;
        let mut clusters: BTreeMap<u64, Vec<(u64, Vec<f32>)>> = BTreeMap::new();
        for node in reader.cluster_ids() {
            let mut recs = Vec::new();
            reader.for_each_in_cluster(node, |rid, vals| recs.push((rid, vals.to_vec())));
            clusters.insert(node, recs);
        }
        clusters
            .entry(placement.node)
            .or_default()
            .push((id, values.to_vec()));
        let mut writer = PartitionWriter::new(reader.group_id(), expected);
        for (node, recs) in &clusters {
            writer.push_cluster(*node, recs.iter().map(|(rid, v)| (*rid, v.as_slice())));
        }
        self.store.put(placement.partition, writer.finish())?;
        Ok(id)
    }

    /// Appends a batch of series, returning their assigned ids.
    pub fn append_batch(&self, series: &[Vec<f32>]) -> io::Result<Vec<u64>> {
        series.iter().map(|v| self.append(v)).collect()
    }

    /// The global index skeleton.
    pub fn skeleton(&self) -> &IndexSkeleton {
        &self.skeleton
    }

    /// The partition store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The build report (absent for re-opened indexes).
    pub fn report(&self) -> Option<&BuildReport> {
        self.report.as_ref()
    }

    /// The index configuration: the exact build parameters for built
    /// indexes, restored from the manifest for reopened ones.
    pub fn config(&self) -> &ClimberConfig {
        &self.config
    }

    /// The execution options the index was built with (defaults for
    /// reopened or wrapped indexes). Options never affect index content —
    /// only how fast it was produced.
    pub fn build_options(&self) -> &BuildOptions {
        &self.build_options
    }

    /// Store I/O performed since the index became servable — partitions
    /// opened, bytes and records read by queries alone. Build-phase I/O
    /// (and the reads [`save`](Self::save) performs) is excluded by a
    /// snapshot taken at the build/serve phase boundary, so benchmarks on
    /// a shared store never double-count construction traffic.
    pub fn serve_io(&self) -> IoSnapshot {
        self.store
            .stats()
            .snapshot()
            .since(&self.ready_io.lock().unwrap())
    }

    /// Serialised global index size in bytes (Figure 8(b)'s metric).
    pub fn global_index_bytes(&self) -> usize {
        self.skeleton.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_series::gen::Domain;

    fn small_cfg() -> ClimberConfig {
        ClimberConfig::default()
            .with_paa_segments(8)
            .with_pivots(32)
            .with_prefix_len(5)
            .with_capacity(60)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(7)
            .with_workers(2)
    }

    #[test]
    fn facade_quickstart_flow() {
        let ds = Domain::RandomWalk.generate(300, 1);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let out = climber.knn(ds.get(5), 10);
        assert_eq!(out.results.len(), 10);
        assert!(climber.report().is_some());
        assert!(climber.global_index_bytes() > 0);
    }

    #[test]
    fn explicit_build_options_match_default_build() {
        let ds = Domain::RandomWalk.generate(280, 21);
        let a = Climber::build_in_memory(&ds, small_cfg());
        let b = Climber::build_in_memory_with(
            &ds,
            small_cfg(),
            BuildOptions::default().with_threads(8).with_block_size(17),
        );
        assert_eq!(
            a.skeleton().to_bytes(),
            b.skeleton().to_bytes(),
            "thread/block options changed the skeleton"
        );
        assert_eq!(b.build_options().threads, 8);
        assert_eq!(b.report().unwrap().threads, 8);
        let q = ds.get(11);
        assert_eq!(a.knn(q, 10), b.knn(q, 10));
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("climber-core-{}", std::process::id()));
        let ds = Domain::Eeg.generate(200, 2);
        let built = Climber::build_on_disk(&ds, &dir, small_cfg()).unwrap();
        let a = built.knn(ds.get(3), 5);
        let reopened = Climber::open(&dir).unwrap();
        let b = reopened.knn(ds.get(3), 5);
        assert_eq!(a.results, b.results);
        assert!(reopened.report().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_missing_dir_fails() {
        assert!(Climber::open("/nonexistent/climber-index").is_err());
    }

    #[test]
    fn adaptive_and_od_smallest_accessible() {
        let ds = Domain::TexMex.generate(250, 3);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let q = ds.get(9);
        let a = climber.knn_adaptive(q, 50, 4);
        let o = climber.od_smallest(q, 50);
        assert!(!a.results.is_empty());
        assert!(o.records_scanned >= a.records_scanned || o.plan.num_partitions() >= 1);
    }

    #[test]
    fn batch_matches_sequential() {
        let ds = Domain::RandomWalk.generate(300, 4);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let queries: Vec<Vec<f32>> = (0..6u64).map(|i| ds.get(i * 40).to_vec()).collect();
        let batch = climber.knn_batch(&queries, 10, 4);
        for (q, out) in queries.iter().zip(batch.iter()) {
            assert_eq!(out, &climber.knn_adaptive(q, 10, 4));
        }
    }

    #[test]
    fn resampled_queries_of_any_length_work() {
        let ds = Domain::Eeg.generate(300, 5); // indexed length 256
        let climber = Climber::build_in_memory(&ds, small_cfg());
        for qlen in [64usize, 128, 256, 500] {
            // take a prefix (or stretch) of a real series as the probe
            let src = ds.get(7);
            let probe: Vec<f32> = climber_series::resample::resample_linear(src, qlen);
            let out = climber.knn_resampled(&probe, 5, 2);
            assert_eq!(out.results.len(), 5, "qlen={qlen}");
            if qlen == 256 {
                // exact length: the probe equals the source series
                assert_eq!(out.results[0].0, 7);
            }
        }
    }

    #[test]
    fn append_routes_and_is_findable() {
        let ds = Domain::RandomWalk.generate(300, 7);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        // append a copy of an existing series with slight noise
        let mut probe = ds.get(42).to_vec();
        probe[0] += 0.001;
        let new_id = climber.append(&probe).unwrap();
        assert_eq!(new_id, 300, "ids continue after the build");
        // the appended record must be findable by an identical query
        let out = climber.knn(&probe, 5);
        assert_eq!(
            out.results[0],
            (new_id, 0.0),
            "appended record not retrieved: {:?}",
            out.results
        );
        // and replaying placement agrees with where it physically is
        let placement = climber.skeleton().place(&probe, new_id);
        let mut found = false;
        climber
            .store()
            .open(placement.partition)
            .unwrap()
            .for_each_in_cluster(placement.node, |id, _| {
                found |= id == new_id;
            });
        assert!(found);
    }

    #[test]
    fn append_batch_assigns_distinct_ids() {
        let ds = Domain::Eeg.generate(200, 8);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let batch: Vec<Vec<f32>> = (0..5u64).map(|i| ds.get(i * 13).to_vec()).collect();
        let ids = climber.append_batch(&batch).unwrap();
        assert_eq!(ids, vec![200, 201, 202, 203, 204]);
        // total records grew accordingly
        let mut total = 0u64;
        for pid in climber.store().ids() {
            total += climber.store().open(pid).unwrap().record_count();
        }
        assert_eq!(total, 205);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn append_wrong_length_panics() {
        let ds = Domain::Dna.generate(100, 9);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let _ = climber.append(&[1.0, 2.0]);
    }

    #[test]
    fn serve_io_excludes_build_phase() {
        let ds = Domain::RandomWalk.generate(300, 10);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let build_io = climber.report().unwrap().io;
        assert!(build_io.partitions_written > 0, "build wrote partitions");
        // Phase boundary: before any query, serve-phase I/O is zero even
        // though the shared store's counters still hold the build traffic.
        assert_eq!(
            climber.serve_io(),
            climber_dfs::stats::IoSnapshot::default()
        );

        climber.knn(ds.get(1), 5);
        let serve = climber.serve_io();
        assert!(serve.partitions_opened > 0, "query opened partitions");
        assert_eq!(serve.partitions_written, 0, "serving writes nothing");
        assert!(
            serve.bytes_read < build_io.bytes_read + build_io.bytes_written,
            "serve I/O must not re-count build traffic"
        );
        // The build report is a snapshot: serving does not mutate it.
        assert_eq!(climber.report().unwrap().io, build_io);

        // An explicit save() advances the phase boundary past its own
        // checksum reads: serve-phase I/O stays query-only.
        let dir = std::env::temp_dir().join(format!("climber-core-save-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        climber.save(&dir).unwrap();
        assert_eq!(
            climber.serve_io(),
            serve,
            "save's reads leaked into serve-phase I/O"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_and_reopened_serve_io_starts_clean() {
        let dir = std::env::temp_dir().join(format!("climber-core-io-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ds = Domain::Eeg.generate(200, 12);
        let built = Climber::build_on_disk(&ds, &dir, small_cfg()).unwrap();
        // build_on_disk's save() re-reads partitions for checksumming;
        // none of that leaks into the serve phase.
        assert_eq!(built.serve_io(), climber_dfs::stats::IoSnapshot::default());

        let reopened = Climber::open(&dir).unwrap();
        assert_eq!(
            reopened.serve_io(),
            climber_dfs::stats::IoSnapshot::default()
        );
        reopened.knn(ds.get(3), 5);
        assert!(reopened.serve_io().partitions_opened > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn skeleton_summary_is_readable() {
        let ds = Domain::RandomWalk.generate(300, 6);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let s = climber.skeleton().summary();
        assert!(s.contains("CLIMBER index skeleton"));
        assert!(s.contains("[G0, <*,*,...>]"));
        assert!(s.lines().count() >= climber.skeleton().groups.len());
    }
}
