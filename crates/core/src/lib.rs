//! # CLIMBER — pivot-based approximate similarity search over big data series
//!
//! A from-scratch Rust reproduction of *"CLIMBER++: Pivot-Based Approximate
//! Similarity Search over Big Data Series"* (ICDE 2024). CLIMBER extracts a
//! dual pivot-permutation-prefix signature from every series (rank-sensitive
//! `P4→` and rank-insensitive `P4↛`), organises the data into a two-level
//! index — rank-insensitive *groups* refined by rank-sensitive *tries* into
//! capacity-bounded partitions — and answers approximate kNN queries by
//! navigating that index and refining with Euclidean distance inside a
//! handful of partitions.
//!
//! ## Quick start
//!
//! ```
//! use climber_core::{Climber, ClimberConfig};
//! use climber_core::series::gen::Domain;
//!
//! // 1. a dataset of 2 000 random-walk series (the standard benchmark)
//! let data = Domain::RandomWalk.generate(2_000, 42);
//!
//! // 2. build the index in memory (use `build_on_disk` for persistence)
//! let config = ClimberConfig::default()
//!     .with_pivots(64)
//!     .with_prefix_len(8)
//!     .with_capacity(250)
//!     .with_alpha(0.2);
//! let climber = Climber::build_in_memory(&data, config);
//!
//! // 3. approximate 10-NN of any query series, through the unified
//! //    request API (`SearchRequest` defaults to Adaptive-4X, the
//! //    paper's default variation)
//! use climber_core::SearchRequest;
//! let answer = climber.search(&SearchRequest::new(data.get(17), 10));
//! assert_eq!(answer.results.len(), 10);
//! assert_eq!(answer.results[0].0, 17); // the query itself is indexed
//!
//! // 4. the approximate answer overlaps the exact one (recall@10 > 0)
//! use climber_core::series::{exact_knn, recall};
//! let exact = exact_knn(&data, data.get(17), 10);
//! let approx_ids: Vec<u64> = answer.results.iter().map(|&(id, _)| id).collect();
//! let exact_ids: Vec<u64> = exact.iter().map(|&(id, _)| id).collect();
//! assert!(recall(&approx_ids, &exact_ids) > 0.0);
//! ```
//!
//! The sibling crates are re-exported under short names: [`series`]
//! (datasets, generators, ground truth), [`repr`] (PAA/SAX/iSAX),
//! [`pivot`] (signatures and metrics), [`dfs`] (storage substrate),
//! [`index`] (skeleton/builder), [`query`] (search algorithms) and
//! [`baselines`] (Dss, DPiSAX-like, TARDIS-like, LSH, HNSW, Odyssey-like).

#![warn(missing_docs)]

pub mod error;
pub mod recover;
pub mod shard;

pub use climber_baselines as baselines;
pub use climber_dfs as dfs;
pub use climber_index as index;
pub use climber_pivot as pivot;
pub use climber_query as query;
pub use climber_repr as repr;
pub use climber_series as series;

pub use climber_dfs::manifest::{Manifest, OpenError, FORMAT_VERSION, MANIFEST_FILE};
pub use climber_dfs::page::{BlockCache, BlockCacheStats, CacheConfig};
pub use climber_dfs::segment::{DeltaSegment, TombstoneSet, JOURNAL_FILE};
pub use climber_dfs::stats::IoSnapshot;
pub use climber_index::builder::{BuildOptions, BuildReport};
pub use climber_index::config::IndexConfig as ClimberConfig;
pub use climber_index::skeleton::IndexSkeleton;
pub use climber_query::batch::{BatchOutcome, BatchRequest, BatchStrategy};
pub use climber_query::plan::QueryOutcome;
pub use climber_query::search::{SearchMode, SearchRequest};
pub use climber_query::updates::UpdateView;
pub use error::{ClimberError, ServeError};
pub use recover::{BackendHealth, RecoveryPolicy, RecoveryReport, ScrubReport};
pub use shard::{ShardSetManifest, ShardStatus, ShardedClimber, SHARD_SET_FILE};

use climber_dfs::format::{Decode, Encode, PartitionWriter, TrieNodeId};
use climber_dfs::fsio::{self, ClimberFs, FsRef};
use climber_dfs::manifest::{xxh64, FileEntry, PartitionEntry};
use climber_dfs::page;
use climber_dfs::quant::QuantCache;
use climber_dfs::segment::{self, Journal};
use climber_dfs::store::{partition_file_name, DiskStore, MemStore, PartitionId, PartitionStore};
use climber_index::builder::IndexBuilder;
use climber_pivot::signature::SignatureScratch;
use climber_query::engine::KnnEngine;
use climber_series::dataset::Dataset;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Name of the skeleton file inside a disk-backed index directory.
pub const SKELETON_FILE: &str = "skeleton.clsk";

/// What one flush or compaction did to the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Sealed partitions rewritten by this fold.
    pub partitions_rewritten: usize,
    /// Delta records folded into sealed partitions.
    pub records_folded: u64,
    /// Tombstoned records physically removed (always 0 for a flush;
    /// compaction purges them).
    pub records_purged: u64,
    /// Tombstones still pending after the fold (a flush keeps them; a
    /// compaction clears every id it purged).
    pub tombstones_remaining: u64,
    /// Segment generation after the fold.
    pub generation: u64,
}

/// A built CLIMBER index: skeleton + partition store + build report.
///
/// The sealed partitions are immutable; live updates accumulate in two
/// mutable segments — a [`DeltaSegment`] of appended records (routed with
/// the frozen skeleton, O(record) per append) and a [`TombstoneSet`] of
/// deleted ids — which every query path merges into the sealed candidate
/// stream. [`flush`](Self::flush) / [`compact`](Self::compact) fold the
/// segments back into rewritten partitions, and [`save`](Self::save)
/// persists unfolded segments as a journal next to the manifest so
/// [`open_rw`](Self::open_rw) restores a fully writable index.
#[derive(Debug)]
pub struct Climber<S: PartitionStore = MemStore> {
    skeleton: IndexSkeleton,
    store: S,
    config: ClimberConfig,
    /// Execution options the index was built with; [`save`](Self::save)
    /// reuses the same thread count for its checksum/copy fan-out.
    build_options: BuildOptions,
    report: Option<BuildReport>,
    /// Next series id for appends (1 + the largest stored id).
    next_id: AtomicU64,
    /// Appended-but-unflushed records, clustered by `(partition, node)`.
    delta: DeltaSegment,
    /// Logically deleted ids, filtered out of every query.
    tombstones: TombstoneSet,
    /// Segment generation: bumped whenever a flush/compaction rewrites
    /// sealed partitions; persisted in the manifest and the journal.
    generation: AtomicU64,
    /// False only for indexes opened via [`Climber::open`]: updates are
    /// rejected with `PermissionDenied` (use [`Climber::open_rw`]).
    writable: bool,
    /// True while a disk-backed fold has rewritten partition files that
    /// the on-disk manifest does not yet describe (set before the
    /// rewrites, cleared by a successful re-seal of the home directory).
    /// A later flush or save repairs the directory even when the fold
    /// itself has nothing left to do.
    reseal_owed: std::sync::atomic::AtomicBool,
    /// Store I/O at the moment the index became servable; the zero point
    /// for [`serve_io`](Self::serve_io). Behind a mutex because
    /// [`save`](Self::save) (which takes `&self`) advances it past its
    /// own checksum reads.
    ready_io: Mutex<IoSnapshot>,
    /// The 8-bit quantized record cache sealed cluster scans can be served
    /// from (opt-in via [`set_quant_enabled`](Self::set_quant_enabled));
    /// cleared whenever a fold rewrites sealed partitions.
    quant: QuantCache,
}

impl Climber<MemStore> {
    /// Builds an index with in-memory partitions (fastest; combine with
    /// [`save`](Self::save) for build/serve process separation). Build
    /// parallelism follows `config.workers`; use
    /// [`build_in_memory_with`](Self::build_in_memory_with) for explicit
    /// thread/block control.
    pub fn build_in_memory(ds: &Dataset, config: ClimberConfig) -> Self {
        Self::build_in_memory_with(
            ds,
            config,
            BuildOptions::default().with_threads(config.workers),
        )
    }

    /// Builds an in-memory index with explicit [`BuildOptions`] — every
    /// build phase fans out across `options` threads in record blocks,
    /// producing output bit-identical to any other thread count.
    pub fn build_in_memory_with(
        ds: &Dataset,
        config: ClimberConfig,
        options: BuildOptions,
    ) -> Self {
        let store = MemStore::new();
        let (skeleton, report) = IndexBuilder::with_options(config, options).build(ds, &store);
        let mut c = Self::assemble(skeleton, store, config, Some(report));
        c.build_options = options;
        c.seed_next_id_by_scan();
        c.mark_ready();
        c
    }
}

impl Climber<DiskStore> {
    /// Builds a disk-backed index under `dir` — partition files, the
    /// serialised skeleton, and the checksummed [`Manifest`] — the
    /// paper's deployment mode. The directory can be reopened cold with
    /// [`Climber::open`], in this or any later process.
    pub fn build_on_disk(
        ds: &Dataset,
        dir: impl AsRef<Path>,
        config: ClimberConfig,
    ) -> Result<Self, ClimberError> {
        Self::build_on_disk_with(
            ds,
            dir,
            config,
            BuildOptions::default().with_threads(config.workers),
        )
    }

    /// [`build_on_disk`](Self::build_on_disk) with explicit
    /// [`BuildOptions`]: build phases, partition writes, and the sealing
    /// save's checksum pass all fan out across `options` threads. The
    /// resulting directory is byte-identical for any thread count.
    pub fn build_on_disk_with(
        ds: &Dataset,
        dir: impl AsRef<Path>,
        config: ClimberConfig,
        options: BuildOptions,
    ) -> Result<Self, ClimberError> {
        let store = DiskStore::new(dir.as_ref())?;
        let (skeleton, report) = IndexBuilder::with_options(config, options).build(ds, &store);
        let mut c = Self::assemble(skeleton, store, config, Some(report));
        c.build_options = options;
        c.seed_next_id_by_scan();
        c.save(dir)?;
        c.mark_ready();
        Ok(c)
    }

    /// Cold-starts a previously saved index: validates the manifest
    /// (magic, format version, self-checksum), every partition file's
    /// byte range and checksum, the skeleton's checksum, the
    /// manifest/skeleton partition-set agreement, and — when the manifest
    /// references one — the update journal's checksum and segment
    /// generation. Pending appends and deletes from the journal are
    /// restored, so queries see exactly the state that was saved, with no
    /// access to the original raw dataset.
    ///
    /// The index is **read-only**: [`append`](Self::append),
    /// [`delete`](Self::delete) and [`flush`](Self::flush) fail with
    /// `PermissionDenied` — reopen with [`open_rw`](Self::open_rw) to
    /// keep updating. Every failure mode is a typed [`OpenError`]
    /// (surfaced as [`ClimberError::Open`]); opening never panics and
    /// never yields a silently wrong index.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, ClimberError> {
        Ok(Self::open_impl(dir.as_ref(), false)?)
    }

    /// [`open`](Self::open) with updates enabled: the exact same
    /// validation, but the store accepts partition rewrites, so the
    /// reopened index absorbs [`append`](Self::append) /
    /// [`delete`](Self::delete) and can [`flush`](Self::flush) them into
    /// its sealed partitions — the serve-and-ingest deployment mode.
    pub fn open_rw(dir: impl AsRef<Path>) -> Result<Self, ClimberError> {
        Ok(Self::open_impl(dir.as_ref(), true)?)
    }

    /// [`open_rw`](Self::open_rw) through an injectable filesystem — the
    /// fault-injection seam: every read, write, fsync, and rename the
    /// index performs from open validation through save/flush goes
    /// through `fs`, so a [`FaultFs`](climber_dfs::fsio::FaultFs) can
    /// fail or freeze any single operation deterministically (the
    /// crash-consistency torture harness drives exactly this entry
    /// point).
    pub fn open_rw_with_fs(dir: impl AsRef<Path>, fs: FsRef) -> Result<Self, ClimberError> {
        Ok(Self::open_impl_fs(dir.as_ref(), true, fs, RecoveryPolicy::Strict)?.0)
    }

    /// A self-healing read-write open. Under
    /// [`RecoveryPolicy::Quarantine`], a partition whose committed bytes
    /// fail validation (missing, truncated, checksum mismatch) no longer
    /// aborts the open: its file is moved into the directory's
    /// `QUARANTINE/` subdirectory, the failure is recorded in the
    /// returned [`RecoveryReport`], and the index opens serving every
    /// partition that did validate. Queries then degrade instead of
    /// erroring — [`search_many_with_status`] reports the failed
    /// partitions per pass — and a later [`scrub`](Self::scrub) can
    /// re-admit a partition once its bytes are restored. With
    /// [`RecoveryPolicy::Strict`] this is exactly
    /// [`open_rw`](Self::open_rw).
    ///
    /// [`search_many_with_status`]: Self::search_many_with_status
    pub fn open_with(
        dir: impl AsRef<Path>,
        policy: RecoveryPolicy,
    ) -> Result<(Self, RecoveryReport), ClimberError> {
        let (c, quarantined) = Self::open_impl_fs(dir.as_ref(), true, fsio::std_fs(), policy)?;
        Ok((
            c,
            RecoveryReport {
                quarantined_partitions: quarantined,
                dead_shards: Vec::new(),
                warmed_bytes: 0,
            },
        ))
    }

    /// [`open_with`](Self::open_with) plus a paged block cache sized by
    /// `config`: every partition open first consults a sharded LRU of
    /// decompressed partition images, the open's own validation reads
    /// pre-warm it (the report's
    /// [`warmed_bytes`](RecoveryReport::warmed_bytes)), and — when
    /// [`CacheConfig::compress`] is set — maintenance rewrites land in
    /// the compressed CLBP v2 format. Answers are **bit-identical** to a
    /// cacheless open: the cache only changes where bytes come from,
    /// never what they decode to.
    pub fn open_with_cache(
        dir: impl AsRef<Path>,
        policy: RecoveryPolicy,
        config: CacheConfig,
    ) -> Result<(Self, RecoveryReport), ClimberError> {
        let cache = Arc::new(BlockCache::new(config));
        Self::open_with_cache_shared(dir, policy, config, cache)
    }

    /// [`open_with_cache`](Self::open_with_cache) against a **shared**
    /// cache — the entry point a shard set (or any co-located group of
    /// indexes) uses so every member draws from one byte budget. Entries
    /// are namespaced per store, so two indexes never serve each other's
    /// partitions even under the same id.
    pub fn open_with_cache_shared(
        dir: impl AsRef<Path>,
        policy: RecoveryPolicy,
        config: CacheConfig,
        cache: Arc<BlockCache>,
    ) -> Result<(Self, RecoveryReport), ClimberError> {
        Ok(Self::open_cached_impl(
            dir.as_ref(),
            fsio::std_fs(),
            policy,
            config,
            cache,
        )?)
    }

    /// [`open_with_cache`](Self::open_with_cache) through an injectable
    /// filesystem — the fault-injection seam for the cached read and
    /// compressed write paths, mirroring
    /// [`open_rw_with_fs`](Self::open_rw_with_fs).
    pub fn open_with_cache_fs(
        dir: impl AsRef<Path>,
        fs: FsRef,
        policy: RecoveryPolicy,
        config: CacheConfig,
    ) -> Result<(Self, RecoveryReport), ClimberError> {
        let cache = Arc::new(BlockCache::new(config));
        Ok(Self::open_cached_impl(
            dir.as_ref(),
            fs,
            policy,
            config,
            cache,
        )?)
    }

    pub(crate) fn open_cached_impl(
        dir: &Path,
        fs: FsRef,
        policy: RecoveryPolicy,
        config: CacheConfig,
        cache: Arc<BlockCache>,
    ) -> Result<(Self, RecoveryReport), OpenError> {
        let (c, quarantined, warmed_bytes) =
            Self::open_impl_cached(dir, true, fs, policy, Some(cache), config.compress)?;
        Ok((
            c,
            RecoveryReport {
                quarantined_partitions: quarantined,
                dead_shards: Vec::new(),
                warmed_bytes,
            },
        ))
    }

    /// Turns compressed (CLBP v2) partition writes on or off for this
    /// disk-backed index: subsequent [`save`](Self::save) copies, flushes
    /// and compactions land compressed partitions; reads auto-detect the
    /// format per file, so mixed directories stay valid and answers stay
    /// bit-identical.
    pub fn set_compress_on_seal(&self, on: bool) {
        self.store.set_compress_puts(on);
    }

    fn open_impl(dir: &Path, writable: bool) -> Result<Self, OpenError> {
        Ok(Self::open_impl_fs(dir, writable, fsio::std_fs(), RecoveryPolicy::Strict)?.0)
    }

    fn open_impl_fs(
        dir: &Path,
        writable: bool,
        fs: FsRef,
        policy: RecoveryPolicy,
    ) -> Result<(Self, Vec<PartitionId>), OpenError> {
        let (c, quarantined, _) = Self::open_impl_cached(dir, writable, fs, policy, None, false)?;
        Ok((c, quarantined))
    }

    fn open_impl_cached(
        dir: &Path,
        writable: bool,
        fs: FsRef,
        policy: RecoveryPolicy,
        cache: Option<Arc<BlockCache>>,
        compress: bool,
    ) -> Result<(Self, Vec<PartitionId>, u64), OpenError> {
        let quarantine = policy == RecoveryPolicy::Quarantine;
        let (store, manifest, warmed_bytes) = DiskStore::open_validated_cached(
            dir.to_path_buf(),
            !writable,
            fs.clone(),
            quarantine,
            cache,
        )?;
        if compress {
            store.set_compress_puts(true);
        }
        let skel_path = dir.join(SKELETON_FILE);
        let skel_staged = dir.join(format!("{SKELETON_FILE}.new"));
        let entry_matches = |b: &[u8]| {
            b.len() as u64 == manifest.skeleton.bytes && xxh64(b, 0) == manifest.skeleton.checksum
        };
        // The committed skeleton, rolled forward from its `.new` sibling
        // when a crash interrupted a seal between the manifest commit and
        // the skeleton install (same protocol as partition files).
        let skel_bytes = match fs.read(&skel_path) {
            Ok(b) if entry_matches(&b) => {
                if writable {
                    fs.remove_file(&skel_staged).ok();
                }
                b
            }
            main => match fs.read(&skel_staged) {
                Ok(b) if entry_matches(&b) => {
                    if writable && fs.rename(&skel_staged, &skel_path).is_ok() {
                        fs.fsync_dir(dir).ok();
                    }
                    b
                }
                _ => {
                    return Err(match main {
                        Ok(b) => OpenError::ChecksumMismatch {
                            what: "skeleton".into(),
                            expected: manifest.skeleton.checksum,
                            found: xxh64(&b, 0),
                        },
                        Err(e) => OpenError::Io(e),
                    })
                }
            },
        };
        let skeleton =
            IndexSkeleton::from_bytes(&skel_bytes).map_err(OpenError::CorruptSkeleton)?;
        if skeleton.partition_ids() != manifest.partition_ids() {
            return Err(OpenError::StoreMismatch(format!(
                "skeleton references {} partitions, manifest lists {}",
                skeleton.num_partitions(),
                manifest.partitions.len()
            )));
        }
        let config = ClimberConfig::decode_vec(&manifest.config)
            .map_err(|e| OpenError::CorruptManifest(format!("config: {e}")))?;
        let journal = Self::load_journal(&*fs, dir, &manifest, writable)?;
        let quarantined = store.quarantined();
        let mut c = Self::assemble(skeleton, store, config, None);
        // The manifest records the largest stored id, so cold start needs
        // no full scan to seed the append counter.
        c.next_id = AtomicU64::new(manifest.max_series_id.map_or(0, |m| m + 1));
        c.delta = journal.delta;
        c.tombstones = journal.tombstones;
        c.generation = AtomicU64::new(manifest.generation);
        c.writable = writable;
        // A cached open unifies the byte budgets: quantized codes charge
        // the block cache's ledger, so blocks + codes together never
        // exceed the one configured capacity.
        if let Some(block) = c.store.block_cache() {
            c.quant.set_ledger(Some(block.ledger()));
        }
        c.mark_ready();
        Ok((c, quarantined, warmed_bytes))
    }

    /// Reads, validates and decodes the update journal the manifest
    /// references; an empty [`Journal`] when it references none. A crash
    /// between the manifest commit and the journal install leaves the
    /// committed bytes under `journal.cldj.new` — they are rolled forward
    /// here, so the open serves exactly the committed updates.
    fn load_journal(
        fs: &dyn ClimberFs,
        dir: &Path,
        m: &Manifest,
        writable: bool,
    ) -> Result<Journal, OpenError> {
        let Some(entry) = &m.journal else {
            if writable {
                // A crash before the manifest commit can leave a staged
                // journal the committed manifest never references —
                // pre-commit garbage, swept like a `.new` partition.
                fs.remove_file(&segment::staged_journal_path(dir)).ok();
            }
            return Ok(Journal::default());
        };
        let path = segment::journal_path(dir);
        let staged = segment::staged_journal_path(dir);
        let entry_matches =
            |b: &[u8]| b.len() as u64 == entry.bytes && xxh64(b, 0) == entry.checksum;
        let decode = |bytes: &[u8]| -> Result<Journal, OpenError> {
            let journal = segment::decode_journal(bytes).map_err(OpenError::CorruptJournal)?;
            if journal.generation != m.generation {
                return Err(OpenError::StaleGeneration {
                    manifest: m.generation,
                    journal: journal.generation,
                });
            }
            Ok(journal)
        };
        let main = fs.read(&path);
        if let Ok(b) = &main {
            if entry_matches(b) {
                if writable {
                    fs.remove_file(&staged).ok();
                }
                return decode(b);
            }
        }
        if let Ok(b) = fs.read(&staged) {
            if entry_matches(&b) {
                if writable && fs.rename(&staged, &path).is_ok() {
                    fs.fsync_dir(dir).ok();
                }
                return decode(&b);
            }
        }
        // No committed journal anywhere: surface the main file's typed
        // failure, exactly as if no staged sibling existed.
        match main {
            Ok(bytes) => {
                if bytes.len() as u64 != entry.bytes {
                    Err(OpenError::CorruptJournal(format!(
                        "journal is {} bytes, manifest says {}",
                        bytes.len(),
                        entry.bytes
                    )))
                } else {
                    Err(OpenError::ChecksumMismatch {
                        what: "journal".into(),
                        expected: entry.checksum,
                        found: xxh64(&bytes, 0),
                    })
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Err(OpenError::MissingJournal(path)),
            Err(e) => Err(OpenError::Io(e)),
        }
    }

    /// Re-verifies every committed partition of the home directory
    /// against the sealed manifest — the self-healing maintenance pass:
    ///
    /// * healthy partitions are re-read and re-checksummed;
    /// * fresh damage is quarantined (file moved into `QUARANTINE/`,
    ///   quantized cache entries evicted) so queries degrade instead of
    ///   erroring;
    /// * previously quarantined partitions are re-admitted when their
    ///   main file matches the manifest again (operator restored it) or
    ///   the quarantined copy itself validates.
    ///
    /// Returns what the pass found and did; see [`ScrubReport`].
    pub fn scrub(&self) -> Result<ScrubReport, ClimberError> {
        let dir = self.store.dir().to_path_buf();
        let fs = self.store.fs();
        let manifest = Manifest::load_with(&*fs, &dir)?;
        let quarantined: BTreeSet<PartitionId> = self.store.quarantined().into_iter().collect();
        let mut report = ScrubReport::default();
        for e in &manifest.partitions {
            if quarantined.contains(&e.id) {
                if self.store.try_readmit(e).map_err(ClimberError::Io)? {
                    self.quant.evict_partition(e.id);
                    report.readmitted.push(e.id);
                } else {
                    report.still_quarantined.push(e.id);
                }
            } else {
                report.partitions_checked += 1;
                match self.store.verify_partition(e) {
                    Ok(()) => report.partitions_ok += 1,
                    Err(_) => {
                        self.store
                            .quarantine_partition(e.id)
                            .map_err(ClimberError::Io)?;
                        self.quant.evict_partition(e.id);
                        report.quarantined.push(e.id);
                    }
                }
            }
        }
        Ok(report)
    }
}

impl<S: PartitionStore> Climber<S> {
    /// Wraps an existing skeleton + store (advanced; used by the bench
    /// harness to share stores between algorithms). The configuration is
    /// reconstructed from the skeleton's persisted parameters; build-only
    /// knobs (α, capacity, workers) take their defaults.
    pub fn from_parts(skeleton: IndexSkeleton, store: S) -> Self {
        let config = ClimberConfig::default()
            .with_paa_segments(skeleton.paa_segments)
            .with_pivots(skeleton.pivots.len())
            .with_prefix_len(skeleton.prefix_len)
            .with_decay(skeleton.decay)
            .with_seed(skeleton.seed);
        let mut c = Self::assemble(skeleton, store, config, None);
        c.seed_next_id_by_scan();
        c.mark_ready();
        c
    }

    /// [`from_parts`](Self::from_parts) with the exact build configuration
    /// and options preserved — used by the sharded builder, whose shards
    /// are assembled from a split of an already-built store and must keep
    /// the capacity/α/worker knobs a plain skeleton does not persist.
    pub(crate) fn from_parts_with_config(
        skeleton: IndexSkeleton,
        store: S,
        config: ClimberConfig,
        options: BuildOptions,
    ) -> Self {
        let mut c = Self::assemble(skeleton, store, config, None);
        c.build_options = options;
        c.seed_next_id_by_scan();
        c.mark_ready();
        c
    }

    fn assemble(
        skeleton: IndexSkeleton,
        store: S,
        config: ClimberConfig,
        report: Option<BuildReport>,
    ) -> Self {
        Self {
            skeleton,
            store,
            config,
            build_options: BuildOptions::default(),
            report,
            next_id: AtomicU64::new(0),
            delta: DeltaSegment::new(),
            tombstones: TombstoneSet::new(),
            generation: AtomicU64::new(0),
            writable: true,
            reseal_owed: std::sync::atomic::AtomicBool::new(false),
            ready_io: Mutex::new(IoSnapshot::default()),
            quant: QuantCache::new(),
        }
    }

    /// Snapshots store I/O as the serve-phase zero point. Called at the
    /// end of every constructor so build reads/writes (and save's reads)
    /// are never double-counted into serve-phase measurements.
    fn mark_ready(&mut self) {
        *self.ready_io.lock().unwrap() = self.store.stats().snapshot();
    }

    /// Persists the index into `dir` as a self-validating directory:
    /// every partition file, the serialised skeleton, and — written last,
    /// via temp file + atomic rename — the [`Manifest`] holding the
    /// format version, the build [`ClimberConfig`], a dataset
    /// fingerprint, and per-file byte ranges + xxHash64 checksums.
    ///
    /// Works for any store backend, so an index built in memory can be
    /// handed to a separate serve process. A crash before the final
    /// rename leaves no valid manifest, so [`Climber::open`] can never
    /// observe a half-written index. Returns the written manifest.
    ///
    /// The partition reads save performs for checksumming are excluded
    /// from [`serve_io`](Self::serve_io): the phase zero point advances
    /// past them when save completes.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<Manifest, ClimberError> {
        Ok(self.seal(dir.as_ref(), None)?)
    }

    /// The save implementation. `refresh`, when given, is the previous
    /// sealed manifest of `dir` plus the set of partitions rewritten
    /// since: those (and any partition the old manifest misses) are
    /// re-copied and re-checksummed, every other entry is reused verbatim
    /// — the incremental re-seal a fold uses so flushing one partition
    /// does not rewrite the whole directory.
    fn seal(
        &self,
        dir: &Path,
        refresh: Option<(&Manifest, &BTreeSet<PartitionId>)>,
    ) -> io::Result<Manifest> {
        let fs = self.store.fs();
        fs.create_dir_all(dir)?;
        let ids = self.store.ids();
        if ids.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot save an index with no partitions",
            ));
        }
        let io_before = self.store.stats().snapshot();
        // Partition copy + checksum is per-partition independent; fan it
        // out over the build's thread count with the cluster's
        // order-preserving map, keeping the manifest's partition list in
        // ascending-id order. The copy is deliberate even when the store
        // already lives in `dir`: the builder's puts are plain writes,
        // while a sealed manifest must only ever reference files that
        // went through the temp-file + fsync + rename protocol.
        // When the store's own puts already landed the files durably in
        // this very directory (a manifest-opened DiskStore, which stages
        // rewrites under `.new` siblings), the seal only needs to
        // checksum them in place — re-copying identical bytes would
        // double every fold's write I/O for nothing.
        //
        // Crash-consistency protocol: nothing a committed manifest
        // references is overwritten before the next manifest commits.
        // New bytes are staged beside the committed files (`.new`
        // siblings, written durably), the manifest — which describes the
        // staged state — is written atomically as the commit point, and
        // only then are the staged files renamed into place. A crash
        // before the commit leaves the old directory byte-identical
        // (stray stages are swept at open); a crash after it is rolled
        // forward at open from the surviving `.new` siblings.
        let in_place_durable =
            self.store.persist_dir() == Some(dir) && self.store.puts_are_durable();
        let cluster = climber_dfs::cluster::Cluster::new(self.build_options.resolved_threads());
        let fs_ref = &fs;
        let copied: Vec<io::Result<(PartitionEntry, Option<u32>, bool)>> =
            cluster.par_map(ids, move |pid| {
                if let Some((prev, dirty)) = refresh {
                    if !dirty.contains(&pid) {
                        if let Some(e) = prev.partition(pid) {
                            // Untouched since the previous seal: the file
                            // in `dir` already went through the atomic
                            // protocol and its entry is still exact.
                            return Ok((*e, None, false));
                        }
                    }
                }
                let reader = self.store.open(pid)?;
                // The manifest must describe the *persisted* bytes — for a
                // compressing store those differ from the decoded image the
                // reader holds. A copy into a fresh directory from a
                // compressing store also compresses, so the sealed
                // directory matches the store's own files.
                let stored = self.store.stored_bytes(pid)?;
                let payload = if !in_place_durable
                    && self.store.compresses_puts()
                    && !page::is_compressed(&stored)
                {
                    page::compress_partition(&stored)?
                } else {
                    stored
                };
                if !in_place_durable {
                    fsio::write_file_atomic_with(
                        &**fs_ref,
                        &dir.join(format!("{}.new", partition_file_name(pid))),
                        &payload,
                    )?;
                }
                Ok((
                    PartitionEntry {
                        id: pid,
                        bytes: payload.len() as u64,
                        checksum: xxh64(&payload, 0),
                        records: reader.record_count(),
                    },
                    Some(reader.series_len() as u32),
                    !in_place_durable,
                ))
            });
        let mut partitions = Vec::with_capacity(copied.len());
        let mut staged_parts: Vec<PartitionId> = Vec::new();
        let mut num_records = 0u64;
        let mut series_len = refresh.map_or(0, |(prev, _)| prev.series_len);
        for entry in copied {
            let (p, sl, staged) = entry?;
            if staged {
                staged_parts.push(p.id);
            }
            num_records += p.records;
            if let Some(sl) = sl {
                series_len = sl;
            }
            partitions.push(p);
        }
        // The skeleton's bytes are invariant after the build, so a
        // re-save into the home directory leaves the identical file
        // untouched; a differing file (sealing into a foreign directory)
        // is staged and installed after the commit point like any
        // partition.
        let skel = self.skeleton.to_bytes();
        let skel_path = dir.join(SKELETON_FILE);
        let skel_staged_path = dir.join(format!("{SKELETON_FILE}.new"));
        let skel_staged = match fs.read(&skel_path) {
            Ok(cur) if cur == skel => false,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // First seal of this directory: no committed manifest can
                // reference a skeleton yet, write it directly.
                fsio::write_file_atomic_with(&*fs, &skel_path, &skel)?;
                false
            }
            _ => {
                fsio::write_file_atomic_with(&*fs, &skel_staged_path, &skel)?;
                true
            }
        };
        // Unfolded mutable segments persist as a journal next to the
        // partitions; the manifest references it (size + checksum) under
        // the current segment generation, so a reopen can never replay a
        // journal against partitions from a different fold. The journal
        // is staged too: the committed `journal.cldj` keeps describing
        // the committed manifest until the new one lands.
        let generation = self.generation.load(Ordering::Relaxed);
        let journal = if self.delta.is_empty() && self.tombstones.is_empty() {
            // Nothing pending: any journal a previous save left behind is
            // dropped after the commit point below.
            None
        } else {
            Some(segment::stage_journal(
                &*fs,
                dir,
                generation,
                &self.delta,
                &self.tombstones,
            )?)
        };
        let m = Manifest {
            format_version: FORMAT_VERSION,
            config: self.config.encode_vec(),
            fingerprint: Manifest::fingerprint_of(series_len, num_records, &partitions),
            num_records,
            max_series_id: self.next_id.load(Ordering::Relaxed).checked_sub(1),
            series_len,
            generation,
            journal,
            skeleton: FileEntry {
                bytes: skel.len() as u64,
                checksum: xxh64(&skel, 0),
            },
            partitions,
        };
        // ---- commit point: the manifest now describes the staged state.
        // Everything below only installs what the manifest already
        // references; an interruption anywhere is rolled forward by the
        // next open.
        m.write_atomic_with(&*fs, dir)?;
        for pid in &staged_parts {
            fs.rename(
                &dir.join(format!("{}.new", partition_file_name(*pid))),
                &dir.join(partition_file_name(*pid)),
            )?;
        }
        if skel_staged {
            fs.rename(&skel_staged_path, &skel_path)?;
        }
        if m.journal.is_some() {
            segment::commit_staged_journal(&*fs, dir)?;
        } else {
            segment::discard_journal(&*fs, dir);
        }
        if !staged_parts.is_empty() || skel_staged {
            fs.fsync_dir(dir)?;
        }
        self.store.commit_staged()?;
        // The home directory (if any) now describes the store exactly: no
        // fold re-seal is outstanding.
        if self.store.persist_dir() == Some(dir) {
            self.reseal_owed
                .store(false, std::sync::atomic::Ordering::Relaxed);
        }
        // Advance the serve-phase zero point past save's own checksum
        // reads so they never show up as query traffic. (Queries racing a
        // concurrent save may be partially absorbed too; save while
        // measuring serve I/O is not a meaningful combination.)
        let save_io = self.store.stats().snapshot().since(&io_before);
        let mut ready = self.ready_io.lock().unwrap();
        // Cache fields stay at their default 0: the serve snapshot's cache
        // counters are overlaid from the cache itself, not from IoStats,
        // so the zero point must never absorb them.
        *ready = IoSnapshot {
            partitions_written: ready.partitions_written + save_io.partitions_written,
            partitions_opened: ready.partitions_opened + save_io.partitions_opened,
            bytes_written: ready.bytes_written + save_io.bytes_written,
            bytes_read: ready.bytes_read + save_io.bytes_read,
            records_shuffled: ready.records_shuffled + save_io.records_shuffled,
            records_read: ready.records_read + save_io.records_read,
            ..IoSnapshot::default()
        };
        Ok(m)
    }

    /// The engine every facade query goes through. While no updates are
    /// pending the sealed-only fast path runs untouched; as soon as the
    /// delta segment or the tombstone set is non-empty, the engine merges
    /// them into every candidate stream.
    fn engine(&self) -> KnnEngine<'_, S> {
        let engine = KnnEngine::new(&self.skeleton, &self.store).with_quant(&self.quant);
        if self.delta.is_empty() && self.tombstones.is_empty() {
            engine
        } else {
            engine.with_updates(UpdateView {
                delta: &self.delta,
                tombstones: &self.tombstones,
            })
        }
    }

    /// Executes one unified [`SearchRequest`]: the single query entry
    /// point every strategy routes through — the request's
    /// [`SearchMode`] picks the planner, and an optional
    /// [budget](SearchRequest::with_budget) caps the partitions read.
    /// Results are `(series id, squared ED)` ascending.
    ///
    /// ```
    /// use climber_core::{Climber, ClimberConfig, SearchRequest};
    /// use climber_core::series::gen::Domain;
    ///
    /// let data = Domain::RandomWalk.generate(400, 9);
    /// let climber = Climber::build_in_memory(&data, ClimberConfig::default()
    ///     .with_pivots(32).with_capacity(100));
    ///
    /// // default mode is Adaptive-4X; builders select the others
    /// let out = climber.search(&SearchRequest::new(data.get(3), 10));
    /// assert_eq!(out.results.len(), 10);
    /// assert_eq!(out, climber.search(&SearchRequest::new(data.get(3), 10).adaptive(4)));
    /// ```
    ///
    /// # Panics
    /// If [`SearchRequest::validate`] fails (zero `k`, empty query, zero
    /// factor). The serving layer validates first and returns a typed
    /// bad-request response instead.
    pub fn search(&self, req: &SearchRequest) -> QueryOutcome {
        if !self.store.quarantined().is_empty() {
            return self
                .search_many(std::slice::from_ref(req))
                .pop()
                .expect("one outcome per request");
        }
        self.engine().search(req)
    }

    /// Executes many [`SearchRequest`]s through the partition-major batch
    /// engine: compatible requests are grouped so every shared partition
    /// is opened once and every shared cluster decoded once. Outcomes
    /// come back in request order, **bit-identical** to calling
    /// [`search`](Self::search) once per request — this is the entry
    /// point the serving layer's micro-batches ride.
    ///
    /// # Panics
    /// If any request fails [`SearchRequest::validate`].
    pub fn search_many(&self, reqs: &[SearchRequest]) -> Vec<QueryOutcome> {
        if !self.store.quarantined().is_empty() {
            // A degraded index (quarantined partitions) routes through
            // the status-aware scatter path, which records unopenable
            // partitions instead of failing the whole pass. On a healthy
            // index both paths are bit-identical (the PR-7 sharding
            // contract with one shard), so the fast engine serves it.
            return self.search_many_with_status(reqs).0;
        }
        self.engine().search_many(reqs)
    }

    /// [`search_many`](Self::search_many) with the index's health for
    /// the pass: runs the scatter-gather scan used by [`ShardedClimber`]
    /// over this one index, degrading planned-but-unopenable partitions
    /// (quarantined, deleted mid-flight) into the returned
    /// [`ShardStatus`] — never a panic, never a silently partial answer
    /// without the status saying so. On a fully healthy index the
    /// outcomes are bit-identical to [`search_many`](Self::search_many).
    pub fn search_many_with_status(
        &self,
        reqs: &[SearchRequest],
    ) -> (Vec<QueryOutcome>, ShardStatus) {
        let (out, mut statuses) = shard::scatter_search_with_status(&[Some(self)], reqs, 0);
        (out, statuses.pop().expect("one shard status"))
    }

    /// Partitions currently quarantined by the store — empty for healthy
    /// (and for in-memory) indexes. Quarantined partitions are skipped by
    /// queries (reported via
    /// [`search_many_with_status`](Self::search_many_with_status)) until
    /// a scrub re-admits them.
    pub fn quarantined_partitions(&self) -> Vec<PartitionId> {
        self.store.quarantined()
    }

    /// CLIMBER-kNN (Algorithm 3): approximate `k` nearest neighbours.
    /// Results are `(series id, squared ED)` ascending.
    #[deprecated(
        since = "0.1.0",
        note = "use Climber::search with SearchRequest::new(query, k).exact()"
    )]
    pub fn knn(&self, query: &[f32], k: usize) -> QueryOutcome {
        self.search(&SearchRequest::new(query, k).exact())
    }

    /// CLIMBER-kNN-Adaptive with a partition budget of `factor ×` the plain
    /// plan (the paper evaluates 2X and 4X; 4X is its default variation).
    #[deprecated(
        since = "0.1.0",
        note = "use Climber::search with SearchRequest::new(query, k).adaptive(factor)"
    )]
    pub fn knn_adaptive(&self, query: &[f32], k: usize, factor: usize) -> QueryOutcome {
        self.search(&SearchRequest::new(query, k).adaptive(factor))
    }

    /// The OD-Smallest full-group scan (ablation baseline, Figure 11(b)).
    pub fn od_smallest(&self, query: &[f32], k: usize) -> QueryOutcome {
        self.engine().od_smallest(query, k)
    }

    /// Executes a whole [`BatchRequest`] partition-major across threads:
    /// the union of all per-query plans is regrouped by partition, each
    /// partition is opened once, each needed cluster decoded once, and the
    /// decoded records are scored against every query that selected them.
    /// Per-query outcomes are bit-identical to the sequential methods —
    /// see [`climber_query::batch`] for the execution model.
    ///
    /// ```
    /// use climber_core::{BatchRequest, Climber, ClimberConfig};
    /// use climber_core::series::gen::Domain;
    ///
    /// let data = Domain::RandomWalk.generate(500, 3);
    /// let climber = Climber::build_in_memory(&data, ClimberConfig::default()
    ///     .with_pivots(32).with_capacity(100));
    /// let queries: Vec<Vec<f32>> = (0..16u64).map(|i| data.get(i * 31).to_vec()).collect();
    ///
    /// let batch = climber.batch(&BatchRequest::adaptive(&queries, 10, 4));
    /// assert_eq!(batch.outcomes.len(), 16);
    /// use climber_core::SearchRequest;
    /// assert_eq!(
    ///     batch.outcomes[0],
    ///     climber.search(&SearchRequest::new(&queries[0][..], 10).adaptive(4)),
    /// );
    /// ```
    pub fn batch(&self, request: &BatchRequest<'_>) -> BatchOutcome {
        self.engine().batch(request)
    }

    /// Batch evaluation of CLIMBER-kNN-Adaptive over many queries — the
    /// sustained-throughput workload (queries/second) the Lernaean Hydra
    /// evaluation measures engines by. A convenience wrapper over
    /// [`batch`](Self::batch) returning just the per-query outcomes.
    #[deprecated(
        since = "0.1.0",
        note = "use Climber::search_many with per-request SearchRequests, or \
                Climber::batch for the full BatchOutcome counters"
    )]
    pub fn knn_batch(&self, queries: &[Vec<f32>], k: usize, factor: usize) -> Vec<QueryOutcome> {
        self.batch(&BatchRequest::adaptive(queries, k, factor))
            .outcomes
    }

    /// Approximate kNN for a query *shorter or longer* than the indexed
    /// series length: the query is linearly resampled to the index length
    /// first (§II: PAA-family representations support shorter queries,
    /// unlike DFT/wavelet indexes).
    ///
    /// Distances in the result are squared ED between the resampled query
    /// and the stored series.
    #[deprecated(
        since = "0.1.0",
        note = "use Climber::search with SearchRequest::new(query, k).resampled(factor)"
    )]
    pub fn knn_resampled(&self, query: &[f32], k: usize, factor: usize) -> QueryOutcome {
        self.search(&SearchRequest::new(query, k).resampled(factor))
    }

    /// The indexed series length, recovered from any stored partition.
    fn series_len_hint(&self) -> Option<usize> {
        let pid = *self.store.ids().first()?;
        self.store.open(pid).ok().map(|r| r.series_len())
    }

    /// Scans the store once to seed the append id counter (reopened
    /// indexes skip this — the manifest records the largest id).
    fn seed_next_id_by_scan(&mut self) {
        let mut max_id: Option<u64> = None;
        for pid in self.store.ids() {
            if let Ok(reader) = self.store.open(pid) {
                reader.for_each(|id, _| {
                    max_id = Some(max_id.map_or(id, |m| m.max(id)));
                });
            }
        }
        self.next_id
            .store(max_id.map_or(0, |m| m + 1), Ordering::Relaxed);
    }

    /// Fails with `PermissionDenied` on an index opened read-only.
    fn ensure_writable(&self) -> io::Result<()> {
        if self.writable {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "index was opened read-only; reopen with Climber::open_rw to accept updates",
            ))
        }
    }

    /// Appends a new series, returning its assigned id — O(record): the
    /// record is routed with the frozen skeleton (pivots and centroids
    /// never change, §V Step 1) into the matching `(partition, trie node)`
    /// delta cluster. No sealed partition is touched; queries merge the
    /// delta cluster into the same candidate stream, so the record is
    /// findable through exactly the plans that would find it after a
    /// rebuild. [`flush`](Self::flush) folds it into its sealed partition.
    ///
    /// # Panics
    /// If the series length differs from the indexed length.
    pub fn append(&self, values: &[f32]) -> Result<u64, ClimberError> {
        self.ensure_writable()?;
        let expected = self.series_len_hint().unwrap_or(values.len());
        assert_eq!(
            values.len(),
            expected,
            "appended series length {} != indexed length {expected}",
            values.len()
        );
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let p = self.skeleton.place(values, id);
        self.delta.append(p.partition, p.node, id, values);
        Ok(id)
    }

    /// Appends a batch of series, returning their assigned ids: one
    /// routing pass over the batch (shared signature scratch, no per-record
    /// allocation) and a single grouped insertion into the delta segment —
    /// never a partition rewrite, let alone one per record.
    ///
    /// # Panics
    /// If any series length differs from the indexed length.
    pub fn append_batch(&self, series: &[Vec<f32>]) -> Result<Vec<u64>, ClimberError> {
        self.ensure_writable()?;
        if series.is_empty() {
            return Ok(Vec::new());
        }
        let expected = self.series_len_hint().unwrap_or(series[0].len());
        for v in series {
            assert_eq!(
                v.len(),
                expected,
                "appended series length {} != indexed length {expected}",
                v.len()
            );
        }
        let first = self
            .next_id
            .fetch_add(series.len() as u64, Ordering::Relaxed);
        let ids: Vec<u64> = (first..first + series.len() as u64).collect();
        let mut scratch = SignatureScratch::new();
        let routed: Vec<(PartitionId, TrieNodeId, u64, &[f32])> = series
            .iter()
            .zip(&ids)
            .map(|(v, &id)| {
                let p = self.skeleton.place_with(v, id, &mut scratch);
                (p.partition, p.node, id, v.as_slice())
            })
            .collect();
        self.delta.append_many(routed);
        Ok(ids)
    }

    /// Deletes series `id` — O(log n) into the tombstone set. Returns
    /// `false` when the id was never assigned or is already deleted. The
    /// record's bytes stay in place until [`compact`](Self::compact)
    /// purges them, but no query will ever return (or rank against) a
    /// tombstoned id again.
    pub fn delete(&self, id: u64) -> Result<bool, ClimberError> {
        self.ensure_writable()?;
        if id >= self.next_id.load(Ordering::Relaxed) {
            return Ok(false);
        }
        Ok(self.tombstones.delete(id))
    }

    /// Folds the delta segment into the sealed partitions: every partition
    /// holding delta clusters is rewritten once — concurrently, one
    /// [`PartitionWriter`] per partition over the build's worker fan-out —
    /// with each delta cluster appended (in id order) to the sealed
    /// cluster of the same trie node. Tombstones are kept (they keep
    /// filtering queries); [`compact`](Self::compact) purges them too.
    ///
    /// On a disk-backed store the directory is re-sealed afterwards —
    /// incrementally: only the folded partitions are re-copied and
    /// re-checksummed, untouched manifest entries are reused, and the
    /// manifest is rewritten at the bumped segment generation, so the
    /// on-disk index stays openable at O(affected partitions) cost. If
    /// any partition write fails, the drained records of unwritten
    /// partitions are restored to the delta segment — no acknowledged
    /// append is dropped — and a later `flush` or `save` finishes the
    /// pending re-seal. Queries racing a fold never see duplicates or
    /// deleted records; records mid-fold can be transiently invisible
    /// between the drain and their partition's install.
    pub fn flush(&self) -> Result<MaintenanceReport, ClimberError> {
        Ok(self.maintain(false)?)
    }

    /// [`flush`](Self::flush) + purge: additionally rewrites every
    /// partition holding tombstoned records, physically removing them,
    /// and clears the purged ids from the tombstone set.
    pub fn compact(&self) -> Result<MaintenanceReport, ClimberError> {
        Ok(self.maintain(true)?)
    }

    fn maintain(&self, purge: bool) -> io::Result<MaintenanceReport> {
        self.ensure_writable()?;
        // Tombstones snapshot only for a purge — ids deleted *during* the
        // fold stay pending either way. The purge scan (which partitions
        // hold tombstoned records) runs BEFORE anything is drained, and
        // every scan error aborts the fold: silently skipping an
        // unreadable partition here would later clear tombstones whose
        // records were never purged, resurrecting deleted ids.
        let purged_ids: Vec<u64> = if purge {
            self.tombstones.ids()
        } else {
            Vec::new()
        };
        let purge_set: BTreeSet<u64> = purged_ids.iter().copied().collect();
        let mut tomb_affected: BTreeSet<PartitionId> = BTreeSet::new();
        if !purge_set.is_empty() {
            for pid in self.store.ids() {
                let reader = self.store.open(pid)?;
                // Id-only scan with early exit: no value decoding, stops
                // at the first tombstoned record.
                if reader.any_id(|id| purge_set.contains(&id)) {
                    tomb_affected.insert(pid);
                }
            }
        }

        // Drain the delta: concurrent appends land in the emptied segment
        // and simply wait for the next flush. Group the drained clusters
        // by partition; the rewrite set is their partitions plus the
        // purge scan's.
        let drained = self.delta.drain();
        #[allow(clippy::type_complexity)]
        let mut delta_by_pid: BTreeMap<
            PartitionId,
            BTreeMap<TrieNodeId, (Vec<u64>, Vec<f32>)>,
        > = BTreeMap::new();
        for ((pid, node), recs) in drained {
            delta_by_pid.entry(pid).or_default().insert(node, recs);
        }
        let mut affected: BTreeSet<PartitionId> = delta_by_pid.keys().copied().collect();
        affected.extend(tomb_affected);
        if affected.is_empty() && purge_set.is_empty() {
            // Nothing to fold — but an earlier fold may have rewritten
            // partitions and then failed its re-seal (e.g. out of disk):
            // repair the directory before reporting the no-op, so a
            // retried flush() always converges to an openable index.
            if self.reseal_owed.load(std::sync::atomic::Ordering::Relaxed) {
                if let Some(dir) = self.store.persist_dir().map(Path::to_path_buf) {
                    self.seal(&dir, None)?;
                }
            }
            return Ok(MaintenanceReport {
                partitions_rewritten: 0,
                records_folded: 0,
                records_purged: 0,
                tombstones_remaining: self.tombstones.len(),
                generation: self.generation.load(Ordering::Relaxed),
            });
        }

        // Rewrite the affected partitions concurrently (the PR-4 style
        // per-partition fan-out: each worker owns one writer end to end).
        // From the first rewrite on, a disk directory's manifest is stale
        // until the re-seal below lands; the flag makes any later flush
        // or save finish the repair if this attempt errors out. If the
        // flag was ALREADY set, a previous fold left partitions on disk
        // that this fold's dirty set does not cover — the re-seal below
        // must then be a full one, or it would reuse stale manifest
        // entries for them.
        let owed_before = self.store.persist_dir().is_some()
            && self
                .reseal_owed
                .swap(true, std::sync::atomic::Ordering::Relaxed);
        let series_len = self.series_len_hint().unwrap_or(0);
        let cluster = climber_dfs::cluster::Cluster::new(self.build_options.resolved_threads());
        let delta_by_pid = &delta_by_pid;
        let purge_ref = &purge_set;
        type FoldOutcome = (PartitionId, io::Result<(u64, u64)>);
        let results: Vec<FoldOutcome> =
            cluster.par_map(affected.iter().copied().collect::<Vec<_>>(), move |pid| {
                let folds = delta_by_pid.get(&pid);
                let r = self.rewrite_partition(pid, series_len, folds, purge_ref);
                (pid, r)
            });

        let mut rewritten = 0usize;
        let mut folded = 0u64;
        let mut purged = 0u64;
        let mut failed: Option<io::Error> = None;
        let mut restore: BTreeMap<(PartitionId, TrieNodeId), (Vec<u64>, Vec<f32>)> =
            BTreeMap::new();
        for (pid, r) in results {
            match r {
                Ok((f, p)) => {
                    rewritten += 1;
                    folded += f;
                    purged += p;
                }
                Err(e) => {
                    // This partition was not rewritten: its drained delta
                    // clusters go back so the records stay queryable.
                    if let Some(clusters) = delta_by_pid.get(&pid) {
                        for (&node, recs) in clusters {
                            restore.insert((pid, node), recs.clone());
                        }
                    }
                    failed = Some(e);
                }
            }
        }
        // Any rewritten partition invalidates its quantized clusters —
        // drop the whole cache (even on a partial failure: the successful
        // rewrites already replaced sealed bytes).
        self.quant.clear();
        if let Some(e) = failed {
            self.delta.restore(restore);
            return Err(e);
        }
        if purge {
            self.tombstones.remove_all(&purged_ids);
        }
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;

        // Disk-backed stores get re-sealed immediately: checksums and the
        // manifest must match the rewritten partitions for the directory
        // to stay openable. The re-seal is incremental — only the folded
        // partitions are re-copied and re-checksummed; every entry of the
        // previous manifest for an untouched partition is reused — so a
        // small fold costs O(affected partitions), not O(index).
        if let Some(dir) = self.store.persist_dir().map(Path::to_path_buf) {
            match Manifest::load_with(&*self.store.fs(), &dir) {
                Ok(prev) if !owed_before && prev.partition_ids() == self.store.ids() => {
                    self.seal(&dir, Some((&prev, &affected)))?;
                }
                _ => {
                    // No usable previous seal: first save pending, the
                    // partition set changed, or an earlier fold's re-seal
                    // failed (its rewrites are outside this dirty set) —
                    // full re-seal.
                    self.seal(&dir, None)?;
                }
            }
        }
        Ok(MaintenanceReport {
            partitions_rewritten: rewritten,
            records_folded: folded,
            records_purged: purged,
            tombstones_remaining: self.tombstones.len(),
            generation,
        })
    }

    /// Rewrites one sealed partition, merging `folds` (delta clusters by
    /// trie node, folded in ascending-id order after the sealed records)
    /// and dropping every id in `purge`. Returns `(records folded,
    /// records purged)`.
    #[allow(clippy::type_complexity)]
    fn rewrite_partition(
        &self,
        pid: PartitionId,
        series_len: usize,
        folds: Option<&BTreeMap<TrieNodeId, (Vec<u64>, Vec<f32>)>>,
        purge: &BTreeSet<u64>,
    ) -> io::Result<(u64, u64)> {
        /// Appends the delta cluster of `node` (ascending ids, minus
        /// purged) to `recs`, then seals the cluster when non-empty.
        /// Returns `(folded, purged)` for the delta side.
        fn seal_cluster(
            writer: &mut PartitionWriter,
            node: TrieNodeId,
            recs: &mut Vec<(u64, Vec<f32>)>,
            folds: Option<&BTreeMap<TrieNodeId, (Vec<u64>, Vec<f32>)>>,
            purge: &BTreeSet<u64>,
        ) -> (u64, u64) {
            let (mut folded, mut purged) = (0u64, 0u64);
            if let Some((ids, values)) = folds.and_then(|f| f.get(&node)) {
                let w = values.len() / ids.len().max(1);
                let mut order: Vec<usize> = (0..ids.len()).collect();
                order.sort_unstable_by_key(|&i| ids[i]);
                for i in order {
                    if purge.contains(&ids[i]) {
                        purged += 1;
                    } else {
                        folded += 1;
                        recs.push((ids[i], values[i * w..(i + 1) * w].to_vec()));
                    }
                }
            }
            if !recs.is_empty() {
                writer.push_cluster(node, recs.iter().map(|(id, v)| (*id, v.as_slice())));
            }
            (folded, purged)
        }

        let reader = self.store.open(pid)?;
        let series_len = if series_len == 0 {
            reader.series_len()
        } else {
            series_len
        };
        let mut writer = PartitionWriter::new(reader.group_id(), series_len);
        let mut folded = 0u64;
        let mut purged = 0u64;
        let sealed_nodes = reader.cluster_ids();
        let mut recs: Vec<(u64, Vec<f32>)> = Vec::new();
        for &node in &sealed_nodes {
            recs.clear();
            let mut dropped = 0u64;
            reader.for_each_in_cluster(node, |id, vals| {
                if purge.contains(&id) {
                    dropped += 1;
                } else {
                    recs.push((id, vals.to_vec()));
                }
            });
            purged += dropped;
            let (f, p) = seal_cluster(&mut writer, node, &mut recs, folds, purge);
            folded += f;
            purged += p;
        }
        // Delta clusters routed to trie nodes this partition has never
        // sealed (e.g. a leaf that received no records at build time).
        if let Some(f) = folds {
            for &node in f.keys() {
                if !sealed_nodes.contains(&node) {
                    recs.clear();
                    let (df, dp) = seal_cluster(&mut writer, node, &mut recs, folds, purge);
                    folded += df;
                    purged += dp;
                }
            }
        }
        self.store.put(pid, writer.finish())?;
        Ok((folded, purged))
    }

    /// The global index skeleton.
    pub fn skeleton(&self) -> &IndexSkeleton {
        &self.skeleton
    }

    /// The partition store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The build report (absent for re-opened indexes).
    pub fn report(&self) -> Option<&BuildReport> {
        self.report.as_ref()
    }

    /// The delta segment: appended records not yet folded into sealed
    /// partitions.
    pub fn delta(&self) -> &DeltaSegment {
        &self.delta
    }

    /// The tombstone set: ids deleted but not yet purged by a compaction.
    pub fn tombstones(&self) -> &TombstoneSet {
        &self.tombstones
    }

    /// The current segment generation (how many folds the sealed
    /// partitions have absorbed).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Enables (or disables) the quantized record cache: when on, sealed
    /// cluster scans are served from cached 8-bit codes with an admissible
    /// lower-bound prefilter, promoting only the surviving records to
    /// exact `f32` scoring. Answers are **bit-identical** either way — the
    /// cache changes how much decode work a query pays, never what it
    /// returns. Off by default; disabling also drops the cached entries.
    pub fn set_quant_enabled(&self, enabled: bool) {
        self.quant.set_enabled(enabled);
    }

    /// The quantized record cache (for inspection: entry count, byte
    /// footprint, enabled flag).
    pub fn quant_cache(&self) -> &QuantCache {
        &self.quant
    }

    /// False only for indexes opened read-only via [`Climber::open`].
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// The index configuration: the exact build parameters for built
    /// indexes, restored from the manifest for reopened ones.
    pub fn config(&self) -> &ClimberConfig {
        &self.config
    }

    /// The execution options the index was built with (defaults for
    /// reopened or wrapped indexes). Options never affect index content —
    /// only how fast it was produced.
    pub fn build_options(&self) -> &BuildOptions {
        &self.build_options
    }

    /// Store I/O performed since the index became servable — partitions
    /// opened, bytes and records read by queries alone. Build-phase I/O
    /// (and the reads [`save`](Self::save) performs) is excluded by a
    /// snapshot taken at the build/serve phase boundary, so benchmarks on
    /// a shared store never double-count construction traffic.
    pub fn serve_io(&self) -> IoSnapshot {
        let snap = self
            .store
            .stats()
            .snapshot()
            .since(&self.ready_io.lock().unwrap());
        match self.store.block_cache() {
            Some(cache) => snap.with_cache(&cache.stats()),
            None => snap,
        }
    }

    /// The block cache serving this index's partition opens — `Some` only
    /// for indexes opened through
    /// [`open_with_cache`](Self::open_with_cache) and friends.
    pub fn block_cache(&self) -> Option<Arc<BlockCache>> {
        self.store.block_cache()
    }

    /// Serialised global index size in bytes (Figure 8(b)'s metric).
    pub fn global_index_bytes(&self) -> usize {
        self.skeleton.size_bytes()
    }
}

/// The query surface the serving layer batches against: anything that can
/// answer a micro-batch of [`SearchRequest`]s with outcomes in request
/// order. Implemented by [`Climber`] (one index) and by
/// [`ShardedClimber`] (a scatter-gather shard set), so a server binds to
/// either without caring which — the "serves a sharded index unchanged"
/// contract.
///
/// Implementations must match [`Climber::search_many`] semantics: one
/// outcome per request, in order, bit-identical to per-request
/// [`Climber::search`] calls, panicking only on requests that fail
/// [`SearchRequest::validate`] (network callers validate first).
///
/// [`SearchRequest::validate`]: climber_query::search::SearchRequest::validate
pub trait SearchBackend: Send + Sync {
    /// Executes many requests, outcomes in request order.
    fn search_many(&self, reqs: &[SearchRequest]) -> Vec<QueryOutcome>;

    /// The backend's current health — shard liveness and partition
    /// quarantine — for the serving layer's health endpoint. The default
    /// reports a permanently healthy single backend, so plain in-memory
    /// backends need no override.
    fn health(&self) -> BackendHealth {
        BackendHealth::healthy()
    }

    /// The backend's serve-phase I/O counters, block-cache counters
    /// overlaid when one is attached — for the serving layer's stats
    /// endpoint. The default reports all zeros, so backends without I/O
    /// accounting need no override.
    fn io(&self) -> IoSnapshot {
        IoSnapshot::default()
    }
}

impl<S: PartitionStore> SearchBackend for Climber<S> {
    fn search_many(&self, reqs: &[SearchRequest]) -> Vec<QueryOutcome> {
        Climber::search_many(self, reqs)
    }

    fn health(&self) -> BackendHealth {
        BackendHealth {
            shards: 1,
            dead_shards: 0,
            quarantined_partitions: self.store.quarantined().len() as u64,
        }
    }

    fn io(&self) -> IoSnapshot {
        Climber::serve_io(self)
    }
}

impl<S: PartitionStore> SearchBackend for ShardedClimber<S> {
    fn search_many(&self, reqs: &[SearchRequest]) -> Vec<QueryOutcome> {
        ShardedClimber::search_many(self, reqs)
    }

    fn health(&self) -> BackendHealth {
        ShardedClimber::health(self)
    }

    fn io(&self) -> IoSnapshot {
        ShardedClimber::serve_io(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_series::gen::Domain;

    fn small_cfg() -> ClimberConfig {
        ClimberConfig::default()
            .with_paa_segments(8)
            .with_pivots(32)
            .with_prefix_len(5)
            .with_capacity(60)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(7)
            .with_workers(2)
    }

    #[test]
    fn facade_quickstart_flow() {
        let ds = Domain::RandomWalk.generate(300, 1);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let out = climber.knn(ds.get(5), 10);
        assert_eq!(out.results.len(), 10);
        assert!(climber.report().is_some());
        assert!(climber.global_index_bytes() > 0);
    }

    #[test]
    fn explicit_build_options_match_default_build() {
        let ds = Domain::RandomWalk.generate(280, 21);
        let a = Climber::build_in_memory(&ds, small_cfg());
        let b = Climber::build_in_memory_with(
            &ds,
            small_cfg(),
            BuildOptions::default().with_threads(8).with_block_size(17),
        );
        assert_eq!(
            a.skeleton().to_bytes(),
            b.skeleton().to_bytes(),
            "thread/block options changed the skeleton"
        );
        assert_eq!(b.build_options().threads, 8);
        assert_eq!(b.report().unwrap().threads, 8);
        let q = ds.get(11);
        assert_eq!(a.knn(q, 10), b.knn(q, 10));
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("climber-core-{}", std::process::id()));
        let ds = Domain::Eeg.generate(200, 2);
        let built = Climber::build_on_disk(&ds, &dir, small_cfg()).unwrap();
        let a = built.knn(ds.get(3), 5);
        let reopened = Climber::open(&dir).unwrap();
        let b = reopened.knn(ds.get(3), 5);
        assert_eq!(a.results, b.results);
        assert!(reopened.report().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_missing_dir_fails() {
        assert!(Climber::open("/nonexistent/climber-index").is_err());
    }

    #[test]
    fn adaptive_and_od_smallest_accessible() {
        let ds = Domain::TexMex.generate(250, 3);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let q = ds.get(9);
        let a = climber.knn_adaptive(q, 50, 4);
        let o = climber.od_smallest(q, 50);
        assert!(!a.results.is_empty());
        assert!(o.records_scanned >= a.records_scanned || o.plan.num_partitions() >= 1);
    }

    #[test]
    fn batch_matches_sequential() {
        let ds = Domain::RandomWalk.generate(300, 4);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let queries: Vec<Vec<f32>> = (0..6u64).map(|i| ds.get(i * 40).to_vec()).collect();
        let batch = climber.knn_batch(&queries, 10, 4);
        for (q, out) in queries.iter().zip(batch.iter()) {
            assert_eq!(out, &climber.knn_adaptive(q, 10, 4));
        }
    }

    #[test]
    fn resampled_queries_of_any_length_work() {
        let ds = Domain::Eeg.generate(300, 5); // indexed length 256
        let climber = Climber::build_in_memory(&ds, small_cfg());
        for qlen in [64usize, 128, 256, 500] {
            // take a prefix (or stretch) of a real series as the probe
            let src = ds.get(7);
            let probe: Vec<f32> = climber_series::resample::resample_linear(src, qlen);
            let out = climber.knn_resampled(&probe, 5, 2);
            assert_eq!(out.results.len(), 5, "qlen={qlen}");
            if qlen == 256 {
                // exact length: the probe equals the source series
                assert_eq!(out.results[0].0, 7);
            }
        }
    }

    #[test]
    fn append_routes_and_is_findable() {
        let ds = Domain::RandomWalk.generate(300, 7);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        // append a copy of an existing series with slight noise
        let mut probe = ds.get(42).to_vec();
        probe[0] += 0.001;
        let new_id = climber.append(&probe).unwrap();
        assert_eq!(new_id, 300, "ids continue after the build");
        // the appended record must be findable by an identical query
        let out = climber.knn(&probe, 5);
        assert_eq!(
            out.results[0],
            (new_id, 0.0),
            "appended record not retrieved: {:?}",
            out.results
        );
        // and it sits in the delta cluster placement replay points at
        let placement = climber.skeleton().place(&probe, new_id);
        let mut buf = climber_dfs::format::ClusterBuf::new();
        let n = climber.delta().read_cluster_into(
            placement.partition,
            placement.node,
            &mut buf,
            |_| true,
        );
        assert_eq!(n, 1);
        assert_eq!(buf.get(0).0, new_id);
    }

    /// The delta-segment regression the refactor exists for: appending
    /// must never rewrite (nor even touch) a sealed partition — the old
    /// path rewrote one whole partition per appended record.
    #[test]
    fn append_performs_no_partition_write() {
        let ds = Domain::RandomWalk.generate(250, 14);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let before = climber.store().stats().snapshot();
        let batch: Vec<Vec<f32>> = (0..40u64).map(|i| ds.get(i * 6).to_vec()).collect();
        climber.append_batch(&batch).unwrap();
        climber.append(ds.get(0)).unwrap();
        let diff = climber.store().stats().snapshot().since(&before);
        assert_eq!(diff.partitions_written, 0, "append rewrote a partition");
        assert_eq!(diff.bytes_written, 0);
        assert_eq!(climber.delta().record_count(), 41);
        // ... and a flush is what folds them, with exactly one write per
        // affected partition.
        let report = climber.flush().unwrap();
        assert_eq!(report.records_folded, 41);
        assert!(climber.delta().is_empty());
        let after = climber.store().stats().snapshot().since(&before);
        assert_eq!(
            after.partitions_written as usize,
            report.partitions_rewritten
        );
    }

    #[test]
    fn append_batch_assigns_distinct_ids() {
        let ds = Domain::Eeg.generate(200, 8);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let batch: Vec<Vec<f32>> = (0..5u64).map(|i| ds.get(i * 13).to_vec()).collect();
        let ids = climber.append_batch(&batch).unwrap();
        assert_eq!(ids, vec![200, 201, 202, 203, 204]);
        // sealed partitions untouched: the records live in the delta
        let mut sealed = 0u64;
        for pid in climber.store().ids() {
            sealed += climber.store().open(pid).unwrap().record_count();
        }
        assert_eq!(sealed, 200);
        assert_eq!(climber.delta().record_count(), 5);
        // a flush folds them into the sealed partitions
        let report = climber.flush().unwrap();
        assert_eq!(report.records_folded, 5);
        assert_eq!(report.generation, 1);
        let mut total = 0u64;
        for pid in climber.store().ids() {
            total += climber.store().open(pid).unwrap().record_count();
        }
        assert_eq!(total, 205);
        assert!(climber.delta().is_empty());
    }

    #[test]
    fn delete_filters_results_and_compact_purges() {
        let ds = Domain::RandomWalk.generate(300, 31);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let q = ds.get(42).to_vec();
        let before = climber.knn(&q, 5);
        assert_eq!(before.results[0], (42, 0.0));

        assert!(climber.delete(42).unwrap());
        assert!(!climber.delete(42).unwrap(), "double delete");
        assert!(!climber.delete(99_999).unwrap(), "never-assigned id");

        let after = climber.knn(&q, 5);
        assert!(
            after.results.iter().all(|&(id, _)| id != 42),
            "deleted record served: {:?}",
            after.results
        );
        assert_eq!(after.results.len(), 5, "survivors fill the answer");

        // compaction physically removes it and clears the tombstone
        let report = climber.compact().unwrap();
        assert_eq!(report.records_purged, 1);
        assert_eq!(report.tombstones_remaining, 0);
        assert!(climber.tombstones().is_empty());
        let mut total = 0u64;
        for pid in climber.store().ids() {
            climber.store().open(pid).unwrap().for_each(|id, _| {
                assert_ne!(id, 42, "purged record still sealed");
            });
            total += climber.store().open(pid).unwrap().record_count();
        }
        assert_eq!(total, 299);
        // results unchanged by the fold
        assert_eq!(climber.knn(&q, 5).results, after.results);
    }

    #[test]
    fn flush_keeps_tombstones_compact_clears_them() {
        let ds = Domain::Eeg.generate(220, 33);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        climber.append(ds.get(7)).unwrap();
        climber.delete(3).unwrap();
        let r1 = climber.flush().unwrap();
        assert_eq!(r1.records_folded, 1);
        assert_eq!(r1.records_purged, 0, "flush never purges");
        assert_eq!(r1.tombstones_remaining, 1);
        assert!(climber.tombstones().contains(3));
        let r2 = climber.compact().unwrap();
        assert_eq!(r2.records_purged, 1);
        assert_eq!(r2.tombstones_remaining, 0);
        assert_eq!(r2.generation, 2);
        // idempotent once everything is folded
        let r3 = climber.flush().unwrap();
        assert_eq!(r3.partitions_rewritten, 0);
        assert_eq!(r3.generation, 2, "no-op fold does not bump generation");
    }

    #[test]
    fn queries_equal_rebuild_after_append_delete_flush() {
        let ds = Domain::RandomWalk.generate(260, 35);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let probe: Vec<f32> = ds.get(10).iter().map(|v| v + 0.01).collect();
        let appended = climber.append(&probe).unwrap();
        climber.delete(10).unwrap();

        let with_segments = climber.knn(&probe, 8);
        climber.flush().unwrap();
        let after_flush = climber.knn(&probe, 8);
        assert_eq!(
            with_segments, after_flush,
            "folding must not change answers"
        );
        climber.compact().unwrap();
        let after_compact = climber.knn(&probe, 8);
        assert_eq!(with_segments.results, after_compact.results);
        assert!(after_compact.results.iter().any(|&(id, _)| id == appended));
        assert!(after_compact.results.iter().all(|&(id, _)| id != 10));
    }

    #[test]
    #[should_panic(expected = "length")]
    fn append_wrong_length_panics() {
        let ds = Domain::Dna.generate(100, 9);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let _ = climber.append(&[1.0, 2.0]);
    }

    #[test]
    fn serve_io_excludes_build_phase() {
        let ds = Domain::RandomWalk.generate(300, 10);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let build_io = climber.report().unwrap().io;
        assert!(build_io.partitions_written > 0, "build wrote partitions");
        // Phase boundary: before any query, serve-phase I/O is zero even
        // though the shared store's counters still hold the build traffic.
        assert_eq!(
            climber.serve_io(),
            climber_dfs::stats::IoSnapshot::default()
        );

        climber.knn(ds.get(1), 5);
        let serve = climber.serve_io();
        assert!(serve.partitions_opened > 0, "query opened partitions");
        assert_eq!(serve.partitions_written, 0, "serving writes nothing");
        assert!(
            serve.bytes_read < build_io.bytes_read + build_io.bytes_written,
            "serve I/O must not re-count build traffic"
        );
        // The build report is a snapshot: serving does not mutate it.
        assert_eq!(climber.report().unwrap().io, build_io);

        // An explicit save() advances the phase boundary past its own
        // checksum reads: serve-phase I/O stays query-only.
        let dir = std::env::temp_dir().join(format!("climber-core-save-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        climber.save(&dir).unwrap();
        assert_eq!(
            climber.serve_io(),
            serve,
            "save's reads leaked into serve-phase I/O"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_and_reopened_serve_io_starts_clean() {
        let dir = std::env::temp_dir().join(format!("climber-core-io-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ds = Domain::Eeg.generate(200, 12);
        let built = Climber::build_on_disk(&ds, &dir, small_cfg()).unwrap();
        // build_on_disk's save() re-reads partitions for checksumming;
        // none of that leaks into the serve phase.
        assert_eq!(built.serve_io(), climber_dfs::stats::IoSnapshot::default());

        let reopened = Climber::open(&dir).unwrap();
        assert_eq!(
            reopened.serve_io(),
            climber_dfs::stats::IoSnapshot::default()
        );
        reopened.knn(ds.get(3), 5);
        assert!(reopened.serve_io().partitions_opened > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn skeleton_summary_is_readable() {
        let ds = Domain::RandomWalk.generate(300, 6);
        let climber = Climber::build_in_memory(&ds, small_cfg());
        let s = climber.skeleton().summary();
        assert!(s.contains("CLIMBER index skeleton"));
        assert!(s.contains("[G0, <*,*,...>]"));
        assert!(s.lines().count() >= climber.skeleton().groups.len());
    }
}
