//! Property-based tests for PAA/SAX/iSAX invariants.

use climber_repr::breakpoints::{breakpoints, symbol_for};
use climber_repr::isax::ISaxWord;
use climber_repr::paa::{paa, paa_dist};
use climber_repr::sax::sax_from_paa;
use climber_series::distance::ed;
use climber_series::znorm::znormalize;
use proptest::prelude::*;

fn raw_series(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-50.0f32..50.0, len)
}

proptest! {
    #[test]
    fn paa_means_lie_within_value_range(x in raw_series(64), w in 1usize..64) {
        let p = paa(&x, w);
        let lo = x.iter().cloned().fold(f32::INFINITY, f32::min) as f64 - 1e-6;
        let hi = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64 + 1e-6;
        for &m in &p {
            prop_assert!(m >= lo && m <= hi);
        }
    }

    #[test]
    fn paa_preserves_global_mean(x in raw_series(60)) {
        // With w | n, the mean of the PAA signature equals the series mean.
        let p = paa(&x, 6);
        let series_mean: f64 = x.iter().map(|&v| v as f64).sum::<f64>() / x.len() as f64;
        let paa_mean: f64 = p.iter().sum::<f64>() / p.len() as f64;
        prop_assert!((series_mean - paa_mean).abs() < 1e-6);
    }

    #[test]
    fn paa_dist_lower_bounds_ed(x in raw_series(64), y in raw_series(64)) {
        let zx = znormalize(&x);
        let zy = znormalize(&y);
        for w in [4usize, 8, 16] {
            let d = paa_dist(&paa(&zx, w), &paa(&zy, w), 64);
            prop_assert!(d <= ed(&zx, &zy) + 1e-6);
        }
    }

    #[test]
    fn sax_symbols_fit_cardinality(x in raw_series(32), bits in 1u32..8) {
        let card = 1u32 << bits;
        let p = paa(&znormalize(&x), 8);
        let wrd = sax_from_paa(&p, card);
        for &s in &wrd.symbols {
            prop_assert!((s as u32) < card);
        }
    }

    #[test]
    fn symbol_is_monotone_in_value(v1 in -4.0f64..4.0, v2 in -4.0f64..4.0) {
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(symbol_for(lo, 16) <= symbol_for(hi, 16));
    }

    #[test]
    fn breakpoint_count_is_cardinality_minus_one(bits in 1u32..10) {
        let c = 1u32 << bits;
        prop_assert_eq!(breakpoints(c).len() as u32, c - 1);
    }

    #[test]
    fn isax_reduce_then_covers(x in raw_series(64), coarse_bits in 1u8..6) {
        let z = znormalize(&x);
        let fine = ISaxWord::from_series(&z, 8, 6);
        let coarse = fine.reduce(&[coarse_bits; 8]);
        prop_assert!(coarse.covers(&fine));
    }

    #[test]
    fn isax_mindist_lower_bounds_ed(x in raw_series(64), y in raw_series(64)) {
        let zx = znormalize(&x);
        let zy = znormalize(&y);
        let px = paa(&zx, 8);
        let wy = ISaxWord::from_series(&zy, 8, 4);
        prop_assert!(wy.mindist(&px, 64) <= ed(&zx, &zy) + 1e-6);
    }

    #[test]
    fn isax_mindist_monotone_in_resolution(x in raw_series(64), y in raw_series(64)) {
        // Finer words give tighter (larger) lower bounds.
        let zx = znormalize(&x);
        let zy = znormalize(&y);
        let px = paa(&zx, 8);
        let fine = ISaxWord::from_series(&zy, 8, 6);
        let mid = fine.reduce(&[3; 8]);
        let coarse = fine.reduce(&[1; 8]);
        let d_fine = fine.mindist(&px, 64);
        let d_mid = mid.mindist(&px, 64);
        let d_coarse = coarse.mindist(&px, 64);
        prop_assert!(d_coarse <= d_mid + 1e-9);
        prop_assert!(d_mid <= d_fine + 1e-9);
    }
}
