//! Gaussian breakpoints for SAX/iSAX quantisation.
//!
//! SAX divides the value axis into `c` stripes that are equiprobable under
//! N(0, 1) (data series are z-normalised first). The stripe boundaries are
//! the `(i/c)`-quantiles of the standard normal, `i = 1..c-1`. The paper's
//! Figure 1 uses `c = 8`, whose boundaries include ±1.15 and -0.31/0 as
//! mentioned in §III-B.
//!
//! The quantiles are computed once per cardinality with the Acklam inverse
//! normal CDF approximation (|relative error| < 1.15e-9, far below the
//! f32 resolution of the data), and cached.

use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

/// Maximum supported cardinality exponent (cardinality `2^MAX_CARD_BITS`).
pub const MAX_CARD_BITS: u8 = 16;

/// Returns the `c - 1` breakpoints dividing N(0,1) into `c` equiprobable
/// stripes, ascending. `c` must be a power of two between 2 and 2^16.
pub fn breakpoints(cardinality: u32) -> &'static [f64] {
    assert!(
        cardinality.is_power_of_two() && cardinality >= 2,
        "cardinality must be a power of two >= 2, got {cardinality}"
    );
    assert!(
        cardinality.trailing_zeros() <= MAX_CARD_BITS as u32,
        "cardinality {cardinality} exceeds 2^{MAX_CARD_BITS}"
    );
    static CACHE: OnceLock<Mutex<HashMap<u32, &'static [f64]>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("breakpoint cache poisoned");
    if let Some(&bps) = guard.get(&cardinality) {
        return bps;
    }
    let v: Vec<f64> = (1..cardinality)
        .map(|i| inv_norm_cdf(i as f64 / cardinality as f64))
        .collect();
    let leaked: &'static [f64] = Box::leak(v.into_boxed_slice());
    guard.insert(cardinality, leaked);
    leaked
}

/// Maps a value to its stripe index (the SAX symbol) under `cardinality`.
/// Stripe 0 is the lowest stripe; stripe `c-1` the highest.
#[inline]
pub fn symbol_for(value: f64, cardinality: u32) -> u16 {
    let bps = breakpoints(cardinality);
    // binary search: number of breakpoints <= value
    bps.partition_point(|&b| b <= value) as u16
}

/// Acklam's rational approximation of the inverse standard-normal CDF.
///
/// Peter Acklam, "An algorithm for computing the inverse normal cumulative
/// distribution function" (2003). Max relative error ~1.15e-9 over (0, 1).
// Acklam's coefficients are reproduced digit-for-digit from the paper.
#[allow(clippy::excessive_precision)]
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "inverse CDF defined on (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_two_has_single_zero_breakpoint() {
        let bps = breakpoints(2);
        assert_eq!(bps.len(), 1);
        assert!(bps[0].abs() < 1e-9);
    }

    #[test]
    fn cardinality_eight_matches_known_table() {
        // Standard SAX table for c=8 (e.g. Lin et al. 2007):
        // [-1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15]
        let bps = breakpoints(8);
        let want = [-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15];
        assert_eq!(bps.len(), 7);
        for (g, w) in bps.iter().zip(want.iter()) {
            assert!((g - w).abs() < 0.01, "{bps:?}");
        }
    }

    #[test]
    fn breakpoints_are_strictly_increasing_and_symmetric() {
        for card in [2u32, 4, 8, 16, 32, 64, 256] {
            let bps = breakpoints(card);
            for w in bps.windows(2) {
                assert!(w[0] < w[1], "card {card}: {bps:?}");
            }
            // Gaussian symmetry: b_i == -b_{c-2-i}
            let m = bps.len();
            for i in 0..m {
                assert!(
                    (bps[i] + bps[m - 1 - i]).abs() < 1e-9,
                    "card {card} not symmetric"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        breakpoints(6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cardinality_one_rejected() {
        breakpoints(1);
    }

    #[test]
    fn symbol_for_assigns_stripes() {
        // c=4 breakpoints are approx [-0.674, 0, 0.674].
        assert_eq!(symbol_for(-2.0, 4), 0);
        assert_eq!(symbol_for(-0.3, 4), 1);
        assert_eq!(symbol_for(0.3, 4), 2);
        assert_eq!(symbol_for(2.0, 4), 3);
    }

    #[test]
    fn symbol_boundaries_are_inclusive_upwards() {
        // A value exactly on a breakpoint belongs to the upper stripe
        // (partition_point with <=).
        assert_eq!(symbol_for(0.0, 4), 2);
    }

    #[test]
    fn inv_norm_cdf_known_quantiles() {
        assert!(inv_norm_cdf(0.5).abs() < 1e-12);
        assert!((inv_norm_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inv_norm_cdf(0.025) + 1.959964).abs() < 1e-5);
        assert!((inv_norm_cdf(0.8413447) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn inv_norm_cdf_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let v = inv_norm_cdf(i as f64 / 1000.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "inverse CDF")]
    fn inv_norm_cdf_rejects_zero() {
        inv_norm_cdf(0.0);
    }
}
