//! Piecewise Aggregate Approximation (PAA), the Step-1 segmentation of
//! CLIMBER-FX (§IV-B, Figure 3).
//!
//! A series of length `n` is divided into `w` segments and each segment is
//! replaced by its mean. When `w` does not divide `n`, the first `n mod w`
//! segments receive one extra reading (deterministic, order-preserving) —
//! equal-size up to a single element, matching common PAA implementations.

/// A PAA signature: `w` segment means in `f64` (PAA feeds pivot-distance
/// computations, where the extra precision is free and avoids drift).
pub type Paa = Vec<f64>;

/// Computes the PAA signature of `values` with `segments` segments.
///
/// # Panics
/// If `segments == 0` or `segments > values.len()`.
pub fn paa(values: &[f32], segments: usize) -> Paa {
    let mut out = Vec::with_capacity(segments);
    paa_into(values, segments, &mut out);
    out
}

/// Appends the PAA signature of `values` to `out` — the allocation-free
/// variant of [`paa`], used where signatures are computed in bulk into a
/// reused arena (e.g. the batched query engine's per-cluster prefilter).
///
/// # Panics
/// If `segments == 0` or `segments > values.len()`.
pub fn paa_into(values: &[f32], segments: usize, out: &mut Vec<f64>) {
    assert!(segments > 0, "segment count must be positive");
    assert!(
        segments <= values.len(),
        "cannot cut {} readings into {} segments",
        values.len(),
        segments
    );
    let n = values.len();
    let base = n / segments;
    let extra = n % segments; // first `extra` segments take base+1 readings
    let mut start = 0usize;
    for s in 0..segments {
        let len = base + usize::from(s < extra);
        let seg = &values[start..start + len];
        // Lane-based sum from the kernels module: SIMD-dispatched, but
        // bit-identical to the scalar tier on every host.
        let mean = climber_series::kernels::sum_f32(seg) / len as f64;
        out.push(mean);
        start += len;
    }
    debug_assert_eq!(start, n);
}

/// Lower-bounding distance between two PAA signatures of series of original
/// length `n` (Keogh et al. 2001): `sqrt(n/w · Σ (a_i − b_i)²)`.
///
/// For equal `n` and `w` this lower-bounds the true Euclidean distance,
/// which the Odyssey-like exact engine uses for pruning.
pub fn paa_dist(a: &[f64], b: &[f64], n: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "PAA signatures must have equal length");
    assert!(!a.is_empty(), "PAA signatures must be non-empty");
    let w = a.len();
    let sum: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum();
    ((n as f64 / w as f64) * sum).sqrt()
}

/// Euclidean distance between PAA signatures *as points in `w`-dim space*
/// (no `n/w` scaling) — the metric used to rank pivots in CLIMBER-FX.
pub fn paa_point_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "PAA signatures must have equal length");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_series::distance::ed;

    #[test]
    fn paper_figure3_example() {
        // Figure 3: n = 12 → w = 4, PAA_X = [-1.5, -0.4, 0.3, 1.5].
        // Reconstruct a series with exactly those segment means.
        let x: Vec<f32> = vec![
            -1.6, -1.5, -1.4, // mean -1.5
            -0.5, -0.4, -0.3, // mean -0.4
            0.2, 0.3, 0.4, // mean 0.3
            1.4, 1.5, 1.6, // mean 1.5
        ];
        let p = paa(&x, 4);
        let want = [-1.5, -0.4, 0.3, 1.5];
        for (got, want) in p.iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-6, "{p:?}");
        }
    }

    #[test]
    fn w_equals_n_is_identity() {
        let x = [1.0f32, 2.0, 3.0];
        let p = paa(&x, 3);
        assert_eq!(p, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn w_one_is_global_mean() {
        let x = [2.0f32, 4.0, 6.0, 8.0];
        let p = paa(&x, 1);
        assert_eq!(p, vec![5.0]);
    }

    #[test]
    fn uneven_split_distributes_remainder_to_front() {
        // n=5, w=2 → segments of 3 and 2 readings.
        let x = [1.0f32, 2.0, 3.0, 10.0, 20.0];
        let p = paa(&x, 2);
        assert!((p[0] - 2.0).abs() < 1e-12);
        assert!((p[1] - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_segments_panics() {
        paa(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "cannot cut")]
    fn more_segments_than_readings_panics() {
        paa(&[1.0, 2.0], 3);
    }

    #[test]
    fn paa_dist_lower_bounds_euclidean() {
        // Classic Keogh bound: PAA distance <= ED for divisible n.
        let x: Vec<f32> = (0..64).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let y: Vec<f32> = (0..64).map(|i| ((i * 5) % 11) as f32 - 5.0).collect();
        for w in [1, 2, 4, 8, 16, 32, 64] {
            let pd = paa_dist(&paa(&x, w), &paa(&y, w), 64);
            let true_d = ed(&x, &y);
            assert!(pd <= true_d + 1e-9, "w={w}: paa_dist {pd} > ED {true_d}");
        }
    }

    #[test]
    fn paa_dist_of_identical_signatures_is_zero() {
        let p = paa(&[1.0f32, 2.0, 3.0, 4.0], 2);
        assert_eq!(paa_dist(&p, &p, 4), 0.0);
    }

    #[test]
    fn point_dist_is_plain_euclidean() {
        let a = vec![0.0, 0.0];
        let b = vec![3.0, 4.0];
        assert!((paa_point_dist(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn paa_into_appends_to_arena() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let y = [10.0f32, 10.0, 20.0, 20.0];
        let mut arena = Vec::new();
        paa_into(&x, 2, &mut arena);
        paa_into(&y, 2, &mut arena);
        assert_eq!(arena, vec![1.5, 3.5, 10.0, 20.0]);
        assert_eq!(&arena[0..2], paa(&x, 2).as_slice());
    }

    #[test]
    fn paa_of_constant_series_is_constant() {
        let x = [3.5f32; 30];
        let p = paa(&x, 6);
        assert!(p.iter().all(|&m| (m - 3.5).abs() < 1e-9));
    }
}
