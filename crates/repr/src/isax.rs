//! iSAX words: SAX with *per-segment* cardinality (§III-B, Figure 1(b)).
//!
//! An iSAX symbol keeps only a prefix of the full-cardinality SAX bits, so
//! different segments can be represented at different resolutions. This is
//! the representation indexed by iSAX trees, DPiSAX and TARDIS. Key
//! operations: reducing/promoting bit widths, prefix containment (does a
//! coarse node cover a fine word?), and the `mindist` lower bound on
//! Euclidean distance used for exact search pruning.

use crate::breakpoints::breakpoints;
use crate::paa::paa;
use crate::sax::sax_from_paa;

/// Maximum bits per segment supported by [`ISaxWord::from_series`].
pub const MAX_BITS: u8 = 10;

/// One iSAX segment: the top `bits` bits of the full-resolution SAX symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ISaxSymbol {
    /// Symbol value in `[0, 2^bits)`.
    pub symbol: u16,
    /// Number of bits retained for this segment (>= 1).
    pub bits: u8,
}

impl ISaxSymbol {
    /// Creates a symbol, checking the value fits the bit width.
    pub fn new(symbol: u16, bits: u8) -> Self {
        assert!((1..=MAX_BITS).contains(&bits), "bits out of range: {bits}");
        assert!(
            (symbol as u32) < (1u32 << bits),
            "symbol {symbol} does not fit in {bits} bits"
        );
        Self { symbol, bits }
    }

    /// Cardinality `2^bits` of this segment.
    #[inline]
    pub fn cardinality(&self) -> u32 {
        1u32 << self.bits
    }

    /// Drops precision to `bits` (keeps the high bits).
    pub fn reduce_to(&self, bits: u8) -> Self {
        assert!(
            bits >= 1 && bits <= self.bits,
            "cannot reduce {} bits to {bits}",
            self.bits
        );
        Self {
            symbol: self.symbol >> (self.bits - bits),
            bits,
        }
    }

    /// True when `self` (coarse) covers `other` (equal or finer resolution):
    /// the high bits of `other` equal `self`.
    pub fn covers(&self, other: &ISaxSymbol) -> bool {
        other.bits >= self.bits && other.reduce_to(self.bits).symbol == self.symbol
    }

    /// The value interval `[lo, hi)` of this symbol's stripe under its own
    /// cardinality; `lo`/`hi` are `-inf`/`+inf` at the extremes.
    pub fn stripe_bounds(&self) -> (f64, f64) {
        let bps = breakpoints(self.cardinality());
        let s = self.symbol as usize;
        let lo = if s == 0 {
            f64::NEG_INFINITY
        } else {
            bps[s - 1]
        };
        let hi = if s == bps.len() {
            f64::INFINITY
        } else {
            bps[s]
        };
        (lo, hi)
    }
}

/// An iSAX word: one [`ISaxSymbol`] per PAA segment, possibly at different
/// resolutions (Figure 1(b)).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ISaxWord {
    /// Per-segment symbols.
    pub symbols: Vec<ISaxSymbol>,
}

impl ISaxWord {
    /// Builds the word of a (z-normalised) series: `segments` segments, all
    /// at `bits` bits.
    pub fn from_series(values: &[f32], segments: usize, bits: u8) -> Self {
        let p = paa(values, segments);
        Self::from_paa(&p, bits)
    }

    /// Builds the word from a PAA signature, all segments at `bits` bits.
    pub fn from_paa(paa_sig: &[f64], bits: u8) -> Self {
        assert!((1..=MAX_BITS).contains(&bits), "bits out of range: {bits}");
        let sax = sax_from_paa(paa_sig, 1u32 << bits);
        Self {
            symbols: sax
                .symbols
                .into_iter()
                .map(|s| ISaxSymbol { symbol: s, bits })
                .collect(),
        }
    }

    /// Word length `w`.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True for an empty word.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Reduces every segment to the per-segment widths in `bits`.
    pub fn reduce(&self, bits: &[u8]) -> Self {
        assert_eq!(bits.len(), self.symbols.len(), "width list length mismatch");
        Self {
            symbols: self
                .symbols
                .iter()
                .zip(bits.iter())
                .map(|(s, &b)| s.reduce_to(b))
                .collect(),
        }
    }

    /// True when every segment of `self` covers the corresponding segment of
    /// `other` — i.e. `other` lies in the subtree labelled `self`.
    pub fn covers(&self, other: &ISaxWord) -> bool {
        self.symbols.len() == other.symbols.len()
            && self
                .symbols
                .iter()
                .zip(other.symbols.iter())
                .all(|(a, b)| a.covers(b))
    }

    /// The classic iSAX `mindist` lower bound between a query PAA signature
    /// and *any* series whose word is covered by `self`.
    ///
    /// `n` is the original series length. Guaranteed `<= ED(query, series)`.
    pub fn mindist(&self, query_paa: &[f64], n: usize) -> f64 {
        assert_eq!(
            query_paa.len(),
            self.symbols.len(),
            "query PAA length must equal word length"
        );
        let w = self.symbols.len();
        let mut sum = 0.0f64;
        for (sym, &q) in self.symbols.iter().zip(query_paa.iter()) {
            let (lo, hi) = sym.stripe_bounds();
            let d = if q < lo {
                lo - q
            } else if q > hi {
                q - hi
            } else {
                0.0
            };
            sum += d * d;
        }
        ((n as f64 / w as f64) * sum).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_series::distance::ed;
    use climber_series::gen::{Domain, RandomWalkGenerator, SeriesGenerator};
    use climber_series::znorm::znormalize;

    #[test]
    fn paper_figure1b_mixed_cardinalities() {
        // Figure 1(b): iSAX = [00, 010, 10, 1] — 2, 3, 2, 1 bits.
        // Build the full-resolution word for means in stripes 0,2,5,7 (c=8)
        // then reduce to the figure's widths.
        let x: Vec<f32> = [-1.5f32, -0.5, 0.5, 1.5]
            .iter()
            .flat_map(|&m| [m - 0.05, m, m + 0.05])
            .collect();
        let w = ISaxWord::from_series(&x, 4, 3);
        let reduced = w.reduce(&[2, 3, 2, 1]);
        let syms: Vec<(u16, u8)> = reduced.symbols.iter().map(|s| (s.symbol, s.bits)).collect();
        // 000→00, 010→010, 101→10, 111→1
        assert_eq!(syms, vec![(0b00, 2), (0b010, 3), (0b10, 2), (0b1, 1)]);
    }

    #[test]
    fn coarse_word_covers_fine_word() {
        let x: Vec<f32> = znormalize(&(0..64).map(|i| (i as f32).sin()).collect::<Vec<_>>());
        let fine = ISaxWord::from_series(&x, 8, 8);
        let coarse = fine.reduce(&[3; 8]);
        assert!(coarse.covers(&fine));
        assert!(!fine.covers(&coarse));
    }

    #[test]
    fn covers_is_reflexive() {
        let x: Vec<f32> = znormalize(&(0..32).map(|i| i as f32).collect::<Vec<_>>());
        let w = ISaxWord::from_series(&x, 4, 4);
        assert!(w.covers(&w));
    }

    #[test]
    fn sibling_words_do_not_cover() {
        let a = ISaxWord {
            symbols: vec![ISaxSymbol::new(0, 1)],
        };
        let b = ISaxWord {
            symbols: vec![ISaxSymbol::new(1, 1)],
        };
        assert!(!a.covers(&b));
        assert!(!b.covers(&a));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn symbol_must_fit_bits() {
        ISaxSymbol::new(4, 2);
    }

    #[test]
    fn stripe_bounds_extremes_are_infinite() {
        let lo_sym = ISaxSymbol::new(0, 3);
        let hi_sym = ISaxSymbol::new(7, 3);
        assert_eq!(lo_sym.stripe_bounds().0, f64::NEG_INFINITY);
        assert_eq!(hi_sym.stripe_bounds().1, f64::INFINITY);
    }

    #[test]
    fn mindist_is_zero_for_own_word() {
        let x: Vec<f32> = znormalize(&(0..64).map(|i| ((i * i) % 17) as f32).collect::<Vec<_>>());
        let p = crate::paa::paa(&x, 8);
        let w = ISaxWord::from_paa(&p, 6);
        assert_eq!(w.mindist(&p, 64), 0.0);
    }

    #[test]
    fn mindist_lower_bounds_true_distance() {
        // For random pairs: mindist(word(Y), PAA(X)) <= ED(X, Y).
        let ds = RandomWalkGenerator::new(64).generate(60, 5);
        for i in 0..30u64 {
            let x = ds.get(i);
            let y = ds.get(i + 30);
            let px = crate::paa::paa(x, 8);
            let wy = ISaxWord::from_series(y, 8, 5);
            let md = wy.mindist(&px, 64);
            let true_d = ed(x, y);
            assert!(md <= true_d + 1e-9, "mindist {md} > ED {true_d}");
            // Reduced (coarser) words must bound at least as loosely.
            let coarse = wy.reduce(&[2; 8]);
            assert!(coarse.mindist(&px, 64) <= md + 1e-9);
        }
    }

    #[test]
    fn mindist_bounds_hold_across_domains() {
        for d in Domain::ALL {
            let ds = d.generate(20, 77);
            let n = ds.series_len();
            let q = ds.get(0);
            let pq = crate::paa::paa(q, 16);
            for id in 1..20u64 {
                let y = ds.get(id);
                let wy = ISaxWord::from_series(y, 16, 4);
                assert!(wy.mindist(&pq, n) <= ed(q, y) + 1e-9, "domain {}", d.name());
            }
        }
    }

    #[test]
    fn reduce_requires_matching_length() {
        let w = ISaxWord {
            symbols: vec![ISaxSymbol::new(1, 2); 4],
        };
        let r = w.reduce(&[1, 1, 2, 2]);
        assert_eq!(r.symbols[0].bits, 1);
        assert_eq!(r.symbols[3].bits, 2);
    }

    #[test]
    #[should_panic(expected = "width list length mismatch")]
    fn reduce_with_wrong_length_panics() {
        let w = ISaxWord {
            symbols: vec![ISaxSymbol::new(0, 1)],
        };
        w.reduce(&[1, 1]);
    }
}
