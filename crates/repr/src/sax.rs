//! SAX words: fixed-cardinality symbolic encodings of PAA signatures
//! (§III-B, Figure 1(a)).
//!
//! A SAX word assigns every PAA segment the index of the N(0,1)-equiprobable
//! stripe containing its mean. All segments share one cardinality; the iSAX
//! variant in [`crate::isax`] relaxes that.

use crate::breakpoints::symbol_for;
use crate::paa::paa;

/// A SAX word: per-segment stripe indices under a single cardinality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SaxWord {
    /// Stripe index of each segment, low stripe = 0.
    pub symbols: Vec<u16>,
    /// The shared cardinality (power of two).
    pub cardinality: u32,
}

impl SaxWord {
    /// Word length `w` (number of segments).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True for an empty word (never produced by [`sax_word`]).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Renders the word as the paper draws it: binary labels per segment,
    /// e.g. `[000, 010, 101, 111]` for Figure 1(a).
    pub fn to_binary_string(&self) -> String {
        let bits = self.cardinality.trailing_zeros() as usize;
        let parts: Vec<String> = self
            .symbols
            .iter()
            .map(|&s| format!("{:0width$b}", s, width = bits))
            .collect();
        format!("[{}]", parts.join(", "))
    }
}

/// Computes the SAX word of a (z-normalised) series with `segments` segments
/// and the given power-of-two `cardinality`.
pub fn sax_word(values: &[f32], segments: usize, cardinality: u32) -> SaxWord {
    let p = paa(values, segments);
    sax_from_paa(&p, cardinality)
}

/// Quantises an existing PAA signature into a SAX word.
pub fn sax_from_paa(paa_sig: &[f64], cardinality: u32) -> SaxWord {
    SaxWord {
        symbols: paa_sig
            .iter()
            .map(|&m| symbol_for(m, cardinality))
            .collect(),
        cardinality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a series whose 4 segment means are the given values
    /// (3 readings per segment as in Figure 1).
    fn series_with_means(means: [f32; 4]) -> Vec<f32> {
        means
            .iter()
            .flat_map(|&m| [m - 0.05, m, m + 0.05])
            .collect()
    }

    #[test]
    fn paper_figure1a_word() {
        // Figure 1(a): SAX = [000, 010, 101, 111] under w=4, c=8.
        // Stripe boundaries for c=8: [-1.15,-0.67,-0.32,0,0.32,0.67,1.15].
        // Pick segment means inside stripes 0, 2, 5, 7.
        let x = series_with_means([-1.5, -0.5, 0.5, 1.5]);
        let w = sax_word(&x, 4, 8);
        assert_eq!(w.symbols, vec![0, 2, 5, 7]);
        assert_eq!(w.to_binary_string(), "[000, 010, 101, 111]");
    }

    #[test]
    fn lossy_collision_from_section_iiib() {
        // §III-B: segments a and c fall in one stripe, b and d in another —
        // SAX cannot tell (a,b) apart from (c,d).
        let a_b = series_with_means([0.9, -0.45, 0.9, -0.45]);
        let c_d = series_with_means([0.8, -0.5, 0.8, -0.5]);
        let w1 = sax_word(&a_b, 4, 8);
        let w2 = sax_word(&c_d, 4, 8);
        assert_eq!(w1, w2, "SAX must collide these by construction");
    }

    #[test]
    fn higher_cardinality_refines() {
        let x = series_with_means([-1.5, -0.5, 0.5, 1.5]);
        let coarse = sax_word(&x, 4, 4);
        let fine = sax_word(&x, 4, 8);
        // Fine symbols, shifted right by one bit, give the coarse symbols.
        for (c, f) in coarse.symbols.iter().zip(fine.symbols.iter()) {
            assert_eq!(*c, f >> 1);
        }
    }

    #[test]
    fn word_hashable_and_comparable() {
        use std::collections::HashSet;
        let x = series_with_means([0.0, 0.0, 0.0, 0.0]);
        let mut set = HashSet::new();
        set.insert(sax_word(&x, 4, 8));
        assert!(set.contains(&sax_word(&x, 4, 8)));
    }

    #[test]
    fn binary_string_width_tracks_cardinality() {
        let x = series_with_means([-1.5, -0.5, 0.5, 1.5]);
        let w = sax_word(&x, 4, 4);
        assert_eq!(w.to_binary_string(), "[00, 01, 10, 11]");
    }
}
