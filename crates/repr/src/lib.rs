//! # climber-repr
//!
//! Dimensionality-reduction representations for data series.
//!
//! CLIMBER's feature extraction (§IV-B) starts from **PAA** (Piecewise
//! Aggregate Approximation): the series is cut into `w` equal segments whose
//! means form a `w`-dimensional signature. The **SAX**/**iSAX** family builds
//! on PAA by quantising each segment mean into one of `c` symbols using
//! Gaussian breakpoints; those representations power the baseline systems
//! (DPiSAX, TARDIS, the Odyssey-like exact engine) and the paper's §III-B
//! discussion of why iSAX loses similarity information.
//!
//! Provided here:
//! * [`paa`](mod@paa) — PAA transform and PAA-space lower-bounding distance;
//! * [`breakpoints`](mod@breakpoints) — Gaussian N(0,1) quantile breakpoints for any
//!   power-of-two cardinality;
//! * [`sax`] — fixed-cardinality SAX words;
//! * [`isax`] — variable-cardinality iSAX words with promotion, prefix
//!   containment and the mindist lower bound.

pub mod breakpoints;
pub mod isax;
pub mod paa;
pub mod sax;

pub use breakpoints::breakpoints;
pub use isax::{ISaxSymbol, ISaxWord};
pub use paa::{paa, paa_dist, Paa};
pub use sax::{sax_word, SaxWord};
