//! Property test: build → save → open is lossless.
//!
//! Across random datasets × configurations, a saved-and-reopened index
//! must carry a **bit-identical** `IndexSkeleton` (structural equality
//! *and* identical serialised bytes) and answer every query — `knn`,
//! adaptive, OD-Smallest, and whole batches under all three
//! [`BatchStrategy`]s — with outcomes equal to the freshly built
//! in-memory index down to distances, counters, and plans.

use climber_core::series::gen::Domain;
use climber_core::{BatchRequest, BatchStrategy, Climber, ClimberConfig};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("climber-rt-{tag}-{}", std::process::id()))
}

const STRATEGIES: [BatchStrategy; 3] = [
    BatchStrategy::Knn,
    BatchStrategy::Adaptive { factor: 4 },
    BatchStrategy::OdSmallest,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn save_open_roundtrip_is_bit_identical(
        seed in 0u64..500,
        n in 150usize..350,
        capacity in 40u64..100,
        prefix_len in 3usize..6,
        domain_pick in 0usize..4,
        k in 1usize..20,
    ) {
        let domain = [Domain::RandomWalk, Domain::Eeg, Domain::Dna, Domain::TexMex][domain_pick];
        let ds = domain.generate(n, seed);
        let config = ClimberConfig::default()
            .with_paa_segments(8)
            .with_pivots(24)
            .with_prefix_len(prefix_len)
            .with_capacity(capacity)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(seed ^ 0x5EED)
            .with_workers(2);
        let built = Climber::build_in_memory(&ds, config);

        let dir = tmp_dir(&format!("{seed}-{n}-{capacity}"));
        fs::remove_dir_all(&dir).ok();
        let manifest = built.save(&dir).unwrap();
        prop_assert_eq!(manifest.num_records, n as u64);

        let reopened = Climber::open(&dir).unwrap();

        // Bit-identical skeleton: structural equality and byte equality.
        prop_assert_eq!(reopened.skeleton(), built.skeleton());
        prop_assert_eq!(reopened.skeleton().to_bytes(), built.skeleton().to_bytes());
        // The exact build configuration came back through the manifest.
        prop_assert_eq!(reopened.config(), built.config());

        // Queries: dataset members and perturbed near-misses.
        let queries: Vec<Vec<f32>> = (0..6u64)
            .map(|i| {
                let mut q = ds.get((i * 37) % n as u64).to_vec();
                if i % 2 == 1 {
                    q[0] += 0.25;
                }
                q
            })
            .collect();

        for strategy in STRATEGIES {
            // Per-query sequential equality.
            for q in &queries {
                let (a, b) = match strategy {
                    BatchStrategy::Knn => (built.knn(q, k), reopened.knn(q, k)),
                    BatchStrategy::Adaptive { factor } => (
                        built.knn_adaptive(q, k, factor),
                        reopened.knn_adaptive(q, k, factor),
                    ),
                    BatchStrategy::OdSmallest => {
                        (built.od_smallest(q, k), reopened.od_smallest(q, k))
                    }
                };
                prop_assert_eq!(a, b, "sequential {:?} diverged after reopen", strategy);
            }
            // Whole-batch equality under the partition-major engine.
            let request = BatchRequest::new(&queries, k, strategy);
            let a = built.batch(&request);
            let b = reopened.batch(&request);
            prop_assert_eq!(
                &a.outcomes, &b.outcomes,
                "batch {:?} diverged after reopen", strategy
            );
        }

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn double_save_is_deterministic(seed in 0u64..200) {
        let ds = Domain::RandomWalk.generate(160, seed);
        let config = ClimberConfig::default()
            .with_paa_segments(8)
            .with_pivots(16)
            .with_prefix_len(4)
            .with_capacity(50)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(seed)
            .with_workers(2);
        let built = Climber::build_in_memory(&ds, config);
        let (d1, d2) = (tmp_dir(&format!("a{seed}")), tmp_dir(&format!("b{seed}")));
        fs::remove_dir_all(&d1).ok();
        fs::remove_dir_all(&d2).ok();
        let m1 = built.save(&d1).unwrap();
        let m2 = built.save(&d2).unwrap();
        // Same index → same manifest, including the dataset fingerprint.
        prop_assert_eq!(&m1, &m2);
        // And a reopened copy re-saves to the same fingerprint.
        let reopened = Climber::open(&d1).unwrap();
        let d3 = tmp_dir(&format!("c{seed}"));
        fs::remove_dir_all(&d3).ok();
        let m3 = reopened.save(&d3).unwrap();
        prop_assert_eq!(m1.fingerprint, m3.fingerprint);
        for d in [d1, d2, d3] {
            fs::remove_dir_all(&d).ok();
        }
    }
}
