//! Property test: the parallel build is bit-identical across thread
//! counts and block sizes.
//!
//! Building the same dataset with the same [`ClimberConfig`] under
//! [`BuildOptions`] of 1, 2 and 8 threads (and unrelated block sizes)
//! must produce a bit-identical serialised skeleton, byte-identical
//! partition payloads, and — for on-disk builds — byte-identical index
//! directories including the manifest (which carries no timestamps, so
//! equality is exact). This is the build-side counterpart of the batch
//! engine's equivalence suite and of `persistence_roundtrip.rs` next
//! door.

use climber_core::dfs::store::PartitionStore;
use climber_core::series::gen::Domain;
use climber_core::{BuildOptions, Climber, ClimberConfig};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("climber-det-{tag}-{}", std::process::id()))
}

fn config(seed: u64, capacity: u64, prefix_len: usize) -> ClimberConfig {
    ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(24)
        .with_prefix_len(prefix_len)
        .with_capacity(capacity)
        .with_alpha(0.5)
        .with_epsilon(1)
        .with_seed(seed ^ 0xD0_0D)
}

/// Every stored partition's raw bytes, ascending by id.
fn partition_bytes<S: PartitionStore>(climber: &Climber<S>) -> Vec<(u32, Vec<u8>)> {
    climber
        .store()
        .ids()
        .into_iter()
        .map(|pid| {
            let reader = climber.store().open(pid).expect("partition readable");
            (pid, reader.raw_bytes().to_vec())
        })
        .collect()
}

/// Byte contents of every file in an index directory, sorted by name.
fn dir_contents(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("index dir readable")
        .map(|e| {
            let e = e.expect("dir entry");
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).expect("file readable"),
            )
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn in_memory_build_is_bit_identical_across_threads(
        seed in 0u64..400,
        n in 150usize..320,
        capacity in 40u64..90,
        prefix_len in 3usize..6,
        block_size in 1usize..128,
        domain_pick in 0usize..4,
    ) {
        let domain = [Domain::RandomWalk, Domain::Eeg, Domain::Dna, Domain::TexMex][domain_pick];
        let ds = domain.generate(n, seed);
        let cfg = config(seed, capacity, prefix_len);

        let reference = Climber::build_in_memory_with(
            &ds,
            cfg,
            BuildOptions::default().with_threads(1).with_block_size(block_size),
        );
        let ref_skeleton = reference.skeleton().to_bytes();
        let ref_partitions = partition_bytes(&reference);

        for threads in [2usize, 8] {
            // A different block size on purpose: neither knob may leak
            // into the output.
            let built = Climber::build_in_memory_with(
                &ds,
                cfg,
                BuildOptions::default()
                    .with_threads(threads)
                    .with_block_size(block_size / 2 + 1),
            );
            prop_assert_eq!(
                &built.skeleton().to_bytes(),
                &ref_skeleton,
                "skeleton diverged at {} threads",
                threads
            );
            prop_assert_eq!(
                &partition_bytes(&built),
                &ref_partitions,
                "partition bytes diverged at {} threads",
                threads
            );
            prop_assert_eq!(built.report().unwrap().threads, threads);
        }
    }

    #[test]
    fn on_disk_build_directories_are_byte_identical(
        seed in 0u64..200,
        n in 150usize..280,
        capacity in 40u64..80,
    ) {
        let ds = Domain::RandomWalk.generate(n, seed);
        let cfg = config(seed, capacity, 4);

        let d1 = tmp_dir(&format!("a{seed}-{n}"));
        let d8 = tmp_dir(&format!("b{seed}-{n}"));
        fs::remove_dir_all(&d1).ok();
        fs::remove_dir_all(&d8).ok();

        let b1 = Climber::build_on_disk_with(
            &ds, &d1, cfg,
            BuildOptions::default().with_threads(1).with_block_size(19),
        ).expect("1-thread build");
        let b8 = Climber::build_on_disk_with(
            &ds, &d8, cfg,
            BuildOptions::default().with_threads(8).with_block_size(64),
        ).expect("8-thread build");

        // The whole directory — every partition file, the skeleton, and
        // the manifest — must match byte for byte.
        prop_assert_eq!(dir_contents(&d1), dir_contents(&d8));

        // And both reopen to indexes that answer identically.
        let r1 = Climber::open(&d1).expect("reopen 1-thread dir");
        let r8 = Climber::open(&d8).expect("reopen 8-thread dir");
        let q = ds.get(7);
        prop_assert_eq!(r1.knn(q, 10), r8.knn(q, 10));
        prop_assert_eq!(b1.knn(q, 10), b8.knn(q, 10));

        fs::remove_dir_all(&d1).ok();
        fs::remove_dir_all(&d8).ok();
    }
}
