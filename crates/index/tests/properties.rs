//! Property-based tests for the index layer: centroid selection, FFD
//! packing, trie construction and skeleton serialisation.

use climber_index::centroids::compute_centroids;
use climber_index::packing::{bin_lower_bound, first_fit_decreasing};
use climber_index::trie::Trie;
use climber_pivot::distances::overlap_distance;
use climber_pivot::pivots::PivotId;
use climber_pivot::signature::RankInsensitive;
use proptest::prelude::*;
use std::collections::HashMap;

/// Strategy: a sorted, distinct rank-insensitive signature of length m
/// over ids < 40.
fn insensitive(m: usize) -> impl Strategy<Value = RankInsensitive> {
    prop::collection::hash_set(0u16..40, m).prop_map(|s| {
        let mut v: Vec<u16> = s.into_iter().collect();
        v.sort_unstable();
        RankInsensitive(v)
    })
}

/// Strategy: members for a trie — (signature of length 4, count).
fn trie_members() -> impl Strategy<Value = Vec<(Vec<PivotId>, u64)>> {
    prop::collection::vec((prop::collection::vec(0u16..12, 4), 1u64..500), 1..40)
}

proptest! {
    #[test]
    fn centroids_are_pairwise_separated(
        sigs in prop::collection::vec((insensitive(5), 1u64..1000), 1..40),
        eps in 0usize..4,
    ) {
        let sel = compute_centroids(&sigs, 1.0, 1, eps, None);
        prop_assert!(!sel.centroids.is_empty());
        for i in 0..sel.centroids.len() {
            for j in (i + 1)..sel.centroids.len() {
                prop_assert!(
                    overlap_distance(&sel.centroids[i], &sel.centroids[j]) >= eps
                );
            }
        }
    }

    #[test]
    fn centroid_cap_is_respected(
        sigs in prop::collection::vec((insensitive(5), 1u64..1000), 1..40),
        cap in 1usize..6,
    ) {
        let sel = compute_centroids(&sigs, 1.0, 1, 0, Some(cap));
        prop_assert!(sel.centroids.len() <= cap);
    }

    #[test]
    fn first_centroid_has_max_frequency(
        sigs in prop::collection::vec((insensitive(5), 1u64..1000), 1..40),
    ) {
        let sel = compute_centroids(&sigs, 1.0, 1, 1, None);
        let max_freq = sigs.iter().map(|&(_, f)| f).max().unwrap();
        let first_freq = sigs
            .iter()
            .filter(|(s, _)| *s == sel.centroids[0])
            .map(|&(_, f)| f)
            .sum::<u64>();
        // first centroid carries the max frequency (ties allowed)
        prop_assert!(first_freq >= max_freq || first_freq == max_freq);
    }

    #[test]
    fn ffd_packs_every_item_once(
        sizes in prop::collection::vec(1u64..100, 0..60),
        capacity in 1u64..200,
    ) {
        let items: Vec<(usize, u64)> = sizes.iter().copied().enumerate().collect();
        let bins = first_fit_decreasing(&items, capacity);
        let mut keys: Vec<usize> = bins.iter().flat_map(|b| b.items.clone()).collect();
        keys.sort_unstable();
        prop_assert_eq!(keys, (0..sizes.len()).collect::<Vec<_>>());
        // no bin overflows unless it holds a single oversized item
        for b in &bins {
            prop_assert!(b.total <= capacity || b.items.len() == 1);
        }
        // bin totals match item sums
        let total: u64 = sizes.iter().sum();
        prop_assert_eq!(bins.iter().map(|b| b.total).sum::<u64>(), total);
    }

    #[test]
    fn ffd_is_within_guarantee_of_lower_bound(
        sizes in prop::collection::vec(1u64..64, 1..60),
    ) {
        let capacity = 64u64;
        let items: Vec<(usize, u64)> = sizes.iter().copied().enumerate().collect();
        let bins = first_fit_decreasing(&items, capacity);
        let lb = bin_lower_bound(&items, capacity).max(1);
        // FFD <= 1.5 OPT + 1 <= 1.5 * (volume bound) rounded up + 1
        prop_assert!(bins.len() as u64 <= (3 * lb).div_ceil(2) + 1);
    }

    #[test]
    fn trie_conserves_mass_and_ids(members in trie_members()) {
        let refs: Vec<(&[PivotId], u64)> =
            members.iter().map(|(s, c)| (&s[..], *c)).collect();
        let total: u64 = members.iter().map(|&(_, c)| c).sum();
        let mut next = 100u64;
        let trie = Trie::build(&refs, 50, 4, &mut next);

        // root mass equals member mass
        prop_assert_eq!(trie.root().est_size, total);
        // every internal node's mass equals its children's sum
        for n in trie.nodes() {
            if !n.is_leaf() {
                let s: u64 = n.children.iter().map(|&(_, c)| trie.node(c).est_size).sum();
                prop_assert_eq!(n.est_size, s);
            }
        }
        // ids unique and allocated from `next`
        let mut ids: Vec<u64> = trie.nodes().iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), trie.len());
        prop_assert_eq!(next, 100 + trie.len() as u64);
    }

    #[test]
    fn trie_descend_never_overshoots(members in trie_members(), probe in prop::collection::vec(0u16..12, 4)) {
        let refs: Vec<(&[PivotId], u64)> =
            members.iter().map(|(s, c)| (&s[..], *c)).collect();
        let mut next = 0u64;
        let trie = Trie::build(&refs, 30, 4, &mut next);
        let d = trie.descend(&probe);
        prop_assert!(d.path_len <= probe.len());
        prop_assert_eq!(trie.node(d.node).depth as usize, d.path_len);
        // member signatures descend along their own path: depth equals
        // node depth at every step by construction
        for (sig, _) in &members {
            let dm = trie.descend(sig);
            prop_assert_eq!(trie.node(dm.node).depth as usize, dm.path_len);
        }
    }

    #[test]
    fn trie_serialization_roundtrip(members in trie_members()) {
        let refs: Vec<(&[PivotId], u64)> =
            members.iter().map(|(s, c)| (&s[..], *c)).collect();
        let mut next = 0u64;
        let mut trie = Trie::build(&refs, 40, 4, &mut next);
        // pack leaves round-robin across 3 partitions
        let leaves = trie.leaves();
        let map: HashMap<u64, u32> = leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| (trie.node(l).id, (i % 3) as u32))
            .collect();
        trie.assign_partitions(&map);

        let mut buf = Vec::new();
        trie.to_bytes(&mut buf);
        let mut r = climber_dfs::format::ByteReader::new(&buf);
        let back = Trie::from_reader(&mut r).unwrap();
        prop_assert!(r.expect_end().is_ok());
        prop_assert_eq!(trie, back);
    }

    #[test]
    fn partitions_cover_all_leaves_after_assignment(members in trie_members()) {
        let refs: Vec<(&[PivotId], u64)> =
            members.iter().map(|(s, c)| (&s[..], *c)).collect();
        let mut next = 0u64;
        let mut trie = Trie::build(&refs, 25, 4, &mut next);
        let leaves = trie.leaves();
        let map: HashMap<u64, u32> = leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| (trie.node(l).id, i as u32))
            .collect();
        trie.assign_partitions(&map);
        // the root's partition set is exactly the union of leaf partitions
        let mut want: Vec<u32> = (0..leaves.len() as u32).collect();
        want.sort_unstable();
        prop_assert_eq!(&trie.root().partitions, &want);
        // every node's partitions are sorted + deduped
        for n in trie.nodes() {
            let mut p = n.partitions.clone();
            p.sort_unstable();
            p.dedup();
            prop_assert_eq!(&p, &n.partitions);
        }
    }
}
