//! Property test: updates are equivalent to a rebuild.
//!
//! The segmented architecture's core guarantee: after **any**
//! interleaving of appends, deletes, flushes and compactions, every
//! query — `knn`, adaptive, OD-Smallest, sequential and batched, at any
//! thread count — answers exactly as an index whose sealed partitions
//! were produced by a from-scratch Step-4 conversion of the *surviving*
//! records under the same frozen skeleton (the CLIMBER++ contract:
//! pivots, centroids and tries never change; only data placement does).
//!
//! The reference index is built here by an independent, deliberately
//! naive routine — route each survivor with `IndexSkeleton::place`,
//! group by `(partition, node)`, seal with a [`PartitionWriter`] — so the
//! test does not share the flush/fold code path it is checking.
//!
//! The same equivalence is then pushed through persistence: save →
//! [`Climber::open`] (read-only, journal replayed) and
//! [`Climber::open_rw`] → flush → reopen.

use climber_core::dfs::format::PartitionWriter;
use climber_core::dfs::store::{MemStore, PartitionStore};
use climber_core::series::gen::Domain;
use climber_core::{BatchRequest, BatchStrategy, Climber, ClimberConfig, IndexSkeleton};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

const STRATEGIES: [BatchStrategy; 3] = [
    BatchStrategy::Knn,
    BatchStrategy::Adaptive { factor: 4 },
    BatchStrategy::OdSmallest,
];

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("climber-upd-{tag}-{}", std::process::id()))
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// From-scratch conversion of `records` under `skeleton`: the
/// rebuild-reference the incremental index must match bit for bit.
fn rebuild_reference(
    skeleton: &IndexSkeleton,
    records: &BTreeMap<u64, Vec<f32>>,
) -> Climber<MemStore> {
    let series_len = records
        .values()
        .next()
        .map(Vec::len)
        .expect("reference needs at least one surviving record");
    let mut routed: BTreeMap<u32, BTreeMap<u64, Vec<u64>>> = BTreeMap::new();
    for (&id, vals) in records {
        let p = skeleton.place(vals, id);
        routed
            .entry(p.partition)
            .or_default()
            .entry(p.node)
            .or_default()
            .push(id);
    }
    let store = MemStore::new();
    for pid in skeleton.partition_ids() {
        // Group ids are irrelevant to query execution; 0 keeps the
        // reference independent of builder internals.
        let mut w = PartitionWriter::new(0, series_len);
        if let Some(clusters) = routed.get(&pid) {
            for (&node, ids) in clusters {
                w.push_cluster(node, ids.iter().map(|id| (*id, records[id].as_slice())));
            }
        }
        store.put(pid, w.finish()).unwrap();
    }
    Climber::from_parts(skeleton.clone(), store)
}

/// Asserts that `a` (the incremental index) and `b` (the rebuild) answer
/// identically — full outcomes (results, distances, scan counters, plan)
/// for every strategy, sequentially and in batches at 1 and 8 threads.
fn assert_equivalent<SA: PartitionStore, SB: PartitionStore>(
    a: &Climber<SA>,
    b: &Climber<SB>,
    queries: &[Vec<f32>],
    k: usize,
    ctx: &str,
) -> Result<(), TestCaseError> {
    for strategy in STRATEGIES {
        for q in queries {
            let (oa, ob) = match strategy {
                BatchStrategy::Knn => (a.knn(q, k), b.knn(q, k)),
                BatchStrategy::Adaptive { factor } => {
                    (a.knn_adaptive(q, k, factor), b.knn_adaptive(q, k, factor))
                }
                BatchStrategy::OdSmallest => (a.od_smallest(q, k), b.od_smallest(q, k)),
            };
            prop_assert_eq!(oa, ob, "sequential {:?} diverged ({})", strategy, ctx);
        }
        for threads in [1usize, 8] {
            let req = BatchRequest::new(queries, k, strategy).with_threads(threads);
            let (ba, bb) = (a.batch(&req), b.batch(&req));
            prop_assert_eq!(
                &ba.outcomes,
                &bb.outcomes,
                "batch {:?} at {} threads diverged ({})",
                strategy,
                threads,
                ctx
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn updates_equal_rebuild_of_survivors(
        seed in 0u64..400,
        n in 120usize..240,
        appends in 4usize..40,
        deletes in 2usize..30,
        capacity in 40u64..90,
        k in 1usize..14,
        domain_pick in 0usize..4,
        flush_every in 5usize..60,
    ) {
        let domain = [Domain::RandomWalk, Domain::Eeg, Domain::Dna, Domain::TexMex][domain_pick];
        let ds = domain.generate(n, seed);
        let extra = domain.generate(appends, seed ^ 0xE17A);
        let config = ClimberConfig::default()
            .with_paa_segments(8)
            .with_pivots(24)
            .with_prefix_len(4)
            .with_capacity(capacity)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(seed ^ 0x5EED)
            .with_workers(2);
        let climber = Climber::build_in_memory(&ds, config);

        // The live set the incremental index must be equivalent to.
        let mut live: BTreeMap<u64, Vec<f32>> =
            (0..n as u64).map(|i| (i, ds.get(i).to_vec())).collect();

        // Deterministic interleaving of appends (singly and in batches),
        // deletes, and flush/compact folds at random points.
        let mut state = seed ^ 0xC11B;
        let (mut appended, mut deleted) = (0usize, 0usize);
        let mut op = 0usize;
        while appended < appends || deleted < deletes {
            let r = splitmix(&mut state);
            let do_append = if appended < appends && deleted < deletes {
                r % 2 == 0
            } else {
                appended < appends
            };
            if do_append {
                if r % 5 == 0 && appends - appended >= 3 {
                    // grouped routing pass
                    let batch: Vec<Vec<f32>> = (0..3)
                        .map(|j| extra.get((appended + j) as u64).to_vec())
                        .collect();
                    let ids = climber.append_batch(&batch).unwrap();
                    for (id, vals) in ids.into_iter().zip(batch) {
                        live.insert(id, vals);
                    }
                    appended += 3;
                } else {
                    let vals = extra.get(appended as u64).to_vec();
                    let id = climber.append(&vals).unwrap();
                    live.insert(id, vals);
                    appended += 1;
                }
            } else {
                let keys: Vec<u64> = live.keys().copied().collect();
                let id = keys[(r % keys.len() as u64) as usize];
                prop_assert!(climber.delete(id).unwrap());
                live.remove(&id);
                deleted += 1;
            }
            op += 1;
            if op % flush_every == 0 {
                if r % 3 == 0 {
                    climber.compact().unwrap();
                } else {
                    climber.flush().unwrap();
                }
            }
        }

        // Queries: survivors, deleted-record probes, and appended records.
        let queries: Vec<Vec<f32>> = (0..6u64)
            .map(|i| {
                let mut q = ds.get((i * 41) % n as u64).to_vec();
                if i % 2 == 1 {
                    q[0] += 0.25;
                }
                q
            })
            .chain(std::iter::once(extra.get(0).to_vec()))
            .collect();

        let reference = rebuild_reference(climber.skeleton(), &live);
        assert_equivalent(&climber, &reference, &queries, k, "in memory")?;

        // Persistence: the journal carries unfolded segments through a
        // save; a read-only open and a writable open both replay it.
        let dir = tmp_dir(&format!("{seed}-{n}"));
        fs::remove_dir_all(&dir).ok();
        climber.save(&dir).unwrap();
        let reopened_ro = Climber::open(&dir).unwrap();
        prop_assert!(!reopened_ro.is_writable());
        assert_equivalent(&reopened_ro, &reference, &queries, k, "reopened read-only")?;

        let reopened_rw = Climber::open_rw(&dir).unwrap();
        prop_assert!(reopened_rw.is_writable());
        assert_equivalent(&reopened_rw, &reference, &queries, k, "reopened writable")?;

        // Folding everything on the reopened index must change nothing —
        // and the re-sealed directory must cold-open to the same answers.
        reopened_rw.compact().unwrap();
        prop_assert!(reopened_rw.delta().is_empty());
        prop_assert!(reopened_rw.tombstones().is_empty());
        assert_equivalent(&reopened_rw, &reference, &queries, k, "after compaction")?;
        let cold = Climber::open(&dir).unwrap();
        assert_equivalent(&cold, &reference, &queries, k, "cold reopen after compaction")?;

        fs::remove_dir_all(&dir).ok();
    }
}
