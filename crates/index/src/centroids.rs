//! Computation of group centroids (Algorithm 2).
//!
//! Input: the aggregated list `L = [(P4↛, freq)]` of distinct
//! rank-insensitive signatures in the sample with their frequencies.
//! The algorithm walks `L` in descending frequency order and keeps a
//! signature as a new centroid when (a) it is at least `ε` away (in OD) from
//! every centroid chosen so far — good space coverage — and (b) its group is
//! expected to clear the (sample-scaled) capacity threshold `α·c` — no tiny
//! groups. Selection stops at the first under-threshold candidate or when
//! `max_centroids` is reached.

use climber_pivot::distances::overlap_distance;
use climber_pivot::signature::RankInsensitive;

/// Outcome of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CentroidSelection {
    /// The selected centroids, in selection order. The special fall-back
    /// centroid `<*,*,...>` is *not* materialised here; the skeleton
    /// represents it as group 0.
    pub centroids: Vec<RankInsensitive>,
    /// Why selection stopped (observability for experiments).
    pub stop_reason: StopReason,
}

/// Why Algorithm 2 stopped adding centroids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The candidate list was exhausted.
    ListExhausted,
    /// A candidate's estimated group size fell below `α·c` (line 12-13).
    SizeThreshold,
    /// The `MaxCentroids` cap was reached (line 15-16).
    MaxCentroids,
}

/// Algorithm 2: selects group centroids from the aggregated signature list.
///
/// * `sig_freqs` — distinct rank-insensitive signatures with sample
///   frequencies (order irrelevant; sorted internally).
/// * `alpha` — the sampling fraction the frequencies were measured at.
/// * `capacity` — the storage capacity constraint `c` in records.
/// * `epsilon` — minimum OD between any two chosen centroids.
/// * `max_centroids` — optional cap.
///
/// # Panics
/// If `sig_freqs` is empty or `alpha` is outside (0, 1].
pub fn compute_centroids(
    sig_freqs: &[(RankInsensitive, u64)],
    alpha: f64,
    capacity: u64,
    epsilon: usize,
    max_centroids: Option<usize>,
) -> CentroidSelection {
    assert!(!sig_freqs.is_empty(), "no signatures to select from");
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");

    // Line 2: sort L descending by frequency. Ties are broken by signature
    // so the selection is deterministic regardless of input order.
    let mut l: Vec<&(RankInsensitive, u64)> = sig_freqs.iter().collect();
    l.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let total_freq: u64 = l.iter().map(|&&(_, f)| f).sum();
    let threshold = alpha * capacity as f64;

    // Line 3: highest-frequency signature is the first centroid.
    let mut centroids: Vec<RankInsensitive> = vec![l[0].0.clone()];
    let mut centroid_freq: u64 = l[0].1;

    if let Some(cap) = max_centroids {
        if centroids.len() >= cap {
            return CentroidSelection {
                centroids,
                stop_reason: StopReason::MaxCentroids,
            };
        }
    }

    let mut stop_reason = StopReason::ListExhausted;
    for &&(ref sig, freq) in l.iter().skip(1) {
        // Lines 5-9: skip candidates too close to an existing centroid.
        if centroids.iter().any(|c| overlap_distance(c, sig) < epsilon) {
            continue;
        }
        // Lines 10-12: estimated group size, assuming the remaining
        // non-centroid mass spreads uniformly over the would-be centroids.
        let non_centroid_freq = total_freq - centroid_freq - freq;
        let size_est = freq as f64 + non_centroid_freq as f64 / (centroids.len() + 1) as f64;
        if size_est < threshold {
            stop_reason = StopReason::SizeThreshold;
            break;
        }
        // Line 14: accept.
        centroids.push(sig.clone());
        centroid_freq += freq;
        // Lines 15-16: optional cap.
        if let Some(cap) = max_centroids {
            if centroids.len() >= cap {
                stop_reason = StopReason::MaxCentroids;
                break;
            }
        }
    }

    CentroidSelection {
        centroids,
        stop_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ri(ids: &[u16]) -> RankInsensitive {
        let mut v = ids.to_vec();
        v.sort_unstable();
        RankInsensitive(v)
    }

    #[test]
    fn highest_frequency_becomes_first_centroid() {
        let l = vec![
            (ri(&[1, 2, 3]), 10),
            (ri(&[7, 8, 9]), 50),
            (ri(&[4, 5, 6]), 20),
        ];
        let sel = compute_centroids(&l, 1.0, 1, 1, None);
        assert_eq!(sel.centroids[0], ri(&[7, 8, 9]));
    }

    #[test]
    fn close_candidates_are_skipped() {
        // Second signature differs from first in one pivot: OD = 1 < ε = 2.
        let l = vec![
            (ri(&[1, 2, 3]), 50),
            (ri(&[1, 2, 4]), 40),
            (ri(&[7, 8, 9]), 30),
        ];
        let sel = compute_centroids(&l, 1.0, 1, 2, None);
        assert_eq!(sel.centroids, vec![ri(&[1, 2, 3]), ri(&[7, 8, 9])]);
    }

    #[test]
    fn epsilon_zero_accepts_near_duplicates() {
        let l = vec![(ri(&[1, 2, 3]), 50), (ri(&[1, 2, 4]), 40)];
        let sel = compute_centroids(&l, 1.0, 1, 0, None);
        assert_eq!(sel.centroids.len(), 2);
    }

    #[test]
    fn size_threshold_stops_selection() {
        // capacity 1000 at α=0.1 → threshold 100 sample records.
        // Low-frequency tail cannot justify more centroids.
        let l = vec![
            (ri(&[1, 2, 3]), 500),
            (ri(&[4, 5, 6]), 400),
            (ri(&[7, 8, 9]), 3),
            (ri(&[10, 11, 12]), 2),
        ];
        let sel = compute_centroids(&l, 0.1, 1_000, 2, None);
        assert_eq!(sel.centroids.len(), 2);
        assert_eq!(sel.stop_reason, StopReason::SizeThreshold);
    }

    #[test]
    fn max_centroids_cap_respected() {
        let l: Vec<(RankInsensitive, u64)> = (0..20u16)
            .map(|i| (ri(&[i * 3, i * 3 + 1, i * 3 + 2]), 100 - i as u64))
            .collect();
        let sel = compute_centroids(&l, 1.0, 1, 3, Some(4));
        assert_eq!(sel.centroids.len(), 4);
        assert_eq!(sel.stop_reason, StopReason::MaxCentroids);
    }

    #[test]
    fn selection_is_deterministic_under_input_order() {
        let mut l = vec![
            (ri(&[1, 2, 3]), 10),
            (ri(&[4, 5, 6]), 10),
            (ri(&[7, 8, 9]), 10),
        ];
        let a = compute_centroids(&l, 1.0, 1, 1, None);
        l.reverse();
        let b = compute_centroids(&l, 1.0, 1, 1, None);
        assert_eq!(a, b);
    }

    #[test]
    fn all_selected_centroids_are_epsilon_separated() {
        let l: Vec<(RankInsensitive, u64)> = (0..30u16)
            .map(|i| {
                (
                    ri(&[i % 10, (i + 3) % 10 + 10, (i + 7) % 10 + 20]),
                    (30 - i) as u64 * 10,
                )
            })
            .collect();
        let eps = 2;
        let sel = compute_centroids(&l, 1.0, 1, eps, None);
        for i in 0..sel.centroids.len() {
            for j in (i + 1)..sel.centroids.len() {
                assert!(
                    overlap_distance(&sel.centroids[i], &sel.centroids[j]) >= eps,
                    "centroids {i} and {j} too close"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "no signatures")]
    fn empty_list_panics() {
        compute_centroids(&[], 1.0, 1, 1, None);
    }

    #[test]
    fn single_signature_yields_single_centroid() {
        let l = vec![(ri(&[1, 2, 3]), 5)];
        let sel = compute_centroids(&l, 0.5, 10, 2, None);
        assert_eq!(sel.centroids.len(), 1);
        assert_eq!(sel.stop_reason, StopReason::ListExhausted);
    }
}
