//! # climber-index
//!
//! CLIMBER-INX: the two-level index of §IV-C/IV-D and its four-step
//! construction pipeline (§V, Figure 6).
//!
//! Level 1 — **groups**: coarse clusters in the rank-insensitive signature
//! space around data-driven centroids ([`centroids`], Algorithm 2), with a
//! fall-back group `G0` for objects overlapping no centroid.
//!
//! Level 2 — **partitions**: oversized groups are split by a trie over
//! rank-sensitive prefixes ([`trie`], Definition 12) whose leaves are packed
//! into capacity-bounded physical partitions with First-Fit-Decreasing
//! ([`packing`], Definition 13).
//!
//! [`skeleton`] holds the serialisable global index (the structure the
//! master node keeps in memory and broadcasts), and [`builder`] drives the
//! pipeline: sample → signatures → centroids → groups/tries/packing → full
//! re-distribution into a [`climber_dfs::PartitionStore`].

pub mod builder;
pub mod centroids;
pub mod config;
pub mod packing;
pub mod skeleton;
pub mod trie;

pub use builder::{BuildReport, IndexBuilder};
pub use centroids::compute_centroids;
pub use config::IndexConfig;
pub use packing::first_fit_decreasing;
pub use skeleton::{GroupId, GroupMeta, IndexSkeleton, FALLBACK_GROUP};
pub use trie::{Trie, TrieNode};
