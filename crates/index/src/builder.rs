//! The four-step index construction pipeline (§V, Figure 6).
//!
//! 1. **Sampling + signature generation** — a partition-level α-sample of
//!    the raw data is converted to PAA; `r` pivots are drawn at random from
//!    the sample and every sample series gets its `P4→` signature.
//! 2. **Centroid computation** — signatures are aggregated to
//!    `[(P4→, freq)]` then `[(P4↛, freq)]`, and Algorithm 2 selects the
//!    group centroids.
//! 3. **Groups & partitions** — the aggregated rank-sensitive signatures
//!    are assigned to centroids (Algorithm 1); oversized groups grow tries
//!    (Def. 12) whose leaves are FFD-packed into partitions (Def. 13); each
//!    group receives a default partition. Output: the index skeleton.
//! 4. **Re-distribution** — pivots and skeleton are broadcast; every record
//!    of the full dataset is converted and routed (group → trie →
//!    partition), shuffled by partition, and written out clustered by trie
//!    node.
//!
//! The report splits wall-clock time into the three phases of Figure 10(a):
//! skeleton building, full-data conversion, and re-distribution.
//!
//! ## Parallel execution & determinism
//!
//! Every phase fans out across [`BuildOptions::threads`] workers, and the
//! output is **bit-identical for any thread count and any block size**:
//!
//! * records are processed in contiguous id blocks
//!   ([`climber_series::dataset::Dataset::blocks`]) that workers own
//!   end-to-end, with per-worker [`SignatureScratch`] buffers so the hot
//!   conversion loops allocate nothing per record;
//! * per-block results (sample signature frequencies, step-4 routing
//!   shards) merge either commutatively (frequency counts) or in fixed
//!   block order (routing shards), so record ids stay ascending inside
//!   every `(partition, trie node)` cluster exactly as a sequential scan
//!   would leave them;
//! * partitions are written concurrently — one [`PartitionWriter`] per
//!   partition fanned over a work-queue [`rayon::scope`] — but each
//!   partition's bytes depend only on its own (deterministic) cluster
//!   contents, so write completion order is irrelevant.
//!
//! Peak memory stays bounded: the shuffle index holds record *ids* only
//! (the values stream straight from the dataset into at most `threads`
//! in-flight partition writers), never a second copy of the dataset.

use crate::centroids::compute_centroids;
use crate::config::IndexConfig;
use crate::skeleton::{GroupId, GroupMeta, IndexSkeleton, FALLBACK_GROUP};
use crate::trie::Trie;
use climber_dfs::cluster::{Broadcast, Cluster};
use climber_dfs::format::{PartitionWriter, TrieNodeId};
use climber_dfs::stats::IoSnapshot;
use climber_dfs::store::{PartitionId, PartitionStore};
use climber_pivot::permutation::pivot_permutation_prefix_with;
use climber_pivot::pivots::{PivotId, PivotSet};
use climber_pivot::signature::{DualSignature, RankInsensitive, RankSensitive, SignatureScratch};
use climber_repr::paa::paa_into;
use climber_series::dataset::Dataset;
use climber_series::sampling::{partition_level_sample, partitions_for_alpha};
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;
use std::time::Instant;

/// Execution knobs of one index build — how the work is run, as opposed to
/// [`IndexConfig`], which defines *what* is built. Two builds of the same
/// dataset and config produce bit-identical output under any options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Worker threads for every build phase; `0` means "use
    /// [`std::thread::available_parallelism`]".
    pub threads: usize,
    /// Records per parallel work block. Bounds the transient per-worker
    /// state (scratch buffers, routing shards); does not affect output.
    pub block_size: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            block_size: Self::DEFAULT_BLOCK_SIZE,
        }
    }
}

impl BuildOptions {
    /// Default records per work block.
    pub const DEFAULT_BLOCK_SIZE: usize = 4_096;

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the records-per-block work granularity.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// The thread count a build actually uses.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// The block size a build actually uses (never zero).
    pub fn resolved_block_size(&self) -> usize {
        self.block_size.max(1)
    }
}

/// Timings and statistics of one index build.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Phase 1-3 wall time (sampling through skeleton).
    pub skeleton_secs: f64,
    /// Step-4 signature extraction wall time over the full dataset.
    pub conversion_secs: f64,
    /// Step-4 shuffle + partition-write wall time.
    pub redistribution_secs: f64,
    /// Records in the sample.
    pub sampled_records: usize,
    /// Distinct rank-sensitive signatures in the sample.
    pub distinct_sensitive: usize,
    /// Distinct rank-insensitive signatures in the sample.
    pub distinct_insensitive: usize,
    /// Real groups created (excluding the fall-back).
    pub num_groups: usize,
    /// Physical partitions written.
    pub num_partitions: usize,
    /// Total trie nodes across groups.
    pub num_trie_nodes: usize,
    /// Records that landed in the fall-back group.
    pub fallback_records: u64,
    /// Records routed to a default partition (incomplete trie path).
    pub default_routed_records: u64,
    /// Serialised skeleton size in bytes (Figure 8(b)'s metric).
    pub skeleton_bytes: usize,
    /// I/O performed during the build.
    pub io: IoSnapshot,
    /// Worker threads the build ran with (the resolved
    /// [`BuildOptions::threads`]).
    pub threads: usize,
    /// Sample records processed per second in phases 1-3.
    pub skeleton_records_per_sec: f64,
    /// Full-dataset records converted per second in step 4a.
    pub conversion_records_per_sec: f64,
    /// Records shuffled and written per second in step 4b.
    pub redistribution_records_per_sec: f64,
}

impl BuildReport {
    /// Total build wall time.
    pub fn total_secs(&self) -> f64 {
        self.skeleton_secs + self.conversion_secs + self.redistribution_secs
    }
}

/// Records-per-second with a zero-duration guard (tiny builds can finish a
/// phase below timer resolution).
fn per_sec(records: usize, secs: f64) -> f64 {
    records as f64 / secs.max(1e-9)
}

/// Contiguous index ranges of `0..len` in runs of at most `block`.
fn range_blocks(len: usize, block: usize) -> Vec<Range<usize>> {
    (0..len)
        .step_by(block.max(1))
        .map(|s| s..(s + block).min(len))
        .collect()
}

/// One worker's routing shard for a block of records: where each record of
/// the block lands, grouped by partition, in the block's (ascending-id)
/// scan order.
struct BlockShard {
    routed: HashMap<PartitionId, Vec<(TrieNodeId, u64)>>,
    fallback: u64,
    via_default: u64,
}

/// Drives index construction on a simulated cluster.
#[derive(Debug)]
pub struct IndexBuilder {
    config: IndexConfig,
    options: BuildOptions,
    cluster: Cluster,
}

impl IndexBuilder {
    /// Creates a builder with `config.workers` simulated workers (the
    /// historical behaviour; see [`IndexBuilder::with_options`] for
    /// explicit thread/block control).
    pub fn new(config: IndexConfig) -> Self {
        Self::with_options(config, BuildOptions::default().with_threads(config.workers))
    }

    /// Creates a builder running every phase across
    /// `options.resolved_threads()` workers in blocks of
    /// `options.resolved_block_size()` records. The options affect wall
    /// time and peak memory only — never the built index.
    pub fn with_options(config: IndexConfig, options: BuildOptions) -> Self {
        let cluster = Cluster::new(options.resolved_threads());
        Self {
            config,
            options,
            cluster,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The execution options in use.
    pub fn options(&self) -> &BuildOptions {
        &self.options
    }

    /// Builds the index over `ds`, writing partitions into `store`.
    /// Returns the skeleton and a build report.
    pub fn build<S: PartitionStore>(
        &self,
        ds: &Dataset,
        store: &S,
    ) -> (IndexSkeleton, BuildReport) {
        let cfg = &self.config;
        cfg.validate(ds.series_len());
        assert!(ds.num_series() > 0, "cannot index an empty dataset");
        let io_before = store.stats().snapshot();
        let w = cfg.paa_segments;
        let block_size = self.options.resolved_block_size();

        // ---- Steps 1-3: skeleton from a partition-level sample ----
        let t0 = Instant::now();
        let sample_ids = self.sample_ids(ds);
        let sampled_records = sample_ids.len();
        let achieved_alpha = sampled_records as f64 / ds.num_series() as f64;
        let sample_blocks = range_blocks(sampled_records, block_size);

        // Step 1a: PAA of the sample, block-parallel. Each worker appends
        // into a per-block arena via `paa_into` (no per-record `Vec`);
        // arenas concatenate in block order into one flat `w`-strided
        // arena, so indexing is position-stable for any thread count.
        let sample_paa: Vec<f64> = {
            let ids = &sample_ids;
            self.cluster
                .par_map(sample_blocks.clone(), move |r| {
                    let mut arena = Vec::with_capacity(r.len() * w);
                    for i in r {
                        paa_into(ds.get(ids[i]), w, &mut arena);
                    }
                    arena
                })
                .into_iter()
                .flatten()
                .collect()
        };
        let pivots = select_pivots(&sample_paa, w, cfg.num_pivots, cfg.seed);
        let bpivots = Broadcast::new(pivots);

        // Step 1b + 2 (aggregation): rank-sensitive signatures of the
        // sample, extracted block-parallel with one selection buffer per
        // block and pre-aggregated into per-block frequency maps. The
        // merge is commutative counting, so the final map — and everything
        // derived from it — is independent of block or thread schedule.
        let freq_maps: Vec<HashMap<Vec<PivotId>, u64>> = {
            let bp = bpivots.clone();
            let arena = &sample_paa;
            self.cluster.par_map(sample_blocks, move |r| {
                let mut heap: Vec<(f64, PivotId)> = Vec::with_capacity(cfg.prefix_len + 1);
                let mut freq: HashMap<Vec<PivotId>, u64> = HashMap::new();
                for i in r {
                    let point = &arena[i * w..(i + 1) * w];
                    let prefix =
                        pivot_permutation_prefix_with(&bp, point, cfg.prefix_len, &mut heap);
                    *freq.entry(prefix).or_insert(0) += 1;
                }
                freq
            })
        };
        let mut sens_freq: HashMap<Vec<PivotId>, u64> = HashMap::new();
        for map in freq_maps {
            for (sig, f) in map {
                *sens_freq.entry(sig).or_insert(0) += f;
            }
        }
        let distinct_sensitive = sens_freq.len();
        let mut insens_freq: HashMap<Vec<PivotId>, u64> = HashMap::new();
        for (s, f) in &sens_freq {
            let mut ids = s.clone();
            ids.sort_unstable();
            *insens_freq.entry(ids).or_insert(0) += f;
        }
        let distinct_insensitive = insens_freq.len();
        let insens_list: Vec<(RankInsensitive, u64)> = insens_freq
            .into_iter()
            .map(|(ids, f)| (RankInsensitive(ids), f))
            .collect();
        let selection = compute_centroids(
            &insens_list,
            achieved_alpha.max(f64::MIN_POSITIVE),
            cfg.capacity,
            cfg.epsilon,
            cfg.max_centroids,
        );
        let centroids = selection.centroids;

        // Step 3: group the aggregated sensitive signatures (Algorithm 1,
        // parallel over the distinct-signature list in its deterministic
        // sorted order), build tries, pack leaves, assign partition ids
        // and defaults.
        let scale = 1.0 / achieved_alpha.max(f64::MIN_POSITIVE);
        let mut group_members: Vec<Vec<(Vec<PivotId>, u64)>> =
            vec![Vec::new(); centroids.len() + 1]; // [0] = fall-back
        let mut sens_list: Vec<(Vec<PivotId>, u64)> = sens_freq.into_iter().collect();
        sens_list.sort_unstable(); // deterministic iteration order
        let assigned: Vec<usize> = {
            let list = &sens_list;
            let cents = &centroids;
            self.cluster
                .par_map(range_blocks(sens_list.len(), block_size), move |r| {
                    r.map(|i| {
                        let sig_ids = &list[i].0;
                        let sig = DualSignature::from_sensitive(RankSensitive(sig_ids.clone()));
                        let tie_seed = sig_hash(sig_ids) ^ cfg.seed;
                        match climber_pivot::assignment::assign_group(
                            cents, &sig, cfg.decay, tie_seed,
                        ) {
                            climber_pivot::assignment::Assignment::Fallback => 0,
                            a => a.centroid().expect("non-fallback") + 1,
                        }
                    })
                    .collect::<Vec<usize>>()
                })
        }
        .into_iter()
        .flatten()
        .collect();
        for (i, (sig_ids, freq)) in sens_list.into_iter().enumerate() {
            let est = ((freq as f64) * scale).round().max(1.0) as u64;
            group_members[assigned[i]].push((sig_ids, est));
        }

        let mut next_node: TrieNodeId = 0;
        let mut next_partition: PartitionId = 0;
        let mut groups: Vec<GroupMeta> = Vec::with_capacity(centroids.len() + 1);
        let mut partition_group: BTreeMap<PartitionId, GroupId> = BTreeMap::new();
        for (g, members) in group_members.iter().enumerate() {
            let refs: Vec<(&[PivotId], u64)> = members.iter().map(|(s, c)| (&s[..], *c)).collect();
            // The fall-back group holds structurally unrelated objects, so
            // it gets no trie (Figure 5 shows G0 as a bare entry).
            let mut trie = if g == FALLBACK_GROUP as usize {
                Trie::build(&[], cfg.capacity, 0, &mut next_node)
            } else {
                Trie::build(&refs, cfg.capacity, cfg.prefix_len, &mut next_node)
            };
            // FFD-pack the leaves of this group into partitions.
            let leaves = trie.leaves();
            let items: Vec<(TrieNodeId, u64)> = leaves
                .iter()
                .map(|&l| (trie.node(l).id, trie.node(l).est_size.max(1)))
                .collect();
            let bins = crate::packing::first_fit_decreasing(&items, cfg.capacity);
            let mut leaf_to_partition: HashMap<TrieNodeId, PartitionId> = HashMap::new();
            let mut bin_pids: Vec<(PartitionId, u64)> = Vec::with_capacity(bins.len());
            for bin in &bins {
                let pid = next_partition;
                next_partition += 1;
                partition_group.insert(pid, g as GroupId);
                for &node in &bin.items {
                    leaf_to_partition.insert(node, pid);
                }
                bin_pids.push((pid, bin.total));
            }
            trie.assign_partitions(&leaf_to_partition);
            // Default partition: smallest occupancy among the group's bins
            // (§V: "typically the partition with the smallest occupancy").
            let default_partition = bin_pids
                .iter()
                .min_by_key(|&&(pid, total)| (total, pid))
                .map(|&(pid, _)| pid)
                .expect("every group has at least one partition");
            let est_size: u64 = members.iter().map(|&(_, c)| c).sum();
            groups.push(GroupMeta {
                id: g as GroupId,
                centroid: if g == 0 {
                    None
                } else {
                    Some(centroids[g - 1].clone())
                },
                trie,
                default_partition,
                est_size,
            });
        }

        let skeleton = IndexSkeleton {
            paa_segments: cfg.paa_segments,
            prefix_len: cfg.prefix_len,
            decay: cfg.decay,
            pivots: (*bpivots).clone(),
            groups,
            seed: cfg.seed,
        };
        let skeleton_secs = t0.elapsed().as_secs_f64();

        // ---- Step 4a: convert the entire dataset (broadcast skeleton) ----
        // Workers own contiguous record blocks; each routes its block into
        // a thread-local partition shard with one reused signature scratch.
        // Only ids flow into the shards — record values are re-read from
        // the dataset when writing, so conversion holds no record copies.
        let t1 = Instant::now();
        let n = ds.num_series();
        let bskel = Broadcast::new(skeleton);
        let shards: Vec<BlockShard> = {
            let bs = bskel.clone();
            self.cluster.par_map(ds.blocks(block_size), move |blk| {
                let mut scratch = SignatureScratch::new();
                let mut routed: HashMap<PartitionId, Vec<(TrieNodeId, u64)>> = HashMap::new();
                let mut fallback = 0u64;
                let mut via_default = 0u64;
                for (id, vals) in blk.iter() {
                    let p = bs.place_with(vals, id, &mut scratch);
                    fallback += u64::from(p.group == FALLBACK_GROUP);
                    via_default += u64::from(p.via_default);
                    routed.entry(p.partition).or_default().push((p.node, id));
                }
                BlockShard {
                    routed,
                    fallback,
                    via_default,
                }
            })
        };
        let conversion_secs = t1.elapsed().as_secs_f64();

        // ---- Step 4b: shuffle by partition and write clustered records ----
        // Shards merge in fixed block order, so every (partition, node)
        // cluster lists its record ids ascending — bit-identical to a
        // sequential scan regardless of thread count or block size. (A
        // shard's own partition iteration order is immaterial: distinct
        // partitions land in disjoint entries.)
        let t2 = Instant::now();
        self.cluster.stats().on_shuffle(n as u64);
        let mut fallback_records = 0u64;
        let mut default_routed_records = 0u64;
        let mut by_partition: BTreeMap<PartitionId, BTreeMap<TrieNodeId, Vec<u64>>> =
            BTreeMap::new();
        for shard in shards {
            fallback_records += shard.fallback;
            default_routed_records += shard.via_default;
            for (pid, recs) in shard.routed {
                let clusters = by_partition.entry(pid).or_default();
                for (node, sid) in recs {
                    clusters.entry(node).or_default().push(sid);
                }
            }
        }

        // Write every planned partition, including ones that received no
        // records, so the store's id set matches the skeleton. Partitions
        // fan out over the work-queue scope (skewed partition sizes
        // balance naturally); each worker streams records straight from
        // the dataset into its own writer, so at most `threads` partition
        // buffers are in flight at once.
        let final_skeleton = (*bskel).clone();
        self.cluster.install(|| {
            rayon::scope(|s| {
                for (&pid, &gid) in &partition_group {
                    let clusters = by_partition.get(&pid);
                    s.spawn(move |_| {
                        let mut writer = PartitionWriter::new(gid as u64, ds.series_len());
                        if let Some(clusters) = clusters {
                            for (&node, sids) in clusters {
                                writer
                                    .push_cluster(node, sids.iter().map(|&sid| (sid, ds.get(sid))));
                            }
                        }
                        store
                            .put(pid, writer.finish())
                            .expect("partition write failed");
                    });
                }
            })
        });
        let redistribution_secs = t2.elapsed().as_secs_f64();

        let report = BuildReport {
            skeleton_secs,
            conversion_secs,
            redistribution_secs,
            sampled_records,
            distinct_sensitive,
            distinct_insensitive,
            num_groups: final_skeleton.groups.len() - 1,
            num_partitions: final_skeleton.num_partitions(),
            num_trie_nodes: final_skeleton.num_trie_nodes(),
            fallback_records,
            default_routed_records,
            skeleton_bytes: final_skeleton.size_bytes(),
            io: store.stats().snapshot().since(&io_before),
            threads: self.cluster.workers(),
            skeleton_records_per_sec: per_sec(sampled_records, skeleton_secs),
            conversion_records_per_sec: per_sec(n, conversion_secs),
            redistribution_records_per_sec: per_sec(n, redistribution_secs),
        };
        (final_skeleton, report)
    }

    /// Partition-level sampling over the raw dataset: the unorganised input
    /// is viewed as contiguous chunks of `capacity` records ("the original
    /// dataset ... gets stored across partitions without any special
    /// organization"), and whole chunks are drawn until the α fraction is
    /// met.
    fn sample_ids(&self, ds: &Dataset) -> Vec<u64> {
        let cfg = &self.config;
        let n = ds.num_series();
        let chunk = (cfg.capacity as usize).min(n).max(1);
        let chunks = n.div_ceil(chunk);
        let take = partitions_for_alpha(chunks, cfg.alpha);
        let picked = partition_level_sample(chunks, take, cfg.seed ^ 0x5A5A);
        let mut ids = Vec::with_capacity(take * chunk);
        for c in picked {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(n);
            ids.extend((start as u64)..(end as u64));
        }
        ids
    }
}

/// Draws `r` pivots from the sample PAA signatures — a flat arena of `w`
/// values per point (random selection, §V Step 1). Sampling is id-based
/// and deterministic in `seed`.
fn select_pivots(sample_paa: &[f64], w: usize, r: usize, seed: u64) -> PivotSet {
    let n = sample_paa.len() / w;
    assert!(
        n >= r,
        "sample of {n} series cannot provide {r} pivots — lower num_pivots or raise alpha",
    );
    let idx = climber_series::sampling::reservoir_sample(0..n, r, seed ^ 0x71B0);
    PivotSet::from_points(
        idx.into_iter()
            .map(|i| sample_paa[i * w..(i + 1) * w].to_vec())
            .collect(),
    )
}

/// Order-independent 64-bit hash of a signature (tie-break seeding).
fn sig_hash(ids: &[PivotId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &id in ids {
        h ^= id as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_dfs::store::MemStore;
    use climber_series::gen::Domain;

    fn small_config() -> IndexConfig {
        IndexConfig::default()
            .with_paa_segments(8)
            .with_pivots(24)
            .with_prefix_len(4)
            .with_capacity(64)
            .with_alpha(0.5)
            .with_epsilon(1)
            .with_seed(7)
            .with_workers(2)
    }

    #[test]
    fn build_writes_every_record_exactly_once() {
        let ds = Domain::RandomWalk.generate(400, 11);
        let store = MemStore::new();
        let (skeleton, report) = IndexBuilder::new(small_config()).build(&ds, &store);

        let mut seen: Vec<u64> = Vec::new();
        for pid in store.ids() {
            let r = store.open(pid).unwrap();
            r.for_each(|id, _| seen.push(id));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..400u64).collect::<Vec<_>>());
        assert!(report.num_groups >= 1);
        assert_eq!(store.ids().len(), skeleton.num_partitions());
    }

    #[test]
    fn build_is_deterministic() {
        let ds = Domain::Eeg.generate(200, 3);
        let s1 = MemStore::new();
        let s2 = MemStore::new();
        let (sk1, _) = IndexBuilder::new(small_config()).build(&ds, &s1);
        let (sk2, _) = IndexBuilder::new(small_config()).build(&ds, &s2);
        assert_eq!(sk1, sk2);
        assert_eq!(s1.ids(), s2.ids());
    }

    #[test]
    fn build_deterministic_across_worker_counts() {
        let ds = Domain::TexMex.generate(200, 5);
        let s1 = MemStore::new();
        let s8 = MemStore::new();
        let (sk1, _) = IndexBuilder::new(small_config().with_workers(1)).build(&ds, &s1);
        let (sk8, _) = IndexBuilder::new(small_config().with_workers(8)).build(&ds, &s8);
        assert_eq!(sk1, sk8);
        for pid in s1.ids() {
            let mut a = Vec::new();
            let mut b = Vec::new();
            s1.open(pid).unwrap().for_each(|id, _| a.push(id));
            s8.open(pid).unwrap().for_each(|id, _| b.push(id));
            assert_eq!(a, b, "partition {pid}");
        }
    }

    #[test]
    fn build_bit_identical_across_threads_and_block_sizes() {
        let ds = Domain::RandomWalk.generate(330, 19);
        let reference = {
            let store = MemStore::new();
            let b = IndexBuilder::with_options(
                small_config(),
                BuildOptions::default()
                    .with_threads(1)
                    .with_block_size(1_000_000),
            );
            let (sk, _) = b.build(&ds, &store);
            (sk.to_bytes(), partition_bytes(&store))
        };
        for (threads, block_size) in [(2usize, 7usize), (8, 64), (3, 1), (0, 33)] {
            let store = MemStore::new();
            let builder = IndexBuilder::with_options(
                small_config(),
                BuildOptions::default()
                    .with_threads(threads)
                    .with_block_size(block_size),
            );
            let (sk, report) = builder.build(&ds, &store);
            assert_eq!(
                sk.to_bytes(),
                reference.0,
                "skeleton diverged at threads={threads} block={block_size}"
            );
            assert_eq!(
                partition_bytes(&store),
                reference.1,
                "partitions diverged at threads={threads} block={block_size}"
            );
            assert_eq!(report.threads, builder.options().resolved_threads());
        }
    }

    fn partition_bytes(store: &MemStore) -> Vec<(u32, Vec<u8>)> {
        store
            .ids()
            .into_iter()
            .map(|pid| (pid, store.open(pid).unwrap().raw_bytes().to_vec()))
            .collect()
    }

    #[test]
    fn build_options_resolve() {
        let o = BuildOptions::default();
        assert!(o.resolved_threads() >= 1);
        assert_eq!(o.resolved_block_size(), BuildOptions::DEFAULT_BLOCK_SIZE);
        let o = BuildOptions::default().with_threads(5).with_block_size(0);
        assert_eq!(o.resolved_threads(), 5);
        assert_eq!(o.resolved_block_size(), 1);
    }

    #[test]
    fn partitions_respect_soft_capacity() {
        let ds = Domain::RandomWalk.generate(600, 13);
        let store = MemStore::new();
        let cfg = small_config().with_capacity(50);
        let (_, report) = IndexBuilder::new(cfg).build(&ds, &store);
        // Estimates are sample-scaled so real partitions can exceed c, but
        // the bulk must be within a small factor of it.
        let mut oversize = 0usize;
        for pid in store.ids() {
            let n = store.open(pid).unwrap().record_count();
            if n > 3 * 50 {
                oversize += 1;
            }
        }
        assert!(
            oversize <= store.ids().len() / 3,
            "{oversize}/{} partitions grossly oversized",
            store.ids().len()
        );
        assert!(report.num_partitions >= 600 / (3 * 50));
    }

    #[test]
    fn placements_match_skeleton_replay() {
        // Every stored record must be recoverable by re-running place().
        let ds = Domain::Dna.generate(150, 17);
        let store = MemStore::new();
        let (skeleton, _) = IndexBuilder::new(small_config()).build(&ds, &store);
        for pid in store.ids() {
            let r = store.open(pid).unwrap();
            r.for_each(|id, vals| {
                let p = skeleton.place(vals, id);
                assert_eq!(p.partition, pid, "record {id} misplaced");
            });
        }
    }

    #[test]
    fn report_phases_are_populated() {
        let ds = Domain::RandomWalk.generate(120, 23);
        let store = MemStore::new();
        let (_, report) = IndexBuilder::new(small_config()).build(&ds, &store);
        assert!(report.skeleton_secs >= 0.0);
        assert!(report.total_secs() >= report.skeleton_secs);
        assert!(report.sampled_records > 0);
        assert!(report.distinct_sensitive >= report.distinct_insensitive);
        assert!(report.skeleton_bytes > 0);
        assert!(report.io.partitions_written > 0);
        assert!(report.threads >= 1);
        assert!(report.skeleton_records_per_sec > 0.0);
        assert!(report.conversion_records_per_sec > 0.0);
        assert!(report.redistribution_records_per_sec > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let ds = Dataset::new(16);
        let store = MemStore::new();
        IndexBuilder::new(small_config()).build(&ds, &store);
    }

    #[test]
    fn skeleton_roundtrips_after_build() {
        let ds = Domain::Eeg.generate(100, 29);
        let store = MemStore::new();
        let (skeleton, _) = IndexBuilder::new(small_config()).build(&ds, &store);
        let back = IndexSkeleton::from_bytes(&skeleton.to_bytes()).unwrap();
        assert_eq!(skeleton, back);
    }
}
