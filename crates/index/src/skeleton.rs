//! The global index skeleton (Figure 5): the structure the master node
//! keeps in memory, broadcasts to workers during the build, and navigates
//! at query time.
//!
//! Level 1 is the group list — `[G0, <*,*,*>], [G1, <1,2,4>], ...` — where
//! `G0` is the fall-back group; level 2 is the forest of per-group tries.
//! The skeleton also records, per group, the *default partition* (the
//! packed partition with the smallest occupancy) that receives records
//! unable to navigate a complete root-to-leaf path.

use crate::trie::{NodeIdx, Trie};
use climber_dfs::format::{ByteReader, TrieNodeId};
use climber_dfs::store::PartitionId;
use climber_pivot::assignment::{assign_group, splitmix64, Assignment};
use climber_pivot::decay::DecayFunction;
use climber_pivot::pivots::PivotSet;
use climber_pivot::signature::{DualSignature, RankInsensitive, SignatureScratch};
use climber_repr::paa::paa;

/// Identifier of a data-series group. Group 0 is always the fall-back.
pub type GroupId = u32;

/// The reserved fall-back group id (`G0` in the paper).
pub const FALLBACK_GROUP: GroupId = 0;

/// Per-group metadata in the skeleton.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMeta {
    /// Group id (its index in [`IndexSkeleton::groups`]).
    pub id: GroupId,
    /// Rank-insensitive centroid; `None` for the fall-back group, whose
    /// centroid is the wildcard `<*,*,...>`.
    pub centroid: Option<RankInsensitive>,
    /// The group's trie (single-leaf for groups within capacity).
    pub trie: Trie,
    /// Partition receiving records that cannot complete a root-to-leaf walk.
    pub default_partition: PartitionId,
    /// Estimated full-dataset record count.
    pub est_size: u64,
}

/// Where one record lands (the output of the Step-4 placement logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The chosen group.
    pub group: GroupId,
    /// The physical partition the record is stored in.
    pub partition: PartitionId,
    /// The trie-node cluster it is stored under.
    pub node: TrieNodeId,
    /// True when the record fell back to the group's default partition.
    pub via_default: bool,
}

/// The two-level global index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSkeleton {
    /// PAA segment count `w`.
    pub paa_segments: usize,
    /// Prefix length `m`.
    pub prefix_len: usize,
    /// Decay function for WD tie-breaks.
    pub decay: DecayFunction,
    /// The pivot set (fixed for the index lifetime).
    pub pivots: PivotSet,
    /// Groups; index == group id; `groups[0]` is the fall-back.
    pub groups: Vec<GroupMeta>,
    /// Seed mixed into deterministic tie-breaks.
    pub seed: u64,
}

impl IndexSkeleton {
    /// Extracts the P4 dual signature of a raw series under this index's
    /// parameters (the exact transformation indexed records went through).
    pub fn extract_signature(&self, values: &[f32]) -> DualSignature {
        let p = paa(values, self.paa_segments);
        DualSignature::extract_from_paa(&p, &self.pivots, self.prefix_len)
    }

    /// Extracts the dual signatures of many queries at once, fanned out
    /// across threads (signature extraction is pure and per-query
    /// independent) with one [`SignatureScratch`] per worker chunk instead
    /// of per-query allocations. Output order matches input order; used by
    /// the batched query engine's planning phase.
    pub fn extract_signatures(&self, queries: &[Vec<f32>]) -> Vec<DualSignature> {
        use rayon::prelude::*;
        let chunk = queries
            .len()
            .div_ceil(rayon::current_num_threads().max(1))
            .max(1);
        let per_chunk: Vec<Vec<DualSignature>> = queries
            .par_chunks(chunk)
            .map(|c| {
                DualSignature::extract_batch(
                    c.iter().map(Vec::as_slice),
                    &self.pivots,
                    self.paa_segments,
                    self.prefix_len,
                )
            })
            .collect();
        per_chunk.into_iter().flatten().collect()
    }

    /// Centroids of the real (non-fall-back) groups, index-aligned with
    /// group ids `1..`.
    fn real_centroids(&self) -> Vec<RankInsensitive> {
        self.groups[1..]
            .iter()
            .map(|g| {
                g.centroid
                    .clone()
                    .expect("non-fallback group without centroid")
            })
            .collect()
    }

    /// Algorithm-1 group assignment for a signature; `tie_seed` feeds the
    /// deterministic random tie-break.
    pub fn assign(&self, sig: &DualSignature, tie_seed: u64) -> GroupId {
        let centroids = self.real_centroids();
        if centroids.is_empty() {
            return FALLBACK_GROUP;
        }
        match assign_group(
            &centroids,
            sig,
            self.decay,
            splitmix64(self.seed ^ tie_seed),
        ) {
            Assignment::Fallback => FALLBACK_GROUP,
            a => a.centroid().expect("non-fallback has centroid") as GroupId + 1,
        }
    }

    /// Full Step-4 placement of one record: group assignment, then trie
    /// navigation; records without a complete root-to-leaf path go to the
    /// group's default partition clustered under the trie root.
    pub fn place(&self, values: &[f32], series_id: u64) -> Placement {
        self.place_with(values, series_id, &mut SignatureScratch::new())
    }

    /// [`place`](Self::place) with caller-provided scratch buffers — the
    /// bulk-conversion form the parallel build's worker threads use, one
    /// scratch per thread, so routing the full dataset allocates nothing
    /// per record beyond the transient signature.
    pub fn place_with(
        &self,
        values: &[f32],
        series_id: u64,
        scratch: &mut SignatureScratch,
    ) -> Placement {
        let sig = DualSignature::extract_with(
            values,
            &self.pivots,
            self.paa_segments,
            self.prefix_len,
            scratch,
        );
        let group = self.assign(&sig, series_id);
        let meta = &self.groups[group as usize];
        match meta.trie.leaf_for(&sig.sensitive.0) {
            Some(leaf_idx) => {
                let leaf = meta.trie.node(leaf_idx);
                Placement {
                    group,
                    partition: leaf.partitions[0],
                    node: leaf.id,
                    via_default: false,
                }
            }
            None => Placement {
                group,
                partition: meta.default_partition,
                node: meta.trie.root().id,
                via_default: true,
            },
        }
    }

    /// Groups achieving the minimum OD to `sig` (Algorithm 3 lines 5-6),
    /// with that distance. The fall-back group is returned only when *no*
    /// real group overlaps the signature.
    pub fn groups_by_overlap(&self, sig: &DualSignature) -> (Vec<GroupId>, usize) {
        use climber_pivot::distances::overlap_distance;
        let m = self.prefix_len;
        let mut best = m + 1;
        let mut out: Vec<GroupId> = Vec::new();
        for g in &self.groups[1..] {
            let c = g.centroid.as_ref().expect("real group has centroid");
            let od = overlap_distance(c, &sig.insensitive);
            if od < best {
                best = od;
                out.clear();
                out.push(g.id);
            } else if od == best {
                out.push(g.id);
            }
        }
        if out.is_empty() || best == m {
            (vec![FALLBACK_GROUP], m)
        } else {
            (out, best)
        }
    }

    /// The distinct physical partition ids referenced by the skeleton,
    /// ascending. A persisted index must store exactly these (validated
    /// against the manifest at open).
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        let mut pids: Vec<PartitionId> = self
            .groups
            .iter()
            .flat_map(|g| {
                g.trie
                    .nodes()
                    .iter()
                    .flat_map(|n| n.partitions.iter().copied())
                    .chain(std::iter::once(g.default_partition))
            })
            .collect();
        pids.sort_unstable();
        pids.dedup();
        pids
    }

    /// Number of physical partitions referenced by the skeleton.
    pub fn num_partitions(&self) -> usize {
        self.partition_ids().len()
    }

    /// Total trie nodes across all groups.
    pub fn num_trie_nodes(&self) -> usize {
        self.groups.iter().map(|g| g.trie.len()).sum()
    }

    /// Serialised size in bytes (the paper's "global index size" metric,
    /// Figure 8(b)).
    pub fn size_bytes(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serialises the skeleton (magic `CLSK`, little-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"CLSK");
        out.extend_from_slice(&1u32.to_le_bytes()); // version
        out.extend_from_slice(&(self.paa_segments as u32).to_le_bytes());
        out.extend_from_slice(&(self.prefix_len as u32).to_le_bytes());
        match self.decay {
            DecayFunction::Exponential { lambda } => {
                out.push(0);
                out.extend_from_slice(&lambda.to_le_bytes());
            }
            DecayFunction::Linear => {
                out.push(1);
                out.extend_from_slice(&0f64.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.seed.to_le_bytes());
        let pivot_blob = self.pivots.to_bytes();
        out.extend_from_slice(&(pivot_blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&pivot_blob);
        out.extend_from_slice(&(self.groups.len() as u32).to_le_bytes());
        for g in &self.groups {
            out.extend_from_slice(&g.id.to_le_bytes());
            match &g.centroid {
                Some(c) => {
                    out.push(1);
                    out.extend_from_slice(&(c.0.len() as u16).to_le_bytes());
                    for &p in &c.0 {
                        out.extend_from_slice(&p.to_le_bytes());
                    }
                }
                None => out.push(0),
            }
            out.extend_from_slice(&g.default_partition.to_le_bytes());
            out.extend_from_slice(&g.est_size.to_le_bytes());
            g.trie.to_bytes(&mut out);
        }
        out
    }

    /// Deserialises a skeleton written by [`IndexSkeleton::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(4).map_err(|_| "skeleton too short".to_string())?;
        if magic != b"CLSK" {
            return Err(format!("bad skeleton magic {magic:?}"));
        }
        let version = r.u32()?;
        if version != 1 {
            return Err(format!("unsupported skeleton version {version}"));
        }
        let paa_segments = r.u32()? as usize;
        let prefix_len = r.u32()? as usize;
        let decay_tag = r.u8()?;
        let lambda = r.f64()?;
        let decay = match decay_tag {
            0 => DecayFunction::Exponential { lambda },
            1 => DecayFunction::Linear,
            t => return Err(format!("unknown decay tag {t}")),
        };
        let seed = r.u64()?;
        let pivot_blob = r.blob().map_err(|e| format!("pivot blob: {e}"))?;
        let pivots = PivotSet::from_bytes(pivot_blob)?;
        let n_groups = r.u32()? as usize;
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let id = r.u32()?;
            let has_centroid = r.u8()?;
            let centroid = if has_centroid == 1 {
                let m = r.u16()? as usize;
                let mut ids = Vec::with_capacity(m);
                for _ in 0..m {
                    ids.push(r.u16()?);
                }
                Some(RankInsensitive(ids))
            } else {
                None
            };
            let default_partition = r.u32()?;
            let est_size = r.u64()?;
            let trie = Trie::from_reader(&mut r)?;
            groups.push(GroupMeta {
                id,
                centroid,
                trie,
                default_partition,
                est_size,
            });
        }
        r.expect_end()
            .map_err(|_| "trailing bytes after skeleton".to_string())?;
        Ok(Self {
            paa_segments,
            prefix_len,
            decay,
            pivots,
            groups,
            seed,
        })
    }

    /// Leaf arena-index → node-id pairs under `node` of group `g`
    /// (convenience for the query layer).
    pub fn leaf_nodes_under(&self, g: GroupId, node: NodeIdx) -> Vec<TrieNodeId> {
        let trie = &self.groups[g as usize].trie;
        trie.leaves_under(node)
            .into_iter()
            .map(|i| trie.node(i).id)
            .collect()
    }

    /// Renders the Figure-5-style skeleton overview: one line per group
    /// with its centroid, estimated size, trie shape and partitions.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "CLIMBER index skeleton: w={} m={} pivots={} groups={} partitions={} ({} trie nodes, {} bytes)",
            self.paa_segments,
            self.prefix_len,
            self.pivots.len(),
            self.groups.len(),
            self.num_partitions(),
            self.num_trie_nodes(),
            self.size_bytes()
        );
        for g in &self.groups {
            let centroid = match &g.centroid {
                Some(c) => format!(
                    "<{}>",
                    c.0.iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ),
                None => "<*,*,...>".to_string(),
            };
            let leaves = g.trie.leaves().len();
            let _ = writeln!(
                out,
                "  [G{}, {}] est={} trie: {} nodes / {} leaves, default partition β{}, partitions {:?}",
                g.id,
                centroid,
                g.est_size,
                g.trie.len(),
                leaves,
                g.default_partition,
                g.trie.root().partitions
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_pivot::pivots::PivotId;
    use std::collections::HashMap;

    /// Small hand-built skeleton: 4 pivots on a line in 1-D PAA space,
    /// 2 real groups + fallback, group 1 with a trivial trie, group 2 with
    /// a 2-level trie.
    fn toy_skeleton() -> IndexSkeleton {
        let pivots = PivotSet::from_points(vec![vec![0.0], vec![10.0], vec![20.0], vec![30.0]]);
        let mut next_node = 0u64;

        // fall-back group: trivial trie, partition 0
        let g0_trie = Trie::build(&[], 100, 2, &mut next_node);
        let mut g0_map = HashMap::new();
        g0_map.insert(g0_trie.root().id, 0u32);
        let mut g0_trie = g0_trie;
        g0_trie.assign_partitions(&g0_map);

        // group 1 (centroid <0,1>): trivial trie, partition 1
        let members1: Vec<(Vec<PivotId>, u64)> = vec![(vec![0, 1], 50)];
        let refs1: Vec<(&[PivotId], u64)> = members1.iter().map(|(s, c)| (&s[..], *c)).collect();
        let mut t1 = Trie::build(&refs1, 100, 2, &mut next_node);
        let mut m1 = HashMap::new();
        m1.insert(t1.root().id, 1u32);
        t1.assign_partitions(&m1);

        // group 2 (centroid <2,3>): split on 1st pivot, partitions 2,3
        let members2: Vec<(Vec<PivotId>, u64)> = vec![(vec![2, 3], 80), (vec![3, 2], 70)];
        let refs2: Vec<(&[PivotId], u64)> = members2.iter().map(|(s, c)| (&s[..], *c)).collect();
        let mut t2 = Trie::build(&refs2, 100, 2, &mut next_node);
        let leaves = t2.leaves();
        let mut m2 = HashMap::new();
        for (i, &l) in leaves.iter().enumerate() {
            m2.insert(t2.node(l).id, 2 + i as u32);
        }
        t2.assign_partitions(&m2);

        IndexSkeleton {
            paa_segments: 1,
            prefix_len: 2,
            decay: DecayFunction::DEFAULT,
            pivots,
            groups: vec![
                GroupMeta {
                    id: 0,
                    centroid: None,
                    trie: g0_trie,
                    default_partition: 0,
                    est_size: 0,
                },
                GroupMeta {
                    id: 1,
                    centroid: Some(RankInsensitive(vec![0, 1])),
                    trie: t1,
                    default_partition: 1,
                    est_size: 50,
                },
                GroupMeta {
                    id: 2,
                    centroid: Some(RankInsensitive(vec![2, 3])),
                    trie: t2,
                    default_partition: 2,
                    est_size: 150,
                },
            ],
            seed: 42,
        }
    }

    #[test]
    fn signature_extraction_matches_pivot_layout() {
        let sk = toy_skeleton();
        // A series of constant 1.0 → PAA [1.0] → nearest pivots 0 then 1.
        let sig = sk.extract_signature(&[1.0, 1.0]);
        assert_eq!(sig.sensitive.0, vec![0, 1]);
    }

    #[test]
    fn batch_signature_extraction_matches_single() {
        let sk = toy_skeleton();
        let queries: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![i as f32 * 0.8, i as f32 * 0.8])
            .collect();
        let batch = sk.extract_signatures(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, sig) in queries.iter().zip(batch.iter()) {
            assert_eq!(sig, &sk.extract_signature(q));
        }
    }

    #[test]
    fn assign_routes_to_best_group() {
        let sk = toy_skeleton();
        let near0 = sk.extract_signature(&[1.0, 1.0]); // pivots {0,1}
        assert_eq!(sk.assign(&near0, 0), 1);
        let near3 = sk.extract_signature(&[29.0, 29.0]); // pivots {3,2}
        assert_eq!(sk.assign(&near3, 0), 2);
    }

    #[test]
    fn place_uses_leaf_partition() {
        let sk = toy_skeleton();
        // series near pivot 2 → group 2, sensitive <2,3> → leaf under "2"
        let p = sk.place(&[19.0, 19.0], 7);
        assert_eq!(p.group, 2);
        assert!(!p.via_default);
        assert!(p.partition == 2 || p.partition == 3);
    }

    #[test]
    fn groups_by_overlap_finds_ties() {
        let sk = toy_skeleton();
        let sig = sk.extract_signature(&[15.0, 15.0]); // pivots {1,2}: one hit in each group
        let (gs, od) = sk.groups_by_overlap(&sig);
        assert_eq!(od, 1);
        assert_eq!(gs, vec![1, 2]);
    }

    #[test]
    fn zero_overlap_returns_fallback() {
        let sk = toy_skeleton();
        // craft a signature with pivots outside every centroid — impossible
        // here with 4 pivots all covered, so shrink to a direct call:
        let sig =
            DualSignature::from_sensitive(climber_pivot::signature::RankSensitive(vec![0, 3]));
        // centroids are {0,1} and {2,3}: overlap 1 each → not fallback.
        let (gs, _) = sk.groups_by_overlap(&sig);
        assert_eq!(gs, vec![1, 2]);
    }

    #[test]
    fn serialization_roundtrip() {
        let sk = toy_skeleton();
        let bytes = sk.to_bytes();
        let back = IndexSkeleton::from_bytes(&bytes).unwrap();
        assert_eq!(sk, back);
        assert_eq!(sk.size_bytes(), bytes.len());
    }

    #[test]
    fn corrupted_skeleton_rejected() {
        let sk = toy_skeleton();
        let bytes = sk.to_bytes();
        assert!(IndexSkeleton::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(IndexSkeleton::from_bytes(&bad).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(IndexSkeleton::from_bytes(&trailing).is_err());
    }

    #[test]
    fn num_partitions_counts_distinct() {
        let sk = toy_skeleton();
        assert_eq!(sk.num_partitions(), 4); // 0,1,2,3
    }

    #[test]
    fn placement_is_deterministic() {
        let sk = toy_skeleton();
        let a = sk.place(&[12.0, 12.0], 99);
        let b = sk.place(&[12.0, 12.0], 99);
        assert_eq!(a, b);
    }

    #[test]
    fn place_with_shared_scratch_matches_place() {
        let sk = toy_skeleton();
        let mut scratch = SignatureScratch::new();
        for i in 0..30u64 {
            let v = [i as f32, i as f32 + 0.5];
            assert_eq!(sk.place_with(&v, i, &mut scratch), sk.place(&v, i));
        }
    }
}
