//! Index configuration: the paper's tunables with its §VII-A defaults.

use climber_dfs::format::{ByteReader, Decode, Encode};
use climber_pivot::decay::DecayFunction;

/// Configuration of a CLIMBER index build.
///
/// Paper defaults (§VII-A): 200 pivots, prefix length 10; capacity maps the
/// 64 MB HDFS block to a record count (2 000 by default at repo scale);
/// sampling fraction α defaults to 10%.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexConfig {
    /// PAA segment count `w` (dimensionality of the pivot space).
    pub paa_segments: usize,
    /// Number of pivots `r`.
    pub num_pivots: usize,
    /// Pivot-permutation prefix length `m`.
    pub prefix_len: usize,
    /// Partition capacity `c` in records (soft constraint).
    pub capacity: u64,
    /// Sampling fraction `α` for skeleton construction, in (0, 1].
    pub alpha: f64,
    /// Minimum OD between selected centroids `ε` (Algorithm 2 line 8).
    pub epsilon: usize,
    /// Optional cap on the number of centroids (Algorithm 2 line 15).
    pub max_centroids: Option<usize>,
    /// Decay function for WD tie-breaks (Definition 9).
    pub decay: DecayFunction,
    /// Master RNG seed: pivots, sampling and tie-breaks all derive from it.
    pub seed: u64,
    /// Number of simulated cluster workers.
    pub workers: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            paa_segments: 16,
            num_pivots: 200,
            prefix_len: 10,
            capacity: 2_000,
            alpha: 0.10,
            epsilon: 2,
            max_centroids: None,
            decay: DecayFunction::DEFAULT,
            seed: 0x0C11_B3E5_u64, // arbitrary fixed default
            workers: 4,
        }
    }
}

impl IndexConfig {
    /// Validates parameter consistency for a dataset of series length `n`.
    ///
    /// # Panics
    /// On any inconsistent combination, with a message naming the parameter.
    pub fn validate(&self, series_len: usize) {
        assert!(self.paa_segments > 0, "paa_segments must be positive");
        assert!(
            self.paa_segments <= series_len,
            "paa_segments {} exceeds series length {series_len}",
            self.paa_segments
        );
        assert!(self.num_pivots > 0, "num_pivots must be positive");
        assert!(
            self.num_pivots <= u16::MAX as usize,
            "num_pivots {} exceeds pivot id range",
            self.num_pivots
        );
        assert!(self.prefix_len > 0, "prefix_len must be positive");
        assert!(
            self.prefix_len <= self.num_pivots,
            "prefix_len {} exceeds num_pivots {}",
            self.prefix_len,
            self.num_pivots
        );
        assert!(self.capacity > 0, "capacity must be positive");
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must be in (0,1], got {}",
            self.alpha
        );
        assert!(
            self.epsilon <= self.prefix_len,
            "epsilon {} exceeds prefix_len {}",
            self.epsilon,
            self.prefix_len
        );
        assert!(self.workers > 0, "workers must be positive");
    }

    // -- builder-style setters (the facade crate re-exports these) --

    /// Sets the PAA segment count `w`.
    pub fn with_paa_segments(mut self, w: usize) -> Self {
        self.paa_segments = w;
        self
    }

    /// Sets the number of pivots `r`.
    pub fn with_pivots(mut self, r: usize) -> Self {
        self.num_pivots = r;
        self
    }

    /// Sets the prefix length `m`.
    pub fn with_prefix_len(mut self, m: usize) -> Self {
        self.prefix_len = m;
        self
    }

    /// Sets the partition capacity `c` (records).
    pub fn with_capacity(mut self, c: u64) -> Self {
        self.capacity = c;
        self
    }

    /// Sets the sampling fraction `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the centroid-separation threshold `ε`.
    pub fn with_epsilon(mut self, eps: usize) -> Self {
        self.epsilon = eps;
        self
    }

    /// Caps the number of centroids.
    pub fn with_max_centroids(mut self, cap: usize) -> Self {
        self.max_centroids = Some(cap);
        self
    }

    /// Sets the decay function.
    pub fn with_decay(mut self, decay: DecayFunction) -> Self {
        self.decay = decay;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

impl Encode for IndexConfig {
    /// Persisted inside the index manifest so a reopened index knows the
    /// exact build parameters (little-endian, field order fixed by the
    /// manifest's `format_version`).
    fn encode(&self, out: &mut Vec<u8>) {
        (self.paa_segments as u64).encode(out);
        (self.num_pivots as u64).encode(out);
        (self.prefix_len as u64).encode(out);
        self.capacity.encode(out);
        self.alpha.encode(out);
        (self.epsilon as u64).encode(out);
        match self.max_centroids {
            Some(c) => {
                1u8.encode(out);
                (c as u64).encode(out);
            }
            None => {
                0u8.encode(out);
                0u64.encode(out);
            }
        }
        match self.decay {
            DecayFunction::Exponential { lambda } => {
                0u8.encode(out);
                lambda.encode(out);
            }
            DecayFunction::Linear => {
                1u8.encode(out);
                0f64.encode(out);
            }
        }
        self.seed.encode(out);
        (self.workers as u64).encode(out);
    }
}

impl Decode for IndexConfig {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        let paa_segments = r.u64()? as usize;
        let num_pivots = r.u64()? as usize;
        let prefix_len = r.u64()? as usize;
        let capacity = r.u64()?;
        let alpha = r.f64()?;
        let epsilon = r.u64()? as usize;
        let has_cap = r.u8()?;
        let cap = r.u64()? as usize;
        let max_centroids = (has_cap == 1).then_some(cap);
        let decay_tag = r.u8()?;
        let lambda = r.f64()?;
        let decay = match decay_tag {
            0 => DecayFunction::Exponential { lambda },
            1 => DecayFunction::Linear,
            t => return Err(format!("unknown decay tag {t}")),
        };
        let seed = r.u64()?;
        let workers = r.u64()? as usize;
        Ok(Self {
            paa_segments,
            num_pivots,
            prefix_len,
            capacity,
            alpha,
            epsilon,
            max_centroids,
            decay,
            seed,
            workers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = IndexConfig::default();
        assert_eq!(c.num_pivots, 200);
        assert_eq!(c.prefix_len, 10);
        c.validate(256);
    }

    #[test]
    fn builder_setters_chain() {
        let c = IndexConfig::default()
            .with_pivots(50)
            .with_prefix_len(5)
            .with_capacity(100)
            .with_alpha(0.5)
            .with_seed(9);
        assert_eq!(c.num_pivots, 50);
        assert_eq!(c.prefix_len, 5);
        assert_eq!(c.capacity, 100);
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.seed, 9);
        c.validate(64);
    }

    #[test]
    #[should_panic(expected = "prefix_len")]
    fn prefix_longer_than_pivots_rejected() {
        IndexConfig::default()
            .with_pivots(5)
            .with_prefix_len(6)
            .validate(256);
    }

    #[test]
    #[should_panic(expected = "paa_segments")]
    fn segments_longer_than_series_rejected() {
        IndexConfig::default().with_paa_segments(512).validate(256);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        IndexConfig::default().with_alpha(0.0).validate(256);
    }

    #[test]
    fn codec_roundtrip() {
        for cfg in [
            IndexConfig::default(),
            IndexConfig::default()
                .with_paa_segments(8)
                .with_pivots(48)
                .with_prefix_len(6)
                .with_capacity(120)
                .with_alpha(0.3)
                .with_epsilon(1)
                .with_max_centroids(12)
                .with_decay(DecayFunction::Linear)
                .with_seed(911)
                .with_workers(2),
        ] {
            let back = IndexConfig::decode_vec(&cfg.encode_vec()).unwrap();
            assert_eq!(cfg, back);
        }
    }

    #[test]
    fn codec_rejects_truncation() {
        let bytes = IndexConfig::default().encode_vec();
        assert!(IndexConfig::decode_vec(&bytes[..bytes.len() - 3]).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(IndexConfig::decode_vec(&trailing).is_err());
    }
}
