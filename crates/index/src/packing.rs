//! The node packing problem (Definition 13) and its First-Fit-Decreasing
//! solution.
//!
//! Trie leaves must be grouped into as few physical partitions as possible
//! without (softly) exceeding the capacity `c`. This is bin packing; the
//! paper adopts FFD — `O(m log m)`, worst-case ratio 1.5 — and so do we.
//! Items larger than `c` (possible because capacity is a soft constraint
//! when a prefix is exhausted) get a bin of their own.

/// An item to pack: `(key, size)`.
pub type PackItem<K> = (K, u64);

/// One packed bin: the keys it holds and their total size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bin<K> {
    /// Keys packed into this bin, in packing order.
    pub items: Vec<K>,
    /// Sum of item sizes.
    pub total: u64,
}

/// First-Fit-Decreasing bin packing.
///
/// Items are sorted by descending size (ties broken by input order via a
/// stable sort) and each is placed into the first bin it fits; a new bin is
/// opened when none fits. Oversized items (> capacity) each get their own
/// bin.
///
/// # Panics
/// If `capacity == 0`.
pub fn first_fit_decreasing<K: Clone>(items: &[PackItem<K>], capacity: u64) -> Vec<Bin<K>> {
    assert!(capacity > 0, "capacity must be positive");
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].1.cmp(&items[a].1));

    let mut bins: Vec<Bin<K>> = Vec::new();
    for idx in order {
        let (ref key, size) = items[idx];
        let slot = bins
            .iter()
            .position(|b| b.total + size <= capacity)
            .filter(|_| size <= capacity);
        match slot {
            Some(i) => {
                bins[i].items.push(key.clone());
                bins[i].total += size;
            }
            None => bins.push(Bin {
                items: vec![key.clone()],
                total: size,
            }),
        }
    }
    bins
}

/// Lower bound on the optimal bin count: `ceil(total / capacity)`.
pub fn bin_lower_bound(items: &[PackItem<impl Clone>], capacity: u64) -> u64 {
    let total: u64 = items.iter().map(|&(_, s)| s).sum();
    total.div_ceil(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_exact_fit() {
        let items: Vec<PackItem<u32>> = vec![(0, 5), (1, 5), (2, 5), (3, 5)];
        let bins = first_fit_decreasing(&items, 10);
        assert_eq!(bins.len(), 2);
        assert!(bins.iter().all(|b| b.total == 10));
    }

    #[test]
    fn decreasing_order_packs_large_first() {
        let items: Vec<PackItem<&str>> = vec![("small", 2), ("big", 9), ("mid", 5)];
        let bins = first_fit_decreasing(&items, 10);
        // big=9 alone won't take mid=5; mid+small=7 share the second bin.
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].items, vec!["big"]);
        assert_eq!(bins[1].items, vec!["mid", "small"]);
    }

    #[test]
    fn oversized_items_get_own_bins() {
        let items: Vec<PackItem<u32>> = vec![(0, 25), (1, 3), (2, 30)];
        let bins = first_fit_decreasing(&items, 10);
        assert_eq!(bins.len(), 3);
        let oversized: Vec<u64> = bins
            .iter()
            .filter(|b| b.total > 10)
            .map(|b| b.total)
            .collect();
        assert_eq!(oversized.len(), 2);
    }

    #[test]
    fn no_bin_overflows_with_fitting_items() {
        let items: Vec<PackItem<usize>> = (0..100).map(|i| (i, (i as u64 % 7) + 1)).collect();
        let cap = 10;
        let bins = first_fit_decreasing(&items, cap);
        for b in &bins {
            assert!(b.total <= cap);
        }
        // every item packed exactly once
        let mut keys: Vec<usize> = bins.iter().flat_map(|b| b.items.clone()).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ffd_stays_within_3_2_of_optimal() {
        // FFD guarantee: bins <= 1.5 * OPT + 1; check against the volume
        // lower bound on assorted workloads.
        let workloads: Vec<Vec<PackItem<usize>>> = vec![
            (0..50).map(|i| (i, 1 + (i as u64 * 13) % 60)).collect(),
            (0..200).map(|i| (i, 1 + (i as u64 * 7) % 33)).collect(),
            vec![(0, 60), (1, 60), (2, 60), (3, 1), (4, 1), (5, 1)],
        ];
        for items in workloads {
            let cap = 64;
            let bins = first_fit_decreasing(&items, cap);
            let lb = bin_lower_bound(&items, cap);
            assert!(
                (bins.len() as u64) <= (3 * lb).div_ceil(2) + 1,
                "bins {} vs lower bound {lb}",
                bins.len()
            );
        }
    }

    #[test]
    fn empty_input_gives_no_bins() {
        let items: Vec<PackItem<u32>> = vec![];
        assert!(first_fit_decreasing(&items, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        first_fit_decreasing::<u32>(&[(0, 1)], 0);
    }

    #[test]
    fn deterministic_with_equal_sizes() {
        let items: Vec<PackItem<u32>> = vec![(10, 4), (20, 4), (30, 4)];
        let a = first_fit_decreasing(&items, 8);
        let b = first_fit_decreasing(&items, 8);
        assert_eq!(a, b);
        // stable sort keeps input order among equals
        assert_eq!(a[0].items, vec![10, 20]);
        assert_eq!(a[1].items, vec![30]);
    }

    #[test]
    fn lower_bound_is_ceiling() {
        let items: Vec<PackItem<u32>> = vec![(0, 5), (1, 6)];
        assert_eq!(bin_lower_bound(&items, 10), 2);
        assert_eq!(bin_lower_bound(&items, 11), 1);
    }
}
