//! Trie-based partitioning of a data-series group (§IV-D, Definition 12,
//! Figure 5).
//!
//! A group whose (estimated) size exceeds the capacity `c` distributes its
//! members by the 1st pivot of their rank-sensitive signatures, forming the
//! first trie level; any child still above `c` splits again on the 2nd
//! pivot, and so on until every leaf fits (or the prefix is exhausted — the
//! capacity is a *soft* constraint). Leaves are later packed into physical
//! partitions ([`crate::packing`]); every node carries the union of the
//! partition ids below it, which is what query traversal returns.
//!
//! Each group owns one trie; groups that fit in a single partition get a
//! trivial single-node trie, so record clustering and query traversal are
//! uniform across group sizes.

use climber_dfs::format::{ByteReader, TrieNodeId};
use climber_dfs::store::PartitionId;
use climber_pivot::pivots::PivotId;

/// Index of a node inside its trie's arena.
pub type NodeIdx = u32;

/// One trie node.
#[derive(Debug, Clone, PartialEq)]
pub struct TrieNode {
    /// Globally unique node id (the record-cluster key inside partitions).
    pub id: TrieNodeId,
    /// Edge label from the parent (`None` for the root).
    pub pivot: Option<PivotId>,
    /// Depth (root = 0); equals the length of the pivot prefix leading here.
    pub depth: u8,
    /// Estimated number of full-dataset records below this node.
    pub est_size: u64,
    /// Children as `(edge pivot, arena index)`, sorted by pivot.
    pub children: Vec<(PivotId, NodeIdx)>,
    /// Physical partitions covering this subtree (leaf: exactly one after
    /// packing; internal: sorted union of the children's).
    pub partitions: Vec<PartitionId>,
}

impl TrieNode {
    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Arena index of the child along `pivot`, if present.
    pub fn child(&self, pivot: PivotId) -> Option<NodeIdx> {
        self.children
            .binary_search_by_key(&pivot, |&(p, _)| p)
            .ok()
            .map(|i| self.children[i].1)
    }
}

/// Result of descending a trie along a rank-sensitive signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descent {
    /// The deepest node reached.
    pub node: NodeIdx,
    /// Number of edges followed (`PathLen(GN)` in Algorithm 3).
    pub path_len: usize,
}

/// A group's trie (arena representation; node 0 is the root).
#[derive(Debug, Clone, PartialEq)]
pub struct Trie {
    nodes: Vec<TrieNode>,
}

impl Trie {
    /// Builds the trie of a group from `(rank-sensitive prefix, estimated
    /// record count)` members.
    ///
    /// Splitting proceeds while a node's estimated size exceeds `capacity`
    /// and prefix positions remain. Node ids are drawn from `next_id`
    /// (shared across groups so ids are globally unique).
    ///
    /// An empty member list produces a trivial single-leaf trie of size 0.
    pub fn build(
        members: &[(&[PivotId], u64)],
        capacity: u64,
        max_depth: usize,
        next_id: &mut TrieNodeId,
    ) -> Self {
        let total: u64 = members.iter().map(|&(_, c)| c).sum();
        let root = TrieNode {
            id: bump(next_id),
            pivot: None,
            depth: 0,
            est_size: total,
            children: Vec::new(),
            partitions: Vec::new(),
        };
        let mut trie = Trie { nodes: vec![root] };
        let member_refs: Vec<(&[PivotId], u64)> = members.to_vec();
        trie.split_recursive(0, member_refs, capacity, max_depth, next_id);
        trie
    }

    fn split_recursive(
        &mut self,
        node_idx: NodeIdx,
        members: Vec<(&[PivotId], u64)>,
        capacity: u64,
        max_depth: usize,
        next_id: &mut TrieNodeId,
    ) {
        let depth = self.nodes[node_idx as usize].depth as usize;
        let size = self.nodes[node_idx as usize].est_size;
        if size <= capacity || depth >= max_depth {
            return; // fits (or prefix exhausted: soft-capacity leaf)
        }
        // Distribute members by their pivot at this depth. Members whose
        // signature is shorter than the depth (possible only for malformed
        // input) stay ungrouped and keep the node a leaf.
        let mut buckets: std::collections::BTreeMap<PivotId, Vec<(&[PivotId], u64)>> =
            std::collections::BTreeMap::new();
        for (sig, count) in members {
            if depth < sig.len() {
                buckets.entry(sig[depth]).or_default().push((sig, count));
            }
        }
        // When all members share the same next pivot the single child keeps
        // the full size; recursion still terminates because depth strictly
        // increases towards max_depth.
        let mut children = Vec::with_capacity(buckets.len());
        for (pivot, bucket) in buckets {
            let child_total: u64 = bucket.iter().map(|&(_, c)| c).sum();
            let child = TrieNode {
                id: bump(next_id),
                pivot: Some(pivot),
                depth: (depth + 1) as u8,
                est_size: child_total,
                children: Vec::new(),
                partitions: Vec::new(),
            };
            let child_idx = self.nodes.len() as NodeIdx;
            self.nodes.push(child);
            children.push((pivot, child_idx));
            self.split_recursive(child_idx, bucket, capacity, max_depth, next_id);
        }
        self.nodes[node_idx as usize].children = children;
    }

    /// The root node.
    pub fn root(&self) -> &TrieNode {
        &self.nodes[0]
    }

    /// Node by arena index.
    pub fn node(&self, idx: NodeIdx) -> &TrieNode {
        &self.nodes[idx as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Tries are never empty (they always have a root).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All nodes, arena order (root first).
    pub fn nodes(&self) -> &[TrieNode] {
        &self.nodes
    }

    /// Descends from the root along `sig`, stopping at the deepest node
    /// whose edge exists (Algorithm 3 line 11).
    pub fn descend(&self, sig: &[PivotId]) -> Descent {
        let mut idx: NodeIdx = 0;
        let mut path_len = 0usize;
        while path_len < sig.len() {
            match self.nodes[idx as usize].child(sig[path_len]) {
                Some(next) => {
                    idx = next;
                    path_len += 1;
                }
                None => break,
            }
        }
        Descent {
            node: idx,
            path_len,
        }
    }

    /// Arena index of the leaf reached by a *complete* root-to-leaf walk
    /// along `sig`, or `None` if navigation stops at an internal node
    /// (§V: such records go to the group's default partition).
    pub fn leaf_for(&self, sig: &[PivotId]) -> Option<NodeIdx> {
        let d = self.descend(sig);
        self.nodes[d.node as usize].is_leaf().then_some(d.node)
    }

    /// Arena indices of all leaves under `idx` (inclusive when a leaf).
    pub fn leaves_under(&self, idx: NodeIdx) -> Vec<NodeIdx> {
        let mut out = Vec::new();
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            let n = &self.nodes[i as usize];
            if n.is_leaf() {
                out.push(i);
            } else {
                // push in reverse so leaves come out in pivot order
                for &(_, c) in n.children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// All leaf arena indices.
    pub fn leaves(&self) -> Vec<NodeIdx> {
        self.leaves_under(0)
    }

    /// Assigns each leaf its physical partition then propagates partition
    /// unions bottom-up to every internal node.
    ///
    /// # Panics
    /// If a leaf's node id is missing from `leaf_partition`.
    pub fn assign_partitions(
        &mut self,
        leaf_partition: &std::collections::HashMap<TrieNodeId, PartitionId>,
    ) {
        // Arena order guarantees parents precede children, so a reverse
        // sweep sees all children before their parent.
        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].is_leaf() {
                let pid = *leaf_partition
                    .get(&self.nodes[i].id)
                    .unwrap_or_else(|| panic!("leaf node {} unpacked", self.nodes[i].id));
                self.nodes[i].partitions = vec![pid];
            } else {
                let mut union: Vec<PartitionId> = self.nodes[i]
                    .children
                    .iter()
                    .flat_map(|&(_, c)| self.nodes[c as usize].partitions.clone())
                    .collect();
                union.sort_unstable();
                union.dedup();
                self.nodes[i].partitions = union;
            }
        }
    }

    /// Serialises the trie (little-endian, self-delimiting).
    pub fn to_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for n in &self.nodes {
            out.extend_from_slice(&n.id.to_le_bytes());
            out.extend_from_slice(&n.pivot.map_or(u16::MAX, |p| p).to_le_bytes());
            out.push(n.depth);
            out.extend_from_slice(&n.est_size.to_le_bytes());
            out.extend_from_slice(&(n.children.len() as u16).to_le_bytes());
            for &(p, c) in &n.children {
                out.extend_from_slice(&p.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
            out.extend_from_slice(&(n.partitions.len() as u32).to_le_bytes());
            for &pid in &n.partitions {
                out.extend_from_slice(&pid.to_le_bytes());
            }
        }
    }

    /// Deserialises a trie written by [`Trie::to_bytes`], advancing the
    /// reader (tries are self-delimiting inside a larger stream).
    pub fn from_reader(r: &mut ByteReader<'_>) -> Result<Self, String> {
        let n_nodes = r.u32()? as usize;
        if n_nodes == 0 {
            return Err("trie with zero nodes".into());
        }
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let id = r.u64()?;
            let pivot_raw = r.u16()?;
            let pivot = (pivot_raw != u16::MAX).then_some(pivot_raw);
            let depth = r.u8()?;
            let est_size = r.u64()?;
            let n_children = r.u16()? as usize;
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                let p = r.u16()?;
                let c = r.u32()?;
                if c as usize >= n_nodes {
                    return Err(format!("child index {c} out of range"));
                }
                children.push((p, c));
            }
            let n_parts = r.u32()? as usize;
            let mut partitions = Vec::with_capacity(n_parts);
            for _ in 0..n_parts {
                partitions.push(r.u32()?);
            }
            nodes.push(TrieNode {
                id,
                pivot,
                depth,
                est_size,
                children,
                partitions,
            });
        }
        Ok(Trie { nodes })
    }
}

fn bump(next: &mut TrieNodeId) -> TrieNodeId {
    let id = *next;
    *next += 1;
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Members mimicking Figure 5's group G3 (capacity 3000): 5250 objects,
    /// 1st-level split into pivots with 3700 under "6" which splits again.
    fn figure5_members() -> Vec<(Vec<PivotId>, u64)> {
        vec![
            // under 1st pivot 6: 3700 total, split by 2nd pivot
            (vec![6, 2, 9], 2100),
            (vec![6, 7, 1], 900),
            (vec![6, 4, 3], 700),
            // other 1st pivots
            (vec![4, 6, 7], 900),
            (vec![7, 4, 6], 400),
            (vec![5, 6, 4], 150),
            (vec![1, 6, 7], 100),
        ]
    }

    fn build_fig5() -> Trie {
        let members = figure5_members();
        let refs: Vec<(&[PivotId], u64)> = members.iter().map(|(s, c)| (&s[..], *c)).collect();
        let mut next = 0u64;
        Trie::build(&refs, 3000, 3, &mut next)
    }

    #[test]
    fn figure5_structure() {
        let t = build_fig5();
        assert_eq!(t.root().est_size, 5250);
        // root splits on 1st pivots {1,4,5,6,7}
        let first: Vec<PivotId> = t.root().children.iter().map(|&(p, _)| p).collect();
        assert_eq!(first, vec![1, 4, 5, 6, 7]);
        // the child under 6 (3700 > 3000) split again; others are leaves
        let under6 = t.root().child(6).unwrap();
        assert!(!t.node(under6).is_leaf());
        assert_eq!(t.node(under6).est_size, 3700);
        let under4 = t.root().child(4).unwrap();
        assert!(t.node(under4).is_leaf());
        assert_eq!(t.node(under4).est_size, 900);
    }

    #[test]
    fn small_group_is_single_leaf() {
        let members: Vec<(Vec<PivotId>, u64)> = vec![(vec![1, 2, 3], 10), (vec![4, 5, 6], 5)];
        let refs: Vec<(&[PivotId], u64)> = members.iter().map(|(s, c)| (&s[..], *c)).collect();
        let mut next = 7;
        let t = Trie::build(&refs, 100, 3, &mut next);
        assert_eq!(t.len(), 1);
        assert!(t.root().is_leaf());
        assert_eq!(t.root().id, 7);
        assert_eq!(next, 8);
    }

    #[test]
    fn empty_member_list_gives_empty_leaf() {
        let mut next = 0;
        let t = Trie::build(&[], 10, 3, &mut next);
        assert_eq!(t.len(), 1);
        assert_eq!(t.root().est_size, 0);
    }

    #[test]
    fn prefix_exhaustion_leaves_oversized_leaf() {
        // identical signatures cannot be split below capacity
        let sig: Vec<PivotId> = vec![1, 2];
        let refs: Vec<(&[PivotId], u64)> = vec![(&sig[..], 100)];
        let mut next = 0;
        let t = Trie::build(&refs, 10, 2, &mut next);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 1);
        assert!(t.node(leaves[0]).est_size > 10, "soft capacity violated OK");
        assert_eq!(t.node(leaves[0]).depth, 2);
    }

    #[test]
    fn node_ids_are_unique_and_sequential() {
        let t = build_fig5();
        let mut ids: Vec<u64> = t.nodes().iter().map(|n| n.id).collect();
        ids.sort_unstable();
        let want: Vec<u64> = (0..t.len() as u64).collect();
        assert_eq!(ids, want);
    }

    #[test]
    fn descend_follows_existing_edges() {
        let t = build_fig5();
        // <6,2,...> descends two levels (6 split, 2 is a leaf below it)
        let d = t.descend(&[6, 2, 9]);
        assert_eq!(d.path_len, 2);
        assert!(t.node(d.node).is_leaf());
        // <6,5,...>: "5" not a child under 6 → stop at the 6-node
        let d2 = t.descend(&[6, 5, 1]);
        assert_eq!(d2.path_len, 1);
        assert!(!t.node(d2.node).is_leaf());
        // unknown 1st pivot → root
        let d3 = t.descend(&[9, 9, 9]);
        assert_eq!(d3.path_len, 0);
        assert_eq!(d3.node, 0);
    }

    #[test]
    fn leaf_for_requires_complete_path() {
        let t = build_fig5();
        assert!(t.leaf_for(&[6, 7, 1]).is_some());
        assert!(t.leaf_for(&[6, 5, 1]).is_none(), "stops at internal node");
        assert!(t.leaf_for(&[4, 1, 1]).is_some(), "leaf at depth 1");
        assert!(t.leaf_for(&[9, 1, 1]).is_none(), "stops at root");
    }

    #[test]
    fn leaves_under_collects_subtree() {
        let t = build_fig5();
        let under6 = t.root().child(6).unwrap();
        let leaves = t.leaves_under(under6);
        assert_eq!(leaves.len(), 3);
        let all = t.leaves();
        assert_eq!(all.len(), 4 + 3); // 4 depth-1 leaves + 3 under "6"
    }

    #[test]
    fn assign_partitions_propagates_unions() {
        let mut t = build_fig5();
        let leaves = t.leaves();
        let mut map = HashMap::new();
        for (i, &l) in leaves.iter().enumerate() {
            // pack alternately into partitions 100 and 200
            map.insert(t.node(l).id, if i % 2 == 0 { 100 } else { 200 });
        }
        t.assign_partitions(&map);
        assert_eq!(t.root().partitions, vec![100, 200]);
        for &l in &leaves {
            assert_eq!(t.node(l).partitions.len(), 1);
        }
        let under6 = t.root().child(6).unwrap();
        assert!(!t.node(under6).partitions.is_empty());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut t = build_fig5();
        let leaves = t.leaves();
        let map: HashMap<u64, u32> = leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| (t.node(l).id, i as u32))
            .collect();
        t.assign_partitions(&map);

        let mut buf = Vec::new();
        t.to_bytes(&mut buf);
        let mut r = ByteReader::new(&buf);
        let back = Trie::from_reader(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn corrupted_trie_bytes_rejected() {
        let t = build_fig5();
        let mut buf = Vec::new();
        t.to_bytes(&mut buf);
        let mut r = ByteReader::new(&buf[..buf.len() - 2]);
        assert!(Trie::from_reader(&mut r).is_err());
    }

    #[test]
    fn sizes_are_conserved_across_splits() {
        let t = build_fig5();
        // every internal node's size equals the sum of its children's
        for n in t.nodes() {
            if !n.is_leaf() {
                let child_sum: u64 = n.children.iter().map(|&(_, c)| t.node(c).est_size).sum();
                assert_eq!(n.est_size, child_sum, "node {}", n.id);
            }
        }
    }
}
