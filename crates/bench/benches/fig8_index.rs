//! Figure 8(a)+(b): index construction time and global index size across
//! the four datasets for CLIMBER, DPiSAX and TARDIS (Dss builds nothing).
//!
//! Shape to reproduce: DPiSAX's construction is by far the slowest (its
//! split tree updates per record); CLIMBER is slightly slower than TARDIS
//! (pivot conversions cost more than iSAX words); every global index is
//! tiny (KBs here, MBs in the paper) and TARDIS's sigTree is the largest
//! of the three.

use climber_bench::paper::{FIG8A_BUILD_MIN, FIG8B_INDEX_MB};
use climber_bench::runner::{build_climber, build_dpisax, build_tardis, dataset};
use climber_bench::table::{f2, kib, Table};
use climber_bench::{banner, default_n, experiment_config};

fn main() {
    let n = default_n();
    banner(
        "Figure 8(a)+(b) — construction time & global index size per dataset",
        "paper: 200GB; shape: DPiSAX slowest build; global indexes tiny; sigTree largest",
    );

    let mut table = Table::new(vec![
        "dataset",
        "system",
        "build(s)",
        "paper-build(min)",
        "index(KiB)",
        "paper-index(MB)",
    ]);
    for ((domain, pa), pb) in climber_bench::FIGURE_DOMAINS
        .iter()
        .zip(FIG8A_BUILD_MIN.iter())
        .zip(FIG8B_INDEX_MB.iter())
    {
        let ds = dataset(*domain, n);
        let cap = experiment_config(n).capacity;

        let c = build_climber(&ds, experiment_config(n));
        table.row(vec![
            domain.name().to_string(),
            "CLIMBER".into(),
            f2(c.build_secs),
            f2(pa.1),
            kib(c.index_bytes),
            f2(pb.1),
        ]);

        let dp = build_dpisax(&ds, cap, 5);
        table.row(vec![
            domain.name().to_string(),
            "DPiSAX".into(),
            f2(dp.build_secs),
            f2(pa.2),
            kib(dp.index_bytes),
            f2(pb.2),
        ]);

        let td = build_tardis(&ds, cap, 7);
        table.row(vec![
            domain.name().to_string(),
            "TARDIS".into(),
            f2(td.build_secs),
            f2(pa.3),
            kib(td.index_bytes),
            f2(pb.3),
        ]);
    }
    table.print();
    println!(
        "\nnote: the DPiSAX-like build here routes every record through the split tree\n\
         (the paper attributes DPiSAX's slowness to per-record structure updates);\n\
         absolute times are not comparable across 4 orders of magnitude of scale."
    );
}
