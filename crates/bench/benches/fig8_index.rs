//! Figure 8(a)+(b): index construction time and global index size across
//! the four datasets for CLIMBER, DPiSAX and TARDIS (Dss builds nothing) —
//! plus, for CLIMBER, the cost of the persistence path the paper's
//! build-once/query-many deployment depends on: `save` (partition copy +
//! checksums + manifest) and cold `open` (manifest + checksum validation +
//! skeleton decode).
//!
//! Shape to reproduce: DPiSAX's construction is by far the slowest (its
//! split tree updates per record); CLIMBER is slightly slower than TARDIS
//! (pivot conversions cost more than iSAX words); every global index is
//! tiny (KBs here, MBs in the paper) and TARDIS's sigTree is the largest
//! of the three. Cold open must be orders of magnitude cheaper than the
//! build — that gap *is* the value of persistence.
//!
//! Emits a `BENCH_fig8_index.json` record (build vs cold-open seconds per
//! dataset) next to the printed table.

use climber_bench::paper::{FIG8A_BUILD_MIN, FIG8B_INDEX_MB};
use climber_bench::runner::{build_climber, build_dpisax, build_tardis, cold_open, dataset};
use climber_bench::table::{f2, kib, Table};
use climber_bench::{banner, default_n, experiment_config};
use std::fmt::Write as _;

struct ClimberRow {
    domain: &'static str,
    build_secs: f64,
    save_secs: f64,
    open_secs: f64,
    index_bytes: usize,
}

fn main() {
    let n = default_n();
    banner(
        "Figure 8(a)+(b) — construction time, global index size & cold-open per dataset",
        "paper: 200GB; shape: DPiSAX slowest build; global indexes tiny; cold open << build",
    );

    let mut table = Table::new(vec![
        "dataset",
        "system",
        "build(s)",
        "save(s)",
        "cold-open(s)",
        "paper-build(min)",
        "index(KiB)",
        "paper-index(MB)",
    ]);
    let mut climber_rows: Vec<ClimberRow> = Vec::new();
    for ((domain, pa), pb) in climber_bench::FIGURE_DOMAINS
        .iter()
        .zip(FIG8A_BUILD_MIN.iter())
        .zip(FIG8B_INDEX_MB.iter())
    {
        let ds = dataset(*domain, n);
        let cap = experiment_config(n).capacity;

        let c = build_climber(&ds, experiment_config(n));
        let co = cold_open(&c.climber, &format!("fig8-{}", domain.name()));
        // The reopened index must answer like the built one.
        let probe = ds.get(0);
        assert_eq!(
            co.climber.knn(probe, 10).results,
            c.climber.knn(probe, 10).results,
            "reopened index diverged on {}",
            domain.name()
        );
        std::fs::remove_dir_all(&co.dir).ok();
        table.row(vec![
            domain.name().to_string(),
            "CLIMBER".into(),
            f2(c.build_secs),
            f2(co.save_secs),
            f2(co.open_secs),
            f2(pa.1),
            kib(c.index_bytes),
            f2(pb.1),
        ]);
        climber_rows.push(ClimberRow {
            domain: domain.name(),
            build_secs: c.build_secs,
            save_secs: co.save_secs,
            open_secs: co.open_secs,
            index_bytes: c.index_bytes,
        });

        let dp = build_dpisax(&ds, cap, 5);
        table.row(vec![
            domain.name().to_string(),
            "DPiSAX".into(),
            f2(dp.build_secs),
            "-".into(),
            "-".into(),
            f2(pa.2),
            kib(dp.index_bytes),
            f2(pb.2),
        ]);

        let td = build_tardis(&ds, cap, 7);
        table.row(vec![
            domain.name().to_string(),
            "TARDIS".into(),
            f2(td.build_secs),
            "-".into(),
            "-".into(),
            f2(pa.3),
            kib(td.index_bytes),
            f2(pb.3),
        ]);
    }
    table.print();

    // BENCH_*.json record (consumed by tooling; schema kept flat).
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"fig8_index\",\n  \"n\": {n},\n  \"rows\": ["
    );
    for (i, r) in climber_rows.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"dataset\": \"{}\", \"build_secs\": {:.4}, \"save_secs\": {:.4}, \"cold_open_secs\": {:.4}, \"index_bytes\": {}}}",
            if i == 0 { "" } else { "," },
            r.domain,
            r.build_secs,
            r.save_secs,
            r.open_secs,
            r.index_bytes
        );
    }
    let _ = write!(json, "\n  ]\n}}\n");
    let path =
        std::env::var("CLIMBER_BENCH_JSON").unwrap_or_else(|_| "BENCH_fig8_index.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }

    println!(
        "\nnote: the DPiSAX-like build here routes every record through the split tree\n\
         (the paper attributes DPiSAX's slowness to per-record structure updates);\n\
         absolute times are not comparable across 4 orders of magnitude of scale.\n\
         save/cold-open apply to CLIMBER's persisted deployment mode only."
    );
}
