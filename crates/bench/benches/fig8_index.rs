//! Figure 8(a)+(b): index construction time and global index size across
//! the four datasets for CLIMBER, DPiSAX and TARDIS (Dss builds nothing) —
//! plus, for CLIMBER, two costs the paper's build-once/query-many
//! deployment depends on: the persistence path (`save` — partition copy +
//! checksums + manifest — and cold `open`) and the **multi-core build
//! speedup** (sequential vs. N-thread construction of the *same*, bit-
//! identical index).
//!
//! Shape to reproduce: DPiSAX's construction is by far the slowest (its
//! split tree updates per record); CLIMBER is slightly slower than TARDIS
//! (pivot conversions cost more than iSAX words); every global index is
//! tiny (KBs here, MBs in the paper) and TARDIS's sigTree is the largest
//! of the three. Cold open must be orders of magnitude cheaper than the
//! build, and the parallel build must approach the paper's cluster-scaling
//! story on a single machine (Figure 10(a) splits the same three phases).
//!
//! Emits a `BENCH_fig8_index.json` record next to the printed table:
//! per-row `build_secs` is the N-thread build (matching the historical
//! default-workers semantics of this field), `build_seq_secs` the
//! 1-thread reference, with the thread count and aggregate
//! `build_speedup` at top level. Under `CLIMBER_BENCH_STRICT=1` the
//! harness *gates* the speedup: >= 1.5x with 4+ hardware threads (the CI
//! multi-core config), >= 1.2x on 2-3 threads (Amdahl headroom at smoke
//! scale), >= 1.0x (trivially met — the sequential build is reused) on
//! 1-core runners.
//!
//! Knobs: `CLIMBER_BUILD_THREADS` overrides the parallel thread count
//! (default: available parallelism).

use climber_bench::paper::{FIG8A_BUILD_MIN, FIG8B_INDEX_MB};
use climber_bench::runner::{
    build_climber_with, build_dpisax, build_tardis, cold_open, dataset, BuiltClimber,
};
use climber_bench::table::{f2, kib, Table};
use climber_bench::{banner, default_n, env_usize, experiment_config};
use climber_core::BuildOptions;
use std::fmt::Write as _;

struct ClimberRow {
    domain: &'static str,
    build_seq_secs: f64,
    build_par_secs: f64,
    save_secs: f64,
    open_secs: f64,
    index_bytes: usize,
}

fn main() {
    let n = default_n();
    let threads = env_usize(
        "CLIMBER_BUILD_THREADS",
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1),
    )
    .max(1);
    banner(
        "Figure 8(a)+(b) — construction time (sequential vs parallel), index size & cold-open",
        "paper: 200GB; shape: DPiSAX slowest build; global indexes tiny; cold open << build",
    );
    println!("parallel build threads: {threads} (CLIMBER_BUILD_THREADS)");

    let mut table = Table::new(vec![
        "dataset".to_string(),
        "system".to_string(),
        "build-1t(s)".to_string(),
        format!("build-{threads}t(s)"),
        "save(s)".to_string(),
        "cold-open(s)".to_string(),
        "paper-build(min)".to_string(),
        "index(KiB)".to_string(),
        "paper-index(MB)".to_string(),
    ]);
    let mut climber_rows: Vec<ClimberRow> = Vec::new();
    for ((domain, pa), pb) in climber_bench::FIGURE_DOMAINS
        .iter()
        .zip(FIG8A_BUILD_MIN.iter())
        .zip(FIG8B_INDEX_MB.iter())
    {
        let ds = dataset(*domain, n);
        let cap = experiment_config(n).capacity;

        // Sequential reference, then the N-thread build of the same
        // config. Determinism bar: the two skeletons must match bit for
        // bit — the speedup may never buy a different index.
        let seq = build_climber_with(
            &ds,
            experiment_config(n),
            BuildOptions::default().with_threads(1),
        );
        let build_seq_secs = seq.build_secs;
        let (c, build_par_secs): (BuiltClimber, f64) = if threads > 1 {
            let par = build_climber_with(
                &ds,
                experiment_config(n),
                BuildOptions::default().with_threads(threads),
            );
            assert_eq!(
                par.climber.skeleton().to_bytes(),
                seq.climber.skeleton().to_bytes(),
                "parallel build produced a different skeleton on {}",
                domain.name()
            );
            let secs = par.build_secs;
            (par, secs)
        } else {
            // 1-core runner: the "parallel" build *is* the sequential one.
            (seq, build_seq_secs)
        };

        let co = cold_open(&c.climber, &format!("fig8-{}", domain.name()));
        // The reopened index must answer like the built one.
        let probe = ds.get(0);
        assert_eq!(
            co.climber.knn(probe, 10).results,
            c.climber.knn(probe, 10).results,
            "reopened index diverged on {}",
            domain.name()
        );
        std::fs::remove_dir_all(&co.dir).ok();
        table.row(vec![
            domain.name().to_string(),
            "CLIMBER".into(),
            f2(build_seq_secs),
            f2(build_par_secs),
            f2(co.save_secs),
            f2(co.open_secs),
            f2(pa.1),
            kib(c.index_bytes),
            f2(pb.1),
        ]);
        climber_rows.push(ClimberRow {
            domain: domain.name(),
            build_seq_secs,
            build_par_secs,
            save_secs: co.save_secs,
            open_secs: co.open_secs,
            index_bytes: c.index_bytes,
        });

        let dp = build_dpisax(&ds, cap, 5);
        table.row(vec![
            domain.name().to_string(),
            "DPiSAX".into(),
            f2(dp.build_secs),
            "-".into(),
            "-".into(),
            "-".into(),
            f2(pa.2),
            kib(dp.index_bytes),
            f2(pb.2),
        ]);

        let td = build_tardis(&ds, cap, 7);
        table.row(vec![
            domain.name().to_string(),
            "TARDIS".into(),
            f2(td.build_secs),
            "-".into(),
            "-".into(),
            "-".into(),
            f2(pa.3),
            kib(td.index_bytes),
            f2(pb.3),
        ]);
    }
    table.print();

    // Aggregate speedup over the four datasets (total seq / total par);
    // exactly 1.0 on 1-core runs, where the build is reused.
    let total_seq: f64 = climber_rows.iter().map(|r| r.build_seq_secs).sum();
    let total_par: f64 = climber_rows.iter().map(|r| r.build_par_secs).sum();
    let build_speedup = if threads > 1 {
        total_seq / total_par.max(1e-9)
    } else {
        1.0
    };
    println!(
        "\nbuild speedup at {threads} threads: {build_speedup:.2}x \
         ({total_seq:.2}s sequential vs {total_par:.2}s parallel, bit-identical output)"
    );

    // BENCH_*.json record (consumed by tooling; schema kept flat).
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"fig8_index\",\n  \"n\": {n},\n  \"build_threads\": {threads},\n  \"build_speedup\": {build_speedup:.3},\n  \"rows\": ["
    );
    for (i, r) in climber_rows.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"dataset\": \"{}\", \"build_secs\": {:.4}, \"build_seq_secs\": {:.4}, \"save_secs\": {:.4}, \"cold_open_secs\": {:.4}, \"index_bytes\": {}}}",
            if i == 0 { "" } else { "," },
            r.domain,
            r.build_par_secs,
            r.build_seq_secs,
            r.save_secs,
            r.open_secs,
            r.index_bytes
        );
    }
    let _ = write!(json, "\n  ]\n}}\n");
    let path =
        std::env::var("CLIMBER_BENCH_JSON").unwrap_or_else(|_| "BENCH_fig8_index.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }

    println!(
        "\nnote: the DPiSAX-like build here routes every record through the split tree\n\
         (the paper attributes DPiSAX's slowness to per-record structure updates);\n\
         absolute times are not comparable across 4 orders of magnitude of scale.\n\
         save/cold-open apply to CLIMBER's persisted deployment mode only."
    );

    if std::env::var("CLIMBER_BENCH_STRICT").as_deref() == Ok("1") {
        // Full target only with 4+ threads: at smoke scale the serial
        // phases (centroids, trie packing, shard merge) cap a 2-core
        // speedup well below its ideal 2.0x.
        let target = if threads >= 4 {
            1.5
        } else if threads > 1 {
            1.2
        } else {
            1.0
        };
        assert!(
            build_speedup >= target,
            "parallel build speedup {build_speedup:.2}x below the {target}x target at {threads} threads"
        );
        println!("strict gate passed: {build_speedup:.2}x >= {target}x");
    }
}
