//! Figure 9(a)+(b): recall and query time as the answer size K grows
//! (RandomWalk; paper: 400 GB, K ∈ {50, 100, 500, 1000, 2000}).
//!
//! Shape to reproduce: (1) CLIMBER stays the most accurate approximate
//! system at every K; (2) the three CLIMBER variations coincide at small K
//! and the adaptive ones become more robust as K outgrows the target trie
//! node; (3) all approximate systems' times stay in the same ballpark
//! while Dss is orders of magnitude slower.

use climber_bench::paper::{FIG9A_RECALL_VS_K, FIG9B_TIME_VS_K};
use climber_bench::runner::{build_climber, build_dpisax, build_tardis, dataset, sweep, workload};
use climber_bench::table::{f3, ms, Table};
use climber_bench::{banner, default_n, default_queries, experiment_config, QUERY_SEED};
use climber_core::baselines::dss::dss_query;
use climber_core::series::gen::Domain;

fn main() {
    let n = default_n();
    let nq = default_queries();
    banner(
        "Figure 9(a)+(b) — recall & query time vs K",
        "paper: RandomWalk 400GB, K in {50,100,500,1000,2000}; shape: variants split as K grows",
    );

    // K values scaled to the dataset: the paper's 50..2000 on 400M series
    // stresses K beyond node capacity; here the same pressure happens at
    // K up to ~n/10.
    let ks: Vec<usize> = vec![50, 100, 500, 1000, 2000]
        .into_iter()
        .map(|k| k.min(n / 4))
        .collect();

    let ds = dataset(Domain::RandomWalk, n);
    let cfg = experiment_config(n);
    let built = build_climber(&ds, cfg);
    let dp = build_dpisax(&ds, cfg.capacity, 5);
    let td = build_tardis(&ds, cfg.capacity, 7);

    let mut table = Table::new(vec![
        "K",
        "system",
        "time(ms)",
        "recall",
        "paper-recall",
        "paper-time(s)",
    ]);
    for (i, &k) in ks.iter().enumerate() {
        let (queries, truth) = workload(&ds, nq, k, QUERY_SEED);
        let pa = FIG9A_RECALL_VS_K[i];
        let pb = FIG9B_TIME_VS_K[i];

        let s = sweep(&ds, &queries, &truth, |q| {
            let o = built.climber.knn(q, k);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            k.to_string(),
            "CLIMBER-kNN".into(),
            ms(s.secs),
            f3(s.recall),
            f3(pa.2),
            format!("{:.1}", pb.4),
        ]);

        for (name, factor, paper_recall, paper_time) in [
            ("Adaptive-2X", 2usize, pa.1, pb.3),
            ("Adaptive-4X", 4, pa.1, pb.2),
        ] {
            let s = sweep(&ds, &queries, &truth, |q| {
                let o = built.climber.knn_adaptive(q, k, factor);
                (o.results, o.records_scanned, o.partitions_opened)
            });
            table.row(vec![
                k.to_string(),
                name.into(),
                ms(s.secs),
                f3(s.recall),
                f3(paper_recall),
                format!("{paper_time:.1}"),
            ]);
        }

        let s = sweep(&ds, &queries, &truth, |q| {
            let o = dp.index.query(&dp.store, q, k);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            k.to_string(),
            "DPiSAX".into(),
            ms(s.secs),
            f3(s.recall),
            f3(pa.3),
            format!("{:.1}", pb.6),
        ]);

        let s = sweep(&ds, &queries, &truth, |q| {
            let o = td.index.query(&td.store, q, k);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            k.to_string(),
            "TARDIS".into(),
            ms(s.secs),
            f3(s.recall),
            f3(pa.4),
            format!("{:.1}", pb.5),
        ]);

        let s = sweep(&ds, &queries, &truth, |q| {
            let o = dss_query(built.climber.store(), q, k);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            k.to_string(),
            "Dss (exact)".into(),
            ms(s.secs),
            f3(s.recall),
            "1.000".into(),
            format!("{:.0}", pb.1),
        ]);
    }
    table.print();
    println!("\npaper columns: Figure 9(a) recall (chart) and the Figure 9(b) time table.");
}
