//! Criterion baseline for the per-record kernels the build and query hot
//! loops are made of: `sq_ed`, `ed_early_abandon`, `paa_into` (the
//! allocation-free PAA the conversion and prefilter paths use), and
//! single-record signature extraction through a reused
//! [`SignatureScratch`]. Every future kernel change — vectorisation,
//! layout, early-abandon cadence — diffs against these numbers.
//!
//! Run with `cargo bench --bench kernels` (add `-- --quick` for the CI
//! smoke cadence).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use climber_core::pivot::pivots::PivotSet;
use climber_core::pivot::signature::{DualSignature, SignatureScratch};
use climber_core::repr::paa::paa_into;
use climber_core::series::distance::{ed_early_abandon, sq_ed};
use climber_core::series::gen::Domain;

fn bench_kernels(c: &mut Criterion) {
    let ds = Domain::RandomWalk.generate(300, 9);
    let x = ds.get(0).to_vec();
    let y = ds.get(1).to_vec();
    // The paper's default scale: 200 pivots in 16-segment PAA space,
    // prefix length 10 — the exact per-record cost of Step-4 conversion.
    let pivots = PivotSet::select_random(&ds, 16, 200, 4);
    let exact = sq_ed(&x, &y);

    let mut g = c.benchmark_group("kernels");
    g.bench_function("sq_ed_256", |b| {
        b.iter(|| sq_ed(black_box(&x), black_box(&y)))
    });
    g.bench_function("ed_early_abandon_mid_bound", |b| {
        // A bound around half the true distance abandons mid-series —
        // the realistic refinement-stage mix of work and bail-out.
        b.iter(|| ed_early_abandon(black_box(&x), black_box(&y), exact * 0.5))
    });
    g.bench_function("ed_early_abandon_loose_bound", |b| {
        b.iter(|| ed_early_abandon(black_box(&x), black_box(&y), f64::INFINITY))
    });
    g.bench_function("paa_into_256_to_16", |b| {
        let mut arena: Vec<f64> = Vec::with_capacity(16);
        b.iter(|| {
            arena.clear();
            paa_into(black_box(&x), 16, &mut arena);
            black_box(arena.last().copied())
        })
    });
    g.bench_function("signature_extract_r200_m10", |b| {
        let mut scratch = SignatureScratch::new();
        b.iter(|| DualSignature::extract_with(black_box(&x), &pivots, 16, 10, &mut scratch))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
