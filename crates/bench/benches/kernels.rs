//! Per-record kernel microbench: dispatched SIMD vs forced scalar.
//!
//! Times the kernels the build and query hot loops are made of — `sq_ed`,
//! `ed_early_abandon`, `sum_f32`, `sq_dist_f64`, `paa_into` and
//! single-record signature extraction — once through the runtime-detected
//! dispatch path and once with the scalar reference pinned, and reports
//! the speedup. Because every tier is bit-identical, the two columns
//! measure the same work; only the instruction mix differs.
//!
//! Three columns per kernel: the dispatched path, the pinned scalar
//! *tier* (the 8-lane reference — which LLVM itself auto-vectorises to
//! SSE2 on x86-64, so it is a strong fallback, not a strawman), and for
//! `sq_ed` additionally the *naive* single-accumulator scalar baseline,
//! which floating-point non-associativity keeps genuinely scalar.
//!
//! Prints the detected CPU features in the header and records them in
//! `BENCH_kernels.json` (path override: `CLIMBER_BENCH_JSON`). With
//! `CLIMBER_BENCH_STRICT=1` the run asserts that on AVX2 hosts `sq_ed`
//! reaches >= 2x over the naive scalar baseline *and* beats the scalar
//! tier outright (the dependency chain of the pinned per-lane summation
//! order bounds the tier-vs-tier gap: one FP add per lane per chunk is
//! the latency floor for every bit-identical implementation, so the
//! tier-vs-tier ratio lands well under 2x by construction). On hosts
//! without AVX2 the gate relaxes to >= 1.0x over the scalar tier and the
//! relaxation reason is logged. `--quick` shrinks the repetition count
//! to the CI smoke cadence.

use climber_core::pivot::pivots::PivotSet;
use climber_core::pivot::signature::{DualSignature, SignatureScratch};
use climber_core::repr::paa::paa_into;
use climber_core::series::gen::Domain;
use climber_core::series::kernels::{
    self, ed_early_abandon, ed_early_abandon_with, sq_dist_f64, sq_dist_f64_with, sq_ed,
    sq_ed_with, sum_f32, sum_f32_with, Dispatch,
};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// One kernel measured both ways.
struct Row {
    kernel: &'static str,
    dispatched_ns: f64,
    scalar_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.dispatched_ns.max(1e-9)
    }
}

/// Best-of-`reps` nanoseconds per call for `iters` calls of `f`.
fn time_ns(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm up caches and the dispatch cell outside the timed region
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times `f` through the auto-dispatch path and again with the scalar
/// tier pinned via the forced-dispatch hook (the bench is
/// single-threaded, so pinning is race-free).
fn measure(kernel: &'static str, reps: usize, iters: usize, mut f: impl FnMut()) -> Row {
    let dispatched_ns = time_ns(reps, iters, &mut f);
    kernels::force(Some(Dispatch::Scalar));
    let scalar_ns = time_ns(reps, iters, &mut f);
    kernels::force(None);
    Row {
        kernel,
        dispatched_ns,
        scalar_ns,
    }
}

/// The naive textbook scalar loop: one running sum, strictly sequential.
/// Float addition is non-associative, so LLVM cannot vectorise this —
/// it is the honest "no SIMD, no lane trick" baseline the 2x gate
/// compares against.
#[inline(never)]
fn naive_sq_ed(x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len());
    let mut acc = 0.0f64;
    for (a, b) in x.iter().zip(y.iter()) {
        let d = f64::from(*a) - f64::from(*b);
        acc += d * d;
    }
    acc
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (reps, iters) = if quick { (3, 2_000) } else { (7, 20_000) };

    let detected = kernels::detect();
    let features: Vec<&str> = Dispatch::available().iter().map(|d| d.name()).collect();
    println!("==========================================================================");
    println!("Kernels — dispatched SIMD vs forced scalar (ns/op, best of {reps})");
    println!(
        "cpu: dispatch={} available=[{}]{}",
        detected.name(),
        features.join(", "),
        if quick { " [--quick]" } else { "" }
    );
    println!("==========================================================================");

    let ds = Domain::RandomWalk.generate(300, 9);
    let x = ds.get(0).to_vec();
    let y = ds.get(1).to_vec();
    let xd: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
    let yd: Vec<f64> = y.iter().map(|&v| f64::from(v)).collect();
    // The paper's default scale: 200 pivots in 16-segment PAA space,
    // prefix length 10 — the exact per-record cost of Step-4 conversion.
    let pivots = PivotSet::select_random(&ds, 16, 200, 4);
    let exact = sq_ed(&x, &y);

    // Sanity first: the two columns must be the same bits, or the timing
    // comparison is meaningless.
    assert_eq!(
        sq_ed(&x, &y).to_bits(),
        sq_ed_with(Dispatch::Scalar, &x, &y).to_bits(),
        "dispatched sq_ed disagrees with scalar — bit-identity broken"
    );
    assert_eq!(
        sum_f32(&x).to_bits(),
        sum_f32_with(Dispatch::Scalar, &x).to_bits()
    );
    assert_eq!(
        sq_dist_f64(&xd, &yd).to_bits(),
        sq_dist_f64_with(Dispatch::Scalar, &xd, &yd).to_bits()
    );
    assert_eq!(
        ed_early_abandon(&x, &y, exact * 0.5).map(f64::to_bits),
        ed_early_abandon_with(Dispatch::Scalar, &x, &y, exact * 0.5).map(f64::to_bits)
    );

    let mut rows = Vec::new();
    rows.push(measure("sq_ed_256", reps, iters, || {
        black_box(sq_ed(black_box(&x), black_box(&y)));
    }));
    rows.push(measure("ed_early_abandon_mid_bound", reps, iters, || {
        // A bound around half the true distance abandons mid-series —
        // the realistic refinement-stage mix of work and bail-out.
        black_box(ed_early_abandon(black_box(&x), black_box(&y), exact * 0.5));
    }));
    rows.push(measure("ed_early_abandon_loose_bound", reps, iters, || {
        black_box(ed_early_abandon(
            black_box(&x),
            black_box(&y),
            f64::INFINITY,
        ));
    }));
    rows.push(measure("sum_f32_256", reps, iters, || {
        black_box(sum_f32(black_box(&x)));
    }));
    rows.push(measure("sq_dist_f64_256", reps, iters, || {
        black_box(sq_dist_f64(black_box(&xd), black_box(&yd)));
    }));
    let mut arena: Vec<f64> = Vec::with_capacity(16);
    rows.push(measure("paa_into_256_to_16", reps, iters, || {
        arena.clear();
        paa_into(black_box(&x), 16, &mut arena);
        black_box(arena.last().copied());
    }));
    let mut scratch = SignatureScratch::new();
    rows.push(measure(
        "signature_extract_r200_m10",
        reps,
        iters / 10,
        || {
            black_box(DualSignature::extract_with(
                black_box(&x),
                &pivots,
                16,
                10,
                &mut scratch,
            ));
        },
    ));

    println!(
        "{:<30} {:>12} {:>12} {:>9}",
        "kernel", "dispatched", "scalar", "speedup"
    );
    for r in &rows {
        println!(
            "{:<30} {:>10.1}ns {:>10.1}ns {:>8.2}x",
            r.kernel,
            r.dispatched_ns,
            r.scalar_ns,
            r.speedup()
        );
    }

    let sq_ed_row = &rows[0];
    let vs_tier = sq_ed_row.speedup();
    let naive_ns = time_ns(reps, iters, || {
        black_box(naive_sq_ed(black_box(&x), black_box(&y)));
    });
    let vs_naive = naive_ns / sq_ed_row.dispatched_ns.max(1e-9);
    // The gate: on AVX2 hosts, >= 2x over the naive scalar baseline and
    // strictly ahead of the scalar tier. (The bit-identity contract pins
    // the per-lane summation order, so one FP add per lane per chunk is
    // a hard latency floor shared by every tier — the tier-vs-tier ratio
    // cannot reach 2x by construction; the naive baseline is the honest
    // "no SIMD" reference.) Without AVX2 the vector paths are narrower
    // or absent, so the gate relaxes to tier parity and says why.
    let avx2 = detected == Dispatch::Avx2;
    let (gate, passed, reason) = if avx2 {
        (2.0, vs_naive >= 2.0 && vs_tier >= 1.0, None)
    } else {
        (
            1.0,
            vs_tier >= 1.0,
            Some(format!(
                "host dispatches {} (no AVX2) — gate relaxed to >= 1.0x vs the scalar tier",
                detected.name()
            )),
        )
    };
    if let Some(reason) = &reason {
        println!("\nnote: {reason}");
    }
    println!(
        "sq_ed: {:.1}ns dispatched | {:.1}ns scalar tier ({vs_tier:.2}x) | {naive_ns:.1}ns naive scalar ({vs_naive:.2}x; target >= {gate:.1}x)",
        sq_ed_row.dispatched_ns, sq_ed_row.scalar_ns
    );

    // BENCH_*.json record (consumed by tooling; schema kept flat).
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"kernels\",\n  \"series_len\": {},\n  \"dispatch\": \"{}\",\n  \"cpu_features\": [{}],\n  \"rows\": [",
        x.len(),
        detected.name(),
        features
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"kernel\": \"{}\", \"dispatched_ns\": {:.2}, \"scalar_ns\": {:.2}, \"speedup\": {:.2}}}",
            if i == 0 { "" } else { "," },
            r.kernel,
            r.dispatched_ns,
            r.scalar_ns,
            r.speedup()
        );
    }
    let _ = write!(
        json,
        "\n  ],\n  \"sq_ed_naive_scalar_ns\": {naive_ns:.2},\n  \"sq_ed_vs_naive\": {vs_naive:.2},\n  \"sq_ed_vs_scalar_tier\": {vs_tier:.2},\n  \"gate\": {gate:.1}\n}}\n"
    );
    let path =
        std::env::var("CLIMBER_BENCH_JSON").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if std::env::var("CLIMBER_BENCH_STRICT").as_deref() == Ok("1") {
        assert!(
            passed,
            "sq_ed gate failed: {vs_naive:.2}x vs naive scalar, {vs_tier:.2}x vs scalar tier \
             (target >= {gate:.1}x, {})",
            reason
                .as_deref()
                .unwrap_or("AVX2 host: >= 2x vs naive and >= 1x vs tier")
        );
    }
}
