//! Block-cache economics: what the paged storage engine buys and costs.
//!
//! Three questions, one on-disk index:
//!
//! 1. **Cold vs warm QPS** — how much faster is a warm shared LRU of
//!    decompressed partition images than reading and validating each
//!    partition from the filesystem on every scan?
//! 2. **Hit rate** — what fraction of sealed reads a budget-bound cache
//!    actually serves from memory under a realistic query workload.
//! 3. **Compression** — how much smaller the CLBP v2 rewrite makes the
//!    directory on disk, and what the decompressed-once-and-pinned read
//!    path does to warm throughput.
//!
//! Emits `BENCH_cache.json`. Scale with `CLIMBER_N` / `CLIMBER_QUERIES`
//! / `CLIMBER_CACHE_MB`, or pass `--quick` for the CI smoke scale.
//! Under `CLIMBER_BENCH_STRICT=1` warm cached QPS must reach >= 1.3x
//! the uncached baseline — relaxed (with the reason logged) on a
//! single-core runner, where the cache can only save the disk+validate
//! work that already shares the lone core with the scans.

use climber_bench::runner::dataset;
use climber_bench::table::{f2, Table};
use climber_bench::{default_k, env_usize, experiment_config, QUERY_SEED};
use climber_core::series::gen::{query_workload, Domain};
use climber_core::{CacheConfig, Climber, RecoveryPolicy, SearchRequest};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Instant;

/// Total committed partition bytes in an index directory.
fn partition_bytes(dir: &Path) -> u64 {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "clbp"))
        .map(|e| e.metadata().map_or(0, |m| m.len()))
        .sum()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick {
        4_000
    } else {
        env_usize("CLIMBER_N", 20_000)
    };
    let total = env_usize("CLIMBER_QUERIES", if quick { 256 } else { 512 });
    let k = default_k();
    let reps = if quick { 2 } else { 3 };
    let budget = env_usize("CLIMBER_CACHE_MB", 256) << 20;
    println!("==========================================================================");
    println!("Cache — cold vs warm QPS, hit rate, compressed clusters");
    println!("workload: {total} requests, K={k}, Adaptive-4X, best of {reps}");
    println!(
        "scale: N={n}, budget {} MiB{} (CLIMBER_N / CLIMBER_QUERIES / CLIMBER_CACHE_MB)",
        budget >> 20,
        if quick { " [--quick]" } else { "" }
    );
    println!("==========================================================================");

    let ds = dataset(Domain::RandomWalk, n);
    let config = experiment_config(n);
    let dir = std::env::temp_dir().join(format!("climber-bench-cache-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();

    let t = Instant::now();
    drop(Climber::build_on_disk(&ds, &dir, config).unwrap());
    let build_secs = t.elapsed().as_secs_f64();
    println!("built on-disk index in {build_secs:.2}s");
    let raw_disk_bytes = partition_bytes(&dir);

    let qids = query_workload(&ds, total, QUERY_SEED);
    let requests: Vec<SearchRequest> = qids
        .iter()
        .map(|&q| SearchRequest::new(ds.get(q), k).adaptive(4))
        .collect();
    let pass = |c: &Climber<climber_core::dfs::store::DiskStore>| {
        let t = Instant::now();
        for req in &requests {
            let out = c.search(req);
            assert!(out.results.len() <= k);
        }
        t.elapsed().as_secs_f64()
    };

    // 1a. Uncached baseline: every sealed scan reads and validates the
    // partition from the filesystem.
    let uncached = Climber::open_rw(&dir).unwrap();
    let uncached_secs = (0..reps)
        .map(|_| pass(&uncached))
        .min_by(f64::total_cmp)
        .expect("reps >= 1");
    let uncached_qps = total as f64 / uncached_secs;
    println!("uncached: {uncached_qps:.1} QPS");
    drop(uncached);

    // 1b. Cached: the cold pass right after the open (pre-warmed by the
    // open's own validation reads), then the steady warm state.
    let cc = CacheConfig::default().with_capacity_bytes(budget);
    let (cached, report) = Climber::open_with_cache(&dir, RecoveryPolicy::Strict, cc).unwrap();
    let warmed_bytes = report.warmed_bytes;
    let cold_secs = pass(&cached);
    let cold_qps = total as f64 / cold_secs;
    let warm_secs = (0..reps)
        .map(|_| pass(&cached))
        .min_by(f64::total_cmp)
        .expect("reps >= 1");
    let warm_qps = total as f64 / warm_secs;
    let stats = cached
        .block_cache()
        .expect("cached open attaches a cache")
        .stats();
    let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
    let speedup = warm_qps / uncached_qps;
    println!(
        "cached: cold {cold_qps:.1} QPS, warm {warm_qps:.1} QPS ({speedup:.2}x uncached), \
         hit rate {:.1}%, warmed {:.1} MB",
        hit_rate * 100.0,
        warmed_bytes as f64 / 1e6
    );
    drop(cached);

    // 3. Compressed rewrite: save through a compressing store into a
    // sibling directory — every partition lands in CLBP v2 — then
    // measure the warm read path over the compressed index.
    let v2_dir =
        std::env::temp_dir().join(format!("climber-bench-cache-v2-{}", std::process::id()));
    fs::remove_dir_all(&v2_dir).ok();
    let (writer, _) =
        Climber::open_with_cache(&dir, RecoveryPolicy::Strict, cc.with_compression()).unwrap();
    let t = Instant::now();
    writer.save(&v2_dir).unwrap();
    let compress_secs = t.elapsed().as_secs_f64();
    drop(writer);
    let v2_disk_bytes = partition_bytes(&v2_dir);
    let disk_ratio = v2_disk_bytes as f64 / raw_disk_bytes.max(1) as f64;
    let (compressed, _) =
        Climber::open_with_cache(&v2_dir, RecoveryPolicy::Strict, cc.with_compression()).unwrap();
    let _ = pass(&compressed); // populate past the cold pass
    let cwarm_secs = (0..reps)
        .map(|_| pass(&compressed))
        .min_by(f64::total_cmp)
        .expect("reps >= 1");
    let cwarm_qps = total as f64 / cwarm_secs;
    let resident_ratio = compressed.serve_io().cache_compressed_ratio();
    println!(
        "compressed: {:.1} -> {:.1} MB on disk ({disk_ratio:.2}x, rewrite {compress_secs:.2}s), \
         warm {cwarm_qps:.1} QPS, resident ratio {resident_ratio:.2}",
        raw_disk_bytes as f64 / 1e6,
        v2_disk_bytes as f64 / 1e6
    );
    drop(compressed);

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["build_s".into(), f2(build_secs)]);
    table.row(vec!["uncached_qps".into(), f2(uncached_qps)]);
    table.row(vec!["cold_qps".into(), f2(cold_qps)]);
    table.row(vec!["warm_qps".into(), f2(warm_qps)]);
    table.row(vec!["warm_over_uncached".into(), f2(speedup)]);
    table.row(vec!["hit_rate".into(), f2(hit_rate)]);
    table.row(vec!["disk_compressed_ratio".into(), f2(disk_ratio)]);
    table.row(vec!["compressed_warm_qps".into(), f2(cwarm_qps)]);
    table.print();

    // BENCH_*.json record (consumed by tooling; schema kept flat).
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"cache\",\n  \"n\": {n},\n  \"queries\": {total},\n  \"k\": {k},\n  \"budget_bytes\": {budget},\n"
    );
    let _ = writeln!(json, "  \"build_secs\": {build_secs:.4},");
    let _ = write!(
        json,
        "  \"uncached_qps\": {uncached_qps:.2},\n  \"cold_qps\": {cold_qps:.2},\n  \"warm_qps\": {warm_qps:.2},\n"
    );
    let _ = write!(
        json,
        "  \"warm_over_uncached\": {speedup:.4},\n  \"hit_rate\": {hit_rate:.4},\n  \"warmed_bytes\": {warmed_bytes},\n"
    );
    let _ = write!(
        json,
        "  \"disk_bytes_uncompressed\": {raw_disk_bytes},\n  \"disk_bytes_compressed\": {v2_disk_bytes},\n"
    );
    let _ = write!(
        json,
        "  \"disk_compressed_ratio\": {disk_ratio:.4},\n  \"resident_compressed_ratio\": {resident_ratio:.4},\n  \"compressed_warm_qps\": {cwarm_qps:.2}\n}}\n"
    );
    let path =
        std::env::var("CLIMBER_BENCH_JSON").unwrap_or_else(|_| "BENCH_cache.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&v2_dir).ok();

    if std::env::var("CLIMBER_BENCH_STRICT").as_deref() == Ok("1") {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        if cores > 1 {
            assert!(
                speedup >= 1.3,
                "warm cached QPS {warm_qps:.1} is only {speedup:.2}x uncached {uncached_qps:.1}, \
                 below the 1.3x floor"
            );
        } else {
            println!(
                "strict gate relaxed: single-core runner (warm {speedup:.2}x uncached) — the \
                 cache saves read+validate+decode work that shares the lone core with the scans"
            );
        }
    }
}
