//! Criterion microbenchmarks for the hot kernels: distance computation,
//! PAA, signature extraction, OD/WD, trie descent and the partition codec.
//! These are the per-record costs that dominate Step 4 of the build and
//! the refinement stage of every query.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use climber_core::dfs::format::{PartitionReader, PartitionWriter};
use climber_core::pivot::assignment::assign_group;
use climber_core::pivot::decay::DecayFunction;
use climber_core::pivot::distances::{overlap_distance, weight_distance};
use climber_core::pivot::pivots::PivotSet;
use climber_core::pivot::signature::{DualSignature, RankInsensitive, RankSensitive};
use climber_core::repr::isax::ISaxWord;
use climber_core::repr::paa::paa;
use climber_core::series::distance::{ed, ed_early_abandon, sq_ed};
use climber_core::series::gen::Domain;

fn bench_distances(c: &mut Criterion) {
    let ds = Domain::RandomWalk.generate(2, 1);
    let x = ds.get(0).to_vec();
    let y = ds.get(1).to_vec();
    let mut g = c.benchmark_group("distance");
    g.bench_function("sq_ed_256", |b| {
        b.iter(|| sq_ed(black_box(&x), black_box(&y)))
    });
    g.bench_function("ed_256", |b| b.iter(|| ed(black_box(&x), black_box(&y))));
    g.bench_function("ed_early_abandon_tight", |b| {
        b.iter(|| ed_early_abandon(black_box(&x), black_box(&y), 1.0))
    });
    g.finish();
}

fn bench_representations(c: &mut Criterion) {
    let ds = Domain::RandomWalk.generate(1, 2);
    let x = ds.get(0).to_vec();
    let mut g = c.benchmark_group("repr");
    g.bench_function("paa_256_to_16", |b| b.iter(|| paa(black_box(&x), 16)));
    g.bench_function("isax_word_16x8", |b| {
        b.iter(|| ISaxWord::from_series(black_box(&x), 16, 8))
    });
    g.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let ds = Domain::RandomWalk.generate(300, 3);
    let pivots = PivotSet::select_random(&ds, 16, 200, 4);
    let x = ds.get(0).to_vec();
    let mut g = c.benchmark_group("signature");
    g.bench_function("dual_signature_r200_m10", |b| {
        b.iter(|| DualSignature::extract(black_box(&x), &pivots, 16, 10))
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let a = RankInsensitive(vec![1, 5, 9, 13, 17, 21, 25, 29, 33, 37]);
    let bsig = RankInsensitive(vec![1, 4, 9, 14, 17, 22, 25, 30, 33, 38]);
    let x = RankSensitive(vec![9, 1, 17, 25, 33, 5, 13, 21, 29, 37]);
    let centroids: Vec<RankInsensitive> = (0..24u16)
        .map(|i| RankInsensitive((0..10).map(|j| i * 10 + j).collect()))
        .collect();
    let sig = DualSignature::from_sensitive(x.clone());
    let mut g = c.benchmark_group("metrics");
    g.bench_function("overlap_distance_m10", |b| {
        b.iter(|| overlap_distance(black_box(&a), black_box(&bsig)))
    });
    g.bench_function("weight_distance_m10", |b| {
        b.iter(|| weight_distance(black_box(&x), black_box(&a), DecayFunction::DEFAULT))
    });
    g.bench_function("assign_group_24_centroids", |b| {
        b.iter(|| assign_group(black_box(&centroids), &sig, DecayFunction::DEFAULT, 7))
    });
    g.finish();
}

fn bench_partition_codec(c: &mut Criterion) {
    let ds = Domain::RandomWalk.generate(1000, 5);
    let mut g = c.benchmark_group("partition");
    g.bench_function("encode_1000x256", |b| {
        b.iter_batched(
            || (),
            |_| {
                let mut w = PartitionWriter::new(1, 256);
                w.push_cluster(0, (0..1000u64).map(|i| (i, ds.get(i))));
                w.finish()
            },
            BatchSize::SmallInput,
        )
    });
    let mut w = PartitionWriter::new(1, 256);
    w.push_cluster(0, (0..1000u64).map(|i| (i, ds.get(i))));
    let bytes = w.finish();
    g.bench_function("decode_scan_1000x256", |b| {
        b.iter(|| {
            let r = PartitionReader::open(bytes.clone()).unwrap();
            let mut acc = 0.0f32;
            r.for_each(|_, vals| acc += vals[0]);
            acc
        })
    });
    g.finish();
}

fn bench_end_to_end_query(c: &mut Criterion) {
    use climber_core::{Climber, ClimberConfig};
    let ds = Domain::RandomWalk.generate(5_000, 6);
    let climber = Climber::build_in_memory(
        &ds,
        ClimberConfig::default()
            .with_paa_segments(16)
            .with_pivots(100)
            .with_prefix_len(10)
            .with_capacity(500)
            .with_alpha(0.2)
            .with_max_centroids(6)
            .with_seed(5),
    );
    let q = ds.get(99).to_vec();
    let mut g = c.benchmark_group("query");
    g.sample_size(20);
    g.bench_function("climber_knn_5k", |b| {
        b.iter(|| climber.knn(black_box(&q), 100))
    });
    g.bench_function("climber_adaptive4x_5k", |b| {
        b.iter(|| climber.knn_adaptive(black_box(&q), 100, 4))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_distances,
    bench_representations,
    bench_signatures,
    bench_metrics,
    bench_partition_codec,
    bench_end_to_end_query
);
criterion_main!(benches);
