//! Figure 7(c)+(d): query execution time and recall as the dataset grows
//! (RandomWalk, K = 500 in the paper; sizes 200 GB - 1 TB).
//!
//! Repo scaling: dataset sizes are fractions/multiples of `CLIMBER_N`.
//! The shape to reproduce: all indexed systems stay near-flat in query
//! time while Dss grows linearly; recall declines gently with size for
//! CLIMBER and stays far above the iSAX systems throughout.

use climber_bench::paper::FIG7D_RECALL_VS_SIZE;
use climber_bench::runner::{build_climber, build_dpisax, build_tardis, dataset, sweep, workload};
use climber_bench::table::{f3, ms, Table};
use climber_bench::{banner, default_k, default_n, default_queries, experiment_config, QUERY_SEED};
use climber_core::baselines::dss::dss_query;
use climber_core::series::gen::Domain;

fn main() {
    let base = default_n();
    let k = default_k();
    let nq = default_queries();
    banner(
        "Figure 7(c)+(d) — query time & recall vs dataset size (RandomWalk)",
        "paper: 200GB-1TB; shape: index query time ~flat, Dss linear; CLIMBER recall decays gently, stays highest",
    );

    // Five sizes standing in for 200..1000 GB.
    let sizes: Vec<usize> = [2, 4, 6, 8, 10].iter().map(|m| base * m / 4).collect();
    let mut table = Table::new(vec![
        "N",
        "system",
        "time(ms)",
        "recall",
        "paper-recall@size",
    ]);
    for (i, &n) in sizes.iter().enumerate() {
        let ds = dataset(Domain::RandomWalk, n);
        let (queries, truth) = workload(&ds, nq, k, QUERY_SEED);
        let cap = experiment_config(n).capacity;
        let paper = FIG7D_RECALL_VS_SIZE[i];

        let built = build_climber(&ds, experiment_config(n));
        let s = sweep(&ds, &queries, &truth, |q| {
            let o = built.climber.knn_adaptive(q, k, 4);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            n.to_string(),
            "CLIMBER-4X".into(),
            ms(s.secs),
            f3(s.recall),
            f3(paper.1),
        ]);

        let dp = build_dpisax(&ds, cap, 5);
        let s = sweep(&ds, &queries, &truth, |q| {
            let o = dp.index.query(&dp.store, q, k);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            n.to_string(),
            "DPiSAX".into(),
            ms(s.secs),
            f3(s.recall),
            f3(paper.2),
        ]);

        let td = build_tardis(&ds, cap, 7);
        let s = sweep(&ds, &queries, &truth, |q| {
            let o = td.index.query(&td.store, q, k);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            n.to_string(),
            "TARDIS".into(),
            ms(s.secs),
            f3(s.recall),
            f3(paper.3),
        ]);

        let s = sweep(&ds, &queries, &truth, |q| {
            let o = dss_query(built.climber.store(), q, k);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            n.to_string(),
            "Dss (exact)".into(),
            ms(s.secs),
            f3(s.recall),
            "1.000".into(),
        ]);
    }
    table.print();
    println!("\npaper-recall column: Figure 7(d) values at 200..1000GB (read off the chart).");
}
