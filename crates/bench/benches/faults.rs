//! Faults & recovery costs: what resilience charges at the margins.
//!
//! Three questions, one on-disk 4-shard set:
//!
//! 1. **Cold-open recovery time** — how much slower is a quarantining
//!    open of a damaged set than a strict open of a healthy one?
//! 2. **Scrub throughput** — how fast does [`ShardedClimber::scrub`]
//!    re-verify every committed partition checksum (MB/s)?
//! 3. **Degraded QPS** — with 1 of 4 shards quarantined (dead slot), what
//!    fraction of healthy batch throughput does the set still serve?
//!
//! Emits `BENCH_faults.json`. Scale with `CLIMBER_N` / `CLIMBER_QUERIES`,
//! or pass `--quick` for the CI smoke scale. Under
//! `CLIMBER_BENCH_STRICT=1` degraded QPS must stay >= 0.8x healthy —
//! losing a quarter of the data must never cost more than a fifth of the
//! throughput (the dead shard is skipped, not waited on).

use climber_bench::runner::dataset;
use climber_bench::table::{f2, Table};
use climber_bench::{default_k, env_usize, experiment_config, QUERY_SEED};
use climber_core::series::gen::{query_workload, Domain};
use climber_core::{RecoveryPolicy, SearchRequest, ShardedClimber};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Instant;

const SHARDS: usize = 4;

/// Total committed partition bytes under a set directory (scrub reads
/// every one of them).
fn partition_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    for shard in 0..SHARDS {
        let sub = dir.join(format!("shard-{shard:03}"));
        let Ok(entries) = fs::read_dir(&sub) else {
            continue;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            if entry.path().extension().is_some_and(|e| e == "clbp") {
                total += entry.metadata().map_or(0, |m| m.len());
            }
        }
    }
    total
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick {
        4_000
    } else {
        env_usize("CLIMBER_N", 20_000)
    };
    let total = env_usize("CLIMBER_QUERIES", if quick { 256 } else { 512 });
    let k = default_k();
    let reps = if quick { 2 } else { 3 };
    println!("==========================================================================");
    println!("Faults — recovery open, scrub throughput, degraded vs healthy QPS");
    println!("workload: {total} batched requests, K={k}, Adaptive-4X, best of {reps}");
    println!(
        "scale: N={n}, {SHARDS} shards{} (CLIMBER_N / CLIMBER_QUERIES)",
        if quick { " [--quick]" } else { "" }
    );
    println!("==========================================================================");

    let ds = dataset(Domain::RandomWalk, n);
    let config = experiment_config(n);
    let dir = std::env::temp_dir().join(format!("climber-bench-faults-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();

    let t = Instant::now();
    let built = ShardedClimber::build_on_disk(&ds, &dir, config, SHARDS).unwrap();
    let build_secs = t.elapsed().as_secs_f64();
    drop(built);
    println!("built {SHARDS}-shard on-disk set in {build_secs:.2}s");

    let qids = query_workload(&ds, total, QUERY_SEED);
    let requests: Vec<SearchRequest> = qids
        .iter()
        .map(|&q| SearchRequest::new(ds.get(q), k).adaptive(4))
        .collect();
    let best = |run: &dyn Fn() -> f64| {
        (0..reps)
            .map(|_| run())
            .min_by(f64::total_cmp)
            .expect("reps >= 1")
    };

    // 1a. Strict cold open of the healthy set.
    let healthy_open_secs = best(&|| {
        let t = Instant::now();
        let set = ShardedClimber::open(&dir).unwrap();
        let secs = t.elapsed().as_secs_f64();
        drop(set);
        secs
    });
    println!("healthy strict open: {:.1} ms", healthy_open_secs * 1e3);

    // 2. Scrub throughput over the healthy set.
    let bytes = partition_bytes(&dir);
    let mut set = ShardedClimber::open_rw(&dir).unwrap();
    let scrub_secs = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let report = set.scrub().unwrap();
            assert!(report.is_fully_healthy());
            t.elapsed().as_secs_f64()
        })
        .min_by(f64::total_cmp)
        .expect("reps >= 1");
    let scrub_mbps = bytes as f64 / 1e6 / scrub_secs;
    println!(
        "scrub: {:.1} MB of partitions in {:.1} ms -> {scrub_mbps:.1} MB/s",
        bytes as f64 / 1e6,
        scrub_secs * 1e3
    );

    // 3a. Healthy batch QPS.
    let healthy_secs = best(&|| {
        let t = Instant::now();
        let out = set.search_many(&requests);
        assert_eq!(out.len(), requests.len());
        t.elapsed().as_secs_f64()
    });
    let healthy_qps = total as f64 / healthy_secs;
    println!("healthy: {healthy_qps:.1} QPS");
    drop(set);

    // Quarantine shard 0 wholesale: destroy its manifest so the
    // recovering open leaves a dead slot (1 of 4 shards gone).
    let manifest = dir.join("shard-000").join(climber_core::MANIFEST_FILE);
    let manifest_bytes = fs::read(&manifest).unwrap();
    fs::remove_file(&manifest).unwrap();

    // 1b. Recovery cold open of the damaged set.
    let recovery_open_secs = best(&|| {
        let t = Instant::now();
        let (set, report) = ShardedClimber::open_with(&dir, RecoveryPolicy::Quarantine).unwrap();
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(report.dead_shards, vec![0]);
        drop(set);
        secs
    });
    println!(
        "recovery open (1 dead shard): {:.1} ms",
        recovery_open_secs * 1e3
    );

    // 3b. Degraded batch QPS with the dead slot in place.
    let (degraded_set, _) = ShardedClimber::open_with(&dir, RecoveryPolicy::Quarantine).unwrap();
    assert_eq!(degraded_set.health().dead_shards, 1);
    let degraded_secs = best(&|| {
        let t = Instant::now();
        let out = degraded_set.search_many(&requests);
        assert_eq!(out.len(), requests.len());
        t.elapsed().as_secs_f64()
    });
    let degraded_qps = total as f64 / degraded_secs;
    let ratio = degraded_qps / healthy_qps;
    println!("degraded (3/{SHARDS} shards): {degraded_qps:.1} QPS -> {ratio:.2}x healthy");
    drop(degraded_set);

    // Repair for good measure: the directory is left healthy behind us.
    fs::write(&manifest, &manifest_bytes).unwrap();

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["build_s".into(), f2(build_secs)]);
    table.row(vec!["healthy_open_ms".into(), f2(healthy_open_secs * 1e3)]);
    table.row(vec![
        "recovery_open_ms".into(),
        f2(recovery_open_secs * 1e3),
    ]);
    table.row(vec!["scrub_mb_per_s".into(), f2(scrub_mbps)]);
    table.row(vec!["healthy_qps".into(), f2(healthy_qps)]);
    table.row(vec!["degraded_qps".into(), f2(degraded_qps)]);
    table.row(vec!["degraded_over_healthy".into(), f2(ratio)]);
    table.print();

    // BENCH_*.json record (consumed by tooling; schema kept flat).
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"faults\",\n  \"n\": {n},\n  \"queries\": {total},\n  \"k\": {k},\n  \"shards\": {SHARDS},\n"
    );
    let _ = writeln!(json, "  \"build_secs\": {build_secs:.4},");
    let _ = write!(
        json,
        "  \"healthy_open_secs\": {healthy_open_secs:.6},\n  \"recovery_open_secs\": {recovery_open_secs:.6},\n"
    );
    let _ = write!(
        json,
        "  \"scrub_bytes\": {bytes},\n  \"scrub_secs\": {scrub_secs:.6},\n  \"scrub_mb_per_s\": {scrub_mbps:.2},\n"
    );
    let _ = write!(
        json,
        "  \"healthy_qps\": {healthy_qps:.2},\n  \"degraded_qps\": {degraded_qps:.2},\n  \"degraded_over_healthy\": {ratio:.4}\n}}\n"
    );
    let path =
        std::env::var("CLIMBER_BENCH_JSON").unwrap_or_else(|_| "BENCH_faults.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    fs::remove_dir_all(&dir).ok();

    if std::env::var("CLIMBER_BENCH_STRICT").as_deref() == Ok("1") {
        assert!(
            ratio >= 0.8,
            "degraded QPS {degraded_qps:.1} is {ratio:.2}x healthy {healthy_qps:.1}, below the 0.8x floor"
        );
    }
}
