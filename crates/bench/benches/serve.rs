//! Serving throughput: micro-batched `climber-serve` vs a sequential
//! (batch-of-one) server, measured over real TCP connections.
//!
//! A pool of closed-loop clients (each sends a request, waits for the
//! answer, repeats) drives two server configurations over the same
//! workload:
//!
//! * `sequential` — `max_batch = 1`, one worker: every request is its own
//!   batch, the per-query engine behind a socket; the baseline;
//! * `batched` — the default admission queue: concurrent in-flight
//!   requests coalesce into micro-batches, so partition opens and cluster
//!   decodes are shared across clients exactly like a hand-built
//!   `search_many` call.
//!
//! Emits `BENCH_serve.json`. Scale with `CLIMBER_N` / `CLIMBER_CLIENTS` /
//! `CLIMBER_SERVE_REQUESTS`, or pass `--quick` for the CI smoke scale.
//! Under `CLIMBER_BENCH_STRICT=1` the batched server must reach 1.5x the
//! sequential QPS on multi-core machines (1.0x on a single core, where
//! batching can only win by sharing I/O, not by parallelism).

use climber_bench::runner::{build_climber, dataset};
use climber_bench::table::{f2, Table};
use climber_bench::{default_k, env_usize, experiment_config, QUERY_SEED};
use climber_core::series::gen::{query_workload, Domain};
use climber_core::{Climber, SearchRequest};
use climber_serve::{ServeClient, ServeConfig, Server};
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// One measured server configuration.
struct Row {
    mode: &'static str,
    clients: usize,
    qps: f64,
    secs: f64,
    mean_batch: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// Drives `clients` closed-loop connections through a freshly started
/// server and reports sustained QPS plus the server's own latency stats.
fn run_mode(
    mode: &'static str,
    climber: &Arc<Climber>,
    config: ServeConfig,
    requests: &Arc<Vec<SearchRequest>>,
    clients: usize,
) -> Row {
    let server = Server::start(Arc::clone(climber), "127.0.0.1:0", config).expect("start server");
    let addr = server.local_addr();
    // All clients connect first, then start sending together.
    let barrier = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let requests = Arc::clone(requests);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                barrier.wait();
                // client c serves every clients-th request of the workload
                for req in requests.iter().skip(c).step_by(clients) {
                    client.search(req).expect("serve");
                }
            })
        })
        .collect();
    barrier.wait();
    let t = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    let secs = t.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    Row {
        mode,
        clients,
        qps: requests.len() as f64 / secs,
        secs,
        mean_batch: stats.mean_batch,
        p50_us: stats.p50_us,
        p95_us: stats.p95_us,
        p99_us: stats.p99_us,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick {
        4_000
    } else {
        env_usize("CLIMBER_N", 20_000)
    };
    let total = env_usize("CLIMBER_SERVE_REQUESTS", if quick { 1_024 } else { 2_048 });
    // Batch occupancy is capped by the number of in-flight requests, so
    // the client pool — not max_batch — decides how much decode sharing a
    // micro-batch can harvest; 32 closed-loop clients give ~30-deep
    // batches, enough for the sharing win to clear the serving overhead
    // even on one core.
    let clients = env_usize("CLIMBER_CLIENTS", 32);
    // The paper-default K: large answers scan many clusters per query, so
    // a micro-batch has real decode work to share. (A tiny K would measure
    // socket overhead, which batching cannot help.)
    let k = default_k();
    let cores = thread::available_parallelism().map_or(1, |p| p.get());
    println!("==========================================================================");
    println!("Serving throughput — micro-batched climber-serve vs a batch-of-one server");
    println!("workload: {total} requests, {clients} closed-loop clients, K={k}, Adaptive-4X");
    println!(
        "scale: N={n} cores={cores}{} (CLIMBER_N / CLIMBER_SERVE_REQUESTS / CLIMBER_CLIENTS)",
        if quick { " [--quick]" } else { "" }
    );
    println!("==========================================================================");

    let ds = dataset(Domain::RandomWalk, n);
    let built = build_climber(&ds, experiment_config(n));
    let climber = Arc::new(built.climber);
    println!("index: {n} series, built in {:.2}s", built.build_secs);

    let qids = query_workload(&ds, total, QUERY_SEED);
    let requests: Arc<Vec<SearchRequest>> = Arc::new(
        qids.iter()
            .map(|&q| SearchRequest::new(ds.get(q), k).adaptive(4))
            .collect(),
    );

    // Spot-check the serving guarantee before timing anything: one client,
    // served outcomes bit-identical to direct search.
    {
        let server = Server::start(Arc::clone(&climber), "127.0.0.1:0", ServeConfig::default())
            .expect("start server");
        let mut client = ServeClient::connect(server.local_addr()).expect("connect");
        for req in requests.iter().take(8) {
            assert_eq!(
                client.search(req).expect("serve"),
                climber.search(req),
                "served outcome diverged from direct search"
            );
        }
        server.shutdown();
        println!("equivalence check: served == direct on 8 requests");
    }

    let sequential_cfg = ServeConfig::default()
        .with_workers(1)
        .with_max_batch(1)
        .with_max_delay(Duration::ZERO);
    // Continuous batching: zero delay means the worker never idles waiting
    // for a fuller batch — it drains whatever accumulated while it was
    // executing the previous one. Closed-loop clients make deadline-based
    // coalescing lockstep (every round waits for the slowest client), so
    // this is the throughput-optimal operating point; max_delay matters
    // for open-loop traffic where arrivals don't depend on responses.
    let batched_cfg = ServeConfig::default()
        .with_max_batch(256)
        .with_max_delay(Duration::ZERO);

    // Loopback scheduling noise dwarfs sub-second runs; always keep the
    // best of two so one descheduled client thread can't sink a mode.
    let reps = 2;
    let best = |mode, cfg: ServeConfig| {
        (0..reps)
            .map(|_| run_mode(mode, &climber, cfg, &requests, clients))
            .min_by(|a, b| a.secs.total_cmp(&b.secs))
            .expect("reps >= 1")
    };
    let seq = best("sequential", sequential_cfg);
    let bat = best("batched", batched_cfg);

    let mut table = Table::new(vec![
        "mode", "clients", "QPS", "secs", "batch", "p50us", "p95us", "p99us",
    ]);
    for r in [&seq, &bat] {
        table.row(vec![
            r.mode.to_string(),
            r.clients.to_string(),
            f2(r.qps),
            f2(r.secs),
            f2(r.mean_batch),
            r.p50_us.to_string(),
            r.p95_us.to_string(),
            r.p99_us.to_string(),
        ]);
    }
    table.print();

    let speedup = bat.qps / seq.qps;
    let target = if cores > 1 { 1.5 } else { 1.0 };
    println!(
        "\nbatched {:.1} QPS vs sequential {:.1} QPS -> {speedup:.2}x \
         (target >= {target}x on {cores} core(s), mean batch {:.2})",
        bat.qps, seq.qps, bat.mean_batch
    );

    // BENCH_*.json record (consumed by tooling; schema kept flat).
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"serve\",\n  \"n\": {n},\n  \"requests\": {total},\n  \"clients\": {clients},\n  \"k\": {k},\n  \"cores\": {cores},\n  \"rows\": ["
    );
    for (i, r) in [&seq, &bat].iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"mode\": \"{}\", \"clients\": {}, \"qps\": {:.2}, \"secs\": {:.4}, \"mean_batch\": {:.2}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
            if i == 0 { "" } else { "," },
            r.mode,
            r.clients,
            r.qps,
            r.secs,
            r.mean_batch,
            r.p50_us,
            r.p95_us,
            r.p99_us
        );
    }
    let _ = write!(
        json,
        "\n  ],\n  \"speedup_batched_vs_sequential\": {speedup:.2}\n}}\n"
    );
    let path =
        std::env::var("CLIMBER_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if std::env::var("CLIMBER_BENCH_STRICT").as_deref() == Ok("1") {
        assert!(
            speedup >= target,
            "batched serving speedup {speedup:.2}x below the {target}x target on {cores} core(s)"
        );
    }
}
