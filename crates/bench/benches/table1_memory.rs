//! Table I: CLIMBER vs the in-memory engines (Odyssey-like exact,
//! HNSW standing in for ParlayANN) as data outgrows memory.
//!
//! The paper's cluster has ~850 GB usable memory; ParlayANN additionally
//! fits on a single node. ParlayANN hits X (cannot run) at 600 GB and
//! Odyssey at 1 TB while CLIMBER keeps serving from disk. Here the memory
//! budget is scaled so the same cliff appears inside the sweep: HNSW's X
//! arrives first (graph overhead on one node), Odyssey's second, CLIMBER
//! never.
//!
//! Shape to reproduce: Odyssey recall 1.0 and fastest queries while it
//! fits; HNSW slowest construction but sub-ms queries and ~0.9 recall;
//! CLIMBER the only system serving every size, with bounded query time
//! and gently declining recall.

use climber_bench::paper::{opt, TABLE1};
use climber_bench::runner::{build_climber, dataset, sweep, workload};
use climber_bench::table::{f3, Table};
use climber_bench::{banner, default_k, default_n, default_queries, experiment_config, QUERY_SEED};
use climber_core::baselines::hnsw::{HnswConfig, HnswIndex};
use climber_core::baselines::odyssey::{OdysseyConfig, OdysseyIndex};
use climber_core::series::gen::Domain;
use std::time::Instant;

fn main() {
    let base = default_n();
    let k = default_k();
    let nq = default_queries();
    banner(
        "Table I — CLIMBER vs in-memory systems (Odyssey, HNSW/ParlayANN)",
        "shape: in-memory engines win while data fits, then hit X; CLIMBER keeps serving",
    );

    // Sizes standing in for 200..1500 GB; memory budget scaled so the
    // cliffs land mid-sweep (HNSW first, Odyssey later), mirroring
    // ParlayANN's X at 600GB and Odyssey's at 1TB.
    let sizes: Vec<usize> = [2usize, 4, 6, 8, 10, 15]
        .iter()
        .map(|m| base * m / 4)
        .collect();
    let payload_per_series = 256 * 4; // RandomWalk record bytes
                                      // Budgets sit between consecutive sweep sizes so the X cells land at
                                      // the paper's positions: Odyssey X from the 5th size (1 TB analog),
                                      // HNSW X from the 3rd (600 GB analog, ParlayANN).
    let odyssey_budget = (sizes[3] * payload_per_series) as u64 * 9 / 8;
    let hnsw_budget = (sizes[1] * payload_per_series) as u64 * 3 / 2;

    let mut table = Table::new(vec![
        "N",
        "system",
        "I.C.T(s)",
        "Q.R.T(ms)",
        "recall",
        "paper(ICT,QRT,RR)",
    ]);
    let paper_sizes = [200u32, 400, 600, 800, 1000, 1500];
    for (i, &n) in sizes.iter().enumerate() {
        let ds = dataset(Domain::RandomWalk, n);
        let (queries, truth) = workload(&ds, nq, k, QUERY_SEED);
        let paper_size = paper_sizes[i];
        let paper_of = |system: &str| -> String {
            TABLE1
                .iter()
                .find(|&&(s, name, ..)| s == paper_size && name == system)
                .map(|&(_, _, ict, qrt, rr)| {
                    format!("{}, {}, {}", opt(ict, 0), opt(qrt, 1), opt(rr, 2))
                })
                .unwrap_or_else(|| "-".into())
        };

        // CLIMBER (always runs)
        let built = build_climber(&ds, experiment_config(n));
        let s = sweep(&ds, &queries, &truth, |q| {
            let o = built.climber.knn_adaptive(q, k, 4);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            n.to_string(),
            "CLIMBER".into(),
            format!("{:.2}", built.build_secs),
            format!("{:.2}", s.secs * 1000.0),
            f3(s.recall),
            paper_of("CLIMBER"),
        ]);

        // Odyssey-like exact engine under its budget
        let t = Instant::now();
        match OdysseyIndex::build(
            &ds,
            OdysseyConfig {
                memory_budget: Some(odyssey_budget),
                ..OdysseyConfig::default()
            },
        ) {
            Ok((ody, _)) => {
                let build = t.elapsed().as_secs_f64();
                let s = sweep(&ds, &queries, &truth, |q| {
                    let o = ody.query(&ds, q, k);
                    (o.results, o.records_scanned, o.partitions_opened)
                });
                table.row(vec![
                    n.to_string(),
                    "Odyssey".into(),
                    format!("{build:.2}"),
                    format!("{:.2}", s.secs * 1000.0),
                    f3(s.recall),
                    paper_of("Odyssey"),
                ]);
            }
            Err(_) => {
                table.row(vec![
                    n.to_string(),
                    "Odyssey".into(),
                    "X".into(),
                    "X".into(),
                    "X".into(),
                    paper_of("Odyssey"),
                ]);
            }
        }

        // HNSW under its (single-node) budget
        let t = Instant::now();
        match HnswIndex::build(
            &ds,
            HnswConfig {
                memory_budget: Some(hnsw_budget),
                ef_construction: 64,
                ..HnswConfig::default()
            },
        ) {
            Ok((hnsw, _)) => {
                let build = t.elapsed().as_secs_f64();
                let s = sweep(&ds, &queries, &truth, |q| {
                    let o = hnsw.query(&ds, q, k);
                    (o.results, o.records_scanned, o.partitions_opened)
                });
                table.row(vec![
                    n.to_string(),
                    "HNSW".into(),
                    format!("{build:.2}"),
                    format!("{:.2}", s.secs * 1000.0),
                    f3(s.recall),
                    paper_of("ParlayANN"),
                ]);
            }
            Err(_) => {
                table.row(vec![
                    n.to_string(),
                    "HNSW".into(),
                    "X".into(),
                    "X".into(),
                    "X".into(),
                    paper_of("ParlayANN"),
                ]);
            }
        }
    }
    table.print();
    println!(
        "\npaper column: Table I (I.C.T min, Q.R.T s, recall) at 200..1500GB; X = cannot run.\n\
         memory budgets here: HNSW {} MiB, Odyssey {} MiB (scaled to land the X cells mid-sweep).",
        hnsw_budget / (1 << 20),
        odyssey_budget / (1 << 20)
    );
}
