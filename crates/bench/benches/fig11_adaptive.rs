//! Figure 11(a)+(b): the adaptive variants under K pressure, and the
//! OD-Smallest trade-off.
//!
//! (a) For each query, let m be the size of the trie node CLIMBER-kNN
//! lands on; sweep K ∈ {m, 2m, 4m, 8m, 10m} and measure the recall boost
//! of Adaptive-2X/4X over plain kNN. Shape: boost grows with K/m, tens of
//! percent at 10m.
//!
//! (b) On DNA and EEG, compare OD-Smallest (scan all OD-tied groups) to
//! the three variants: it reads multiples of the data for a <10-25%
//! relative recall improvement — the evidence that trie-narrowing pays.

use climber_bench::paper::{FIG11A_BOOST, FIG11B_DNA, FIG11B_EEG};
use climber_bench::runner::{build_climber, dataset};
use climber_bench::table::{f2, f3, Table};
use climber_bench::{banner, default_n, default_queries, experiment_config, QUERY_SEED};
use climber_core::series::gen::{query_workload, Domain};
use climber_core::series::ground_truth::exact_knn;
use climber_core::series::recall::recall_of_results;

fn main() {
    let n = default_n();
    let nq = default_queries();
    banner(
        "Figure 11(a)+(b) — adaptive variants & the OD-Smallest trade-off",
        "shape: adaptive boost grows with K/m; OD-Smallest reads multiples of the data for bounded recall gain",
    );

    // ---------------- (a) recall boost vs K/m ----------------
    println!("\n(a) adaptive recall boost vs K pressure (RandomWalk):");
    let ds = dataset(Domain::RandomWalk, n);
    let built = build_climber(&ds, experiment_config(n));
    let queries = query_workload(&ds, nq, QUERY_SEED);
    let multiples = [1usize, 2, 4, 8, 10];
    let mut ta = Table::new(vec![
        "K/m",
        "kNN-recall",
        "boost-2X(%)",
        "boost-4X(%)",
        "paper-2X(%)",
        "paper-4X(%)",
    ]);
    for (i, &mult) in multiples.iter().enumerate() {
        let (mut rk, mut r2, mut r4) = (0.0, 0.0, 0.0);
        for &qid in &queries {
            let probe = built.climber.knn(ds.get(qid), 1);
            let m = probe.plan.primary_node_size.max(1) as usize;
            let k = (m * mult).clamp(1, n / 2);
            let exact = exact_knn(&ds, ds.get(qid), k);
            let nqf = queries.len() as f64;
            rk += recall_of_results(&built.climber.knn(ds.get(qid), k).results, &exact) / nqf;
            r2 += recall_of_results(
                &built.climber.knn_adaptive(ds.get(qid), k, 2).results,
                &exact,
            ) / nqf;
            r4 += recall_of_results(
                &built.climber.knn_adaptive(ds.get(qid), k, 4).results,
                &exact,
            ) / nqf;
        }
        let boost = |r: f64| if rk > 0.0 { 100.0 * (r - rk) / rk } else { 0.0 };
        let paper = FIG11A_BOOST[i];
        ta.row(vec![
            format!("{mult}m"),
            f3(rk),
            f2(boost(r2)),
            f2(boost(r4)),
            f2(paper.1),
            f2(paper.2),
        ]);
    }
    ta.print();

    // ---------------- (b) OD-Smallest relative scores ----------------
    for (domain, paper) in [(Domain::Dna, FIG11B_DNA), (Domain::Eeg, FIG11B_EEG)] {
        println!(
            "\n(b) OD-Smallest / variant relative scores ({}):",
            domain.name()
        );
        let ds = dataset(domain, n);
        // Paper geometry: each group spans many partitions, so a full
        // group scan reads a large multiple of a one-node query. Use a
        // finer partition capacity (n/40) with few groups to recreate it.
        let cfg = experiment_config(n)
            .with_capacity((n as u64 / 40).max(50))
            .with_max_centroids(5);
        let built = build_climber(&ds, cfg);
        let queries = query_workload(&ds, nq, QUERY_SEED ^ 1);
        let k = climber_bench::default_k();

        // measure each variant + OD-Smallest
        let mut acc: Vec<(f64, f64)> = Vec::new(); // (records, recall) per variant
        let mut ods_records = 0.0;
        let mut ods_recall = 0.0;
        for (vi, factor) in [(0usize, 0usize), (1, 2), (2, 4)] {
            let (mut recs, mut rec) = (0.0, 0.0);
            for &qid in &queries {
                let exact = exact_knn(&ds, ds.get(qid), k);
                let out = if factor == 0 {
                    built.climber.knn(ds.get(qid), k)
                } else {
                    built.climber.knn_adaptive(ds.get(qid), k, factor)
                };
                recs += out.records_scanned as f64 / queries.len() as f64;
                rec += recall_of_results(&out.results, &exact) / queries.len() as f64;
                if vi == 0 {
                    let o = built.climber.od_smallest(ds.get(qid), k);
                    ods_records += o.records_scanned as f64 / queries.len() as f64;
                    ods_recall += recall_of_results(&o.results, &exact) / queries.len() as f64;
                }
            }
            acc.push((recs, rec));
        }

        let mut tb = Table::new(vec![
            "variant",
            "access-ratio",
            "recall-ratio",
            "paper-access",
            "paper-recall",
        ]);
        for (i, name) in ["kNN", "Adapt-2X", "Adapt-4X"].iter().enumerate() {
            let (recs, rec) = acc[i];
            tb.row(vec![
                name.to_string(),
                f2(ods_records / recs.max(1.0)),
                f2(ods_recall / rec.max(1e-9)),
                f2(paper[i].1),
                f2(paper[i].2),
            ]);
        }
        tb.print();
    }
    println!("\npaper columns: Figure 11 values (charts; access/recall ratios of OD-Smallest over each variant).");
}
