//! Update throughput: the segmented index under a live mutation load.
//!
//! Measures four things the Lernaean Hydra evaluation calls out as the
//! operational gap of batch-built data-series indexes:
//!
//! * **append throughput** — O(record) delta-segment appends
//!   (`append_batch`: one routing pass, one grouped insertion) vs the
//!   pre-segment *rewrite path* (replicated here verbatim: decode the
//!   target partition, re-encode it with the record added — O(partition)
//!   per append). The strict gate requires the delta path to be ≥ 50×
//!   faster;
//! * **delete cost** — nanoseconds per tombstone;
//! * **ingest-while-query QPS** — the adaptive batch engine answering a
//!   fixed workload while appends land between batches, vs the same
//!   workload on the frozen index;
//! * **post-flush QPS delta** — how much folding the delta back into
//!   sealed partitions recovers.
//!
//! Emits `BENCH_updates.json`. Scale with `CLIMBER_N` /
//! `CLIMBER_UPDATES` / `CLIMBER_BATCH_QUERIES`, or `--quick` for the CI
//! smoke lane; `CLIMBER_BENCH_STRICT=1` enforces the 50× gate.

use climber_bench::runner::{build_climber, dataset};
use climber_bench::table::{f2, Table};
use climber_bench::{default_n, env_usize, experiment_config, QUERY_SEED};
use climber_core::dfs::format::PartitionWriter;
use climber_core::dfs::store::{MemStore, PartitionStore};
use climber_core::series::gen::{query_workload, Domain};
use climber_core::{BatchRequest, Climber};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// The pre-segment append: read-modify-rewrite of the whole target
/// partition (kept here as the measured baseline the delta segment
/// replaced).
fn append_rewrite(climber: &Climber<MemStore>, next_id: &mut u64, values: &[f32]) -> u64 {
    let id = *next_id;
    *next_id += 1;
    let placement = climber.skeleton().place(values, id);
    let store = climber.store();
    let reader = store.open(placement.partition).unwrap();
    let mut clusters: BTreeMap<u64, Vec<(u64, Vec<f32>)>> = BTreeMap::new();
    for node in reader.cluster_ids() {
        let mut recs = Vec::new();
        reader.for_each_in_cluster(node, |rid, vals| recs.push((rid, vals.to_vec())));
        clusters.insert(node, recs);
    }
    clusters
        .entry(placement.node)
        .or_default()
        .push((id, values.to_vec()));
    let mut writer = PartitionWriter::new(reader.group_id(), values.len());
    for (node, recs) in &clusters {
        writer.push_cluster(*node, recs.iter().map(|(rid, v)| (*rid, v.as_slice())));
    }
    store.put(placement.partition, writer.finish()).unwrap();
    id
}

fn qps_of(climber: &Climber<MemStore>, queries: &[Vec<f32>], k: usize) -> f64 {
    let t = Instant::now();
    for chunk in queries.chunks(64) {
        climber.batch(&BatchRequest::adaptive(chunk, k, 4));
    }
    queries.len() as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 3_000 } else { default_n() };
    let updates = env_usize("CLIMBER_UPDATES", if quick { 4_000 } else { 20_000 });
    let rewrite_samples = if quick { 60 } else { 200 };
    let nq = env_usize("CLIMBER_BATCH_QUERIES", if quick { 128 } else { 256 });
    let k = if quick { 10 } else { 100 };

    println!("==========================================================================");
    println!("Updates — segmented index: appends, deletes, ingest-while-query, flush");
    println!(
        "scale: N={n} updates={updates} queries={nq} K={k}{}",
        if quick { " [--quick]" } else { "" }
    );
    println!("==========================================================================");

    let ds = dataset(Domain::RandomWalk, n);
    // A seed distinct from the indexed dataset's, so no ingested record
    // duplicates a sealed one — the serving sanity check below must only
    // be satisfiable through the update path.
    let ingest = Domain::RandomWalk.generate(updates.max(rewrite_samples), 20_777);
    let qids = query_workload(&ds, nq, QUERY_SEED);
    let queries: Vec<Vec<f32>> = qids.iter().map(|&q| ds.get(q).to_vec()).collect();

    // --- baseline: the old O(partition) rewrite path --------------------
    let built = build_climber(&ds, experiment_config(n));
    let mut next_id = n as u64;
    let t = Instant::now();
    for i in 0..rewrite_samples {
        append_rewrite(&built.climber, &mut next_id, ingest.get(i as u64));
    }
    let rewrite_aps = rewrite_samples as f64 / t.elapsed().as_secs_f64();
    drop(built);

    // --- the segmented index --------------------------------------------
    let built = build_climber(&ds, experiment_config(n));
    let climber = &built.climber;
    println!(
        "index: {n} series, built in {:.2}s, {} partitions",
        built.build_secs,
        climber.store().len()
    );
    let qps_frozen = qps_of(climber, &queries, k);

    // delta appends, batched ingest
    let batches: Vec<Vec<Vec<f32>>> = (0..updates as u64)
        .map(|i| ingest.get(i).to_vec())
        .collect::<Vec<_>>()
        .chunks(256)
        .map(<[Vec<f32>]>::to_vec)
        .collect();
    let t = Instant::now();
    for b in &batches {
        climber.append_batch(b).unwrap();
    }
    let delta_aps = updates as f64 / t.elapsed().as_secs_f64();
    let speedup = delta_aps / rewrite_aps;

    // delete cost
    let deletes = (updates / 4).max(1) as u64;
    let t = Instant::now();
    for id in 0..deletes {
        climber.delete(n as u64 + id * 2).unwrap();
    }
    let delete_ns = t.elapsed().as_nanos() as f64 / deletes as f64;

    // QPS with the delta + tombstones resident (ingest-while-query: the
    // same fixed workload, answered between ingest batches)
    let qps_with_delta = qps_of(climber, &queries, k);

    // fold everything and measure the recovery
    let t = Instant::now();
    let report = climber.flush().unwrap();
    let flush_secs = t.elapsed().as_secs_f64();
    let qps_post_flush = qps_of(climber, &queries, k);
    let post_flush_delta = qps_post_flush / qps_with_delta;

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![
        "rewrite appends/s (old path)".to_string(),
        f2(rewrite_aps),
    ]);
    table.row(vec!["delta appends/s".to_string(), f2(delta_aps)]);
    table.row(vec!["append speedup".to_string(), format!("{speedup:.1}x")]);
    table.row(vec!["delete ns/op".to_string(), f2(delete_ns)]);
    table.row(vec!["QPS frozen index".to_string(), f2(qps_frozen)]);
    table.row(vec![
        "QPS with delta resident".to_string(),
        f2(qps_with_delta),
    ]);
    table.row(vec!["QPS post-flush".to_string(), f2(qps_post_flush)]);
    table.row(vec![
        "post-flush QPS delta".to_string(),
        format!("{post_flush_delta:.2}x"),
    ]);
    table.row(vec![
        "flush".to_string(),
        format!(
            "{:.2}s ({} partitions, {} folded)",
            flush_secs, report.partitions_rewritten, report.records_folded
        ),
    ]);
    table.print();

    // Sanity: an ingested record that was NOT deleted (the delete loop
    // tombstones even offsets only) must be served by id at distance 0 —
    // satisfiable only if the append/fold pipeline actually works.
    let probe = ingest.get(1).to_vec();
    let out = climber.knn(&probe, 1);
    assert_eq!(
        out.results[0],
        (n as u64 + 1, 0.0),
        "ingested record not findable"
    );
    // ... and a deleted ingested record must not be.
    let deleted_probe = ingest.get(0).to_vec();
    let out = climber.knn(&deleted_probe, 5);
    assert!(
        out.results.iter().all(|&(id, _)| id != n as u64),
        "tombstoned record served"
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"updates\",\n  \"n\": {n},\n  \"updates\": {updates},\n  \"queries\": {nq},\n  \"k\": {k},\n  \"rewrite_appends_per_sec\": {rewrite_aps:.2},\n  \"delta_appends_per_sec\": {delta_aps:.2},\n  \"append_speedup\": {speedup:.2},\n  \"delete_ns\": {delete_ns:.1},\n  \"qps_frozen\": {qps_frozen:.2},\n  \"qps_with_delta\": {qps_with_delta:.2},\n  \"qps_post_flush\": {qps_post_flush:.2},\n  \"post_flush_qps_delta\": {post_flush_delta:.3},\n  \"flush_secs\": {flush_secs:.3}\n}}\n"
    );
    let path =
        std::env::var("CLIMBER_BENCH_JSON").unwrap_or_else(|_| "BENCH_updates.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if std::env::var("CLIMBER_BENCH_STRICT").as_deref() == Ok("1") {
        assert!(
            speedup >= 50.0,
            "delta append speedup {speedup:.1}x below the 50x target"
        );
    }
}
