//! Throughput (QPS) of the batched partition-major engine vs the
//! sequential per-query engine.
//!
//! The Lernaean Hydra evaluation (Echihabi et al.) measures data-series
//! engines by *sustained query throughput*, not single-query latency. This
//! harness runs the same fixed query workload through every
//! batch-size × thread-count configuration and reports queries/second:
//!
//! * `batch=1 threads=1` — the sequential per-query engine, the baseline;
//! * larger batches — the partition-major engine: each partition selected
//!   by any query of a batch is opened once and each cluster decoded once
//!   for all its queries, so throughput rises even on a single core;
//! * more threads — partitions fan out across workers via the work-queue
//!   `rayon::scope`.
//!
//! Results are bit-identical across all configurations (asserted on a
//! sample at the end). Emits a `BENCH_throughput.json` record next to the
//! printed table; scale with `CLIMBER_N` / `CLIMBER_K` /
//! `CLIMBER_BATCH_QUERIES`, or pass `--quick` for the CI smoke scale.

use climber_bench::runner::{build_climber, dataset};
use climber_bench::table::{f2, Table};
use climber_bench::{default_k, default_n, env_usize, experiment_config, QUERY_SEED};
use climber_core::dfs::store::{MemStore, PartitionStore};
use climber_core::series::gen::{query_workload, Domain};
use climber_core::{BatchRequest, Climber, SearchRequest};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured configuration.
struct Row {
    batch: usize,
    threads: usize,
    qps: f64,
    secs: f64,
    sharing: f64,
}

/// The fixed query workload, in both shapes the engines accept: raw
/// queries for the batch engine and pre-built unified requests for the
/// sequential path (built outside the timed region).
struct Workload<'a> {
    queries: &'a [Vec<f32>],
    requests: &'a [SearchRequest],
    k: usize,
    factor: usize,
}

/// Runs a configuration `reps` times and keeps the fastest run (standard
/// benching practice: the minimum is the least noise-contaminated sample,
/// and every configuration gets the same treatment).
fn run_config_best(
    climber: &Climber<MemStore>,
    wl: &Workload<'_>,
    batch: usize,
    threads: usize,
    reps: usize,
) -> Row {
    (0..reps.max(1))
        .map(|_| run_config(climber, wl, batch, threads))
        .min_by(|a, b| a.secs.total_cmp(&b.secs))
        .expect("reps >= 1")
}

/// Runs the whole workload split into `batch`-sized requests on `threads`
/// workers; `batch == 1 && threads == 1` uses the sequential engine
/// (`Climber::search`).
fn run_config(climber: &Climber<MemStore>, wl: &Workload<'_>, batch: usize, threads: usize) -> Row {
    let t = Instant::now();
    let mut decoded = 0u64;
    let mut scanned = 0u64;
    if batch == 1 && threads == 1 {
        for req in wl.requests {
            let out = climber.search(req);
            decoded += out.records_scanned; // sequential decodes per query
            scanned += out.records_scanned;
        }
    } else {
        for chunk in wl.queries.chunks(batch) {
            let out = climber
                .batch(&BatchRequest::adaptive(chunk, wl.k, wl.factor).with_threads(threads));
            decoded += out.records_decoded;
            scanned += out.records_scanned;
        }
    }
    let secs = t.elapsed().as_secs_f64();
    Row {
        batch,
        threads,
        qps: wl.queries.len() as f64 / secs,
        secs,
        sharing: if decoded == 0 {
            1.0
        } else {
            scanned as f64 / decoded as f64
        },
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 4_000 } else { default_n() };
    let nq = env_usize("CLIMBER_BATCH_QUERIES", 256);
    let k = if quick { 10 } else { default_k() };
    let factor = 4;
    // Not the shared banner(): its scale line prints the CLIMBER_N /
    // CLIMBER_QUERIES / CLIMBER_K defaults, which --quick overrides —
    // print the parameters this run actually uses.
    println!("==========================================================================");
    println!("Throughput — batched partition-major execution (QPS)");
    println!("workload: fixed query set, Adaptive-{factor}X; grid: batch {{1,16,256}} x threads {{1,4,8}}");
    println!(
        "scale: N={n} queries={nq} K={k}{} (CLIMBER_N / CLIMBER_BATCH_QUERIES / CLIMBER_K)",
        if quick { " [--quick]" } else { "" }
    );
    println!("==========================================================================");

    let ds = dataset(Domain::RandomWalk, n);
    let built = build_climber(&ds, experiment_config(n));
    let climber = &built.climber;
    println!(
        "index: {n} series, built in {:.2}s, {} partitions",
        built.build_secs,
        climber.store().len()
    );

    let qids = query_workload(&ds, nq, QUERY_SEED);
    let queries: Vec<Vec<f32>> = qids.iter().map(|&q| ds.get(q).to_vec()).collect();
    // Pre-built unified requests for the sequential path, so the timed
    // region measures the engine, not request construction.
    let requests: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::new(q.clone(), k).adaptive(factor))
        .collect();

    let batches = [1usize, 16, 256];
    let threads = [1usize, 4, 8];
    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(vec![
        "batch", "threads", "QPS", "secs", "sharing", "speedup",
    ]);
    let wl = Workload {
        queries: &queries,
        requests: &requests,
        k,
        factor,
    };
    // Warm up caches so the 1×1 baseline is not penalised by first-touch.
    run_config(
        climber,
        &Workload {
            queries: &queries[..queries.len().min(8)],
            requests: &requests[..requests.len().min(8)],
            ..wl
        },
        1,
        1,
    );
    let mut baseline_qps = 0.0;
    for &b in &batches {
        for &t in &threads {
            if b == 1 && t > 1 && quick {
                continue; // single-query batches gain nothing on smoke runs
            }
            let row = run_config_best(climber, &wl, b, t, 3);
            if b == 1 && t == 1 {
                baseline_qps = row.qps;
            }
            table.row(vec![
                row.batch.to_string(),
                row.threads.to_string(),
                f2(row.qps),
                f2(row.secs),
                f2(row.sharing),
                format!("{:.2}x", row.qps / baseline_qps),
            ]);
            rows.push(row);
        }
    }
    table.print();

    let best = rows
        .iter()
        .find(|r| r.batch == 256 && r.threads == 8)
        .or_else(|| rows.last())
        .expect("at least one configuration ran");
    let speedup = best.qps / baseline_qps;
    println!(
        "\nbatch={} threads={}: {:.1} QPS vs sequential {:.1} QPS -> {speedup:.2}x (target >= 2x)",
        best.batch, best.threads, best.qps, baseline_qps
    );

    // The batched engine must return exactly what the sequential one does.
    let sample = &queries[..queries.len().min(16)];
    let out = climber.batch(&BatchRequest::adaptive(sample, k, factor).with_threads(8));
    for (req, got) in requests.iter().zip(&out.outcomes) {
        assert_eq!(got, &climber.search(req), "batch diverged");
    }
    println!(
        "equivalence check: batch == sequential on {} queries",
        sample.len()
    );

    // BENCH_*.json record (consumed by tooling; schema kept flat).
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"throughput\",\n  \"n\": {n},\n  \"queries\": {nq},\n  \"k\": {k},\n  \"strategy\": \"adaptive{factor}x\",\n  \"rows\": ["
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"batch\": {}, \"threads\": {}, \"qps\": {:.2}, \"secs\": {:.4}, \"sharing\": {:.2}}}",
            if i == 0 { "" } else { "," },
            r.batch,
            r.threads,
            r.qps,
            r.secs,
            r.sharing
        );
    }
    let _ = write!(
        json,
        "\n  ],\n  \"speedup_best_vs_sequential\": {speedup:.2}\n}}\n"
    );
    let path =
        std::env::var("CLIMBER_BENCH_JSON").unwrap_or_else(|_| "BENCH_throughput.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if std::env::var("CLIMBER_BENCH_STRICT").as_deref() == Ok("1") {
        assert!(
            speedup >= 2.0,
            "batched engine speedup {speedup:.2}x below the 2x target"
        );
    }
}
