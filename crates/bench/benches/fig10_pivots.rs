//! Figure 10(a)+(b): impact of the number of pivots on (a) the three
//! construction phases and (b) query recall across datasets.
//!
//! Shape to reproduce: (a) skeleton building barely moves with the pivot
//! count (it runs on a sample and truncates to the prefix), while full-data
//! conversion and re-distribution grow with it; (b) recall peaks in a
//! mid-range band of pivots — too few pivots give coarse groups, too many
//! re-introduce the curse of dimensionality (paper: 150-250 sweet spot).

use climber_bench::paper::FIG10B_RECALL_VS_PIVOTS;
use climber_bench::runner::{dataset, sweep, workload};
use climber_bench::table::{f2, f3, Table};
use climber_bench::{banner, default_k, default_n, default_queries, experiment_config, QUERY_SEED};
use climber_core::dfs::store::MemStore;
use climber_core::index::builder::IndexBuilder;
use climber_core::series::gen::Domain;
use climber_core::Climber;

fn main() {
    let n = default_n();
    let k = default_k();
    let nq = default_queries();
    banner(
        "Figure 10(a)+(b) — impact of the number of pivots",
        "paper: 200GB, K=500, pivots 50..350; shape: recall peaks mid-range; skeleton phase ~flat",
    );

    let pivot_counts = [50usize, 100, 150, 200, 250, 300, 350];

    // (a) construction phases on RandomWalk
    println!("\n(a) construction phases (RandomWalk):");
    let ds = dataset(Domain::RandomWalk, n);
    let mut ta = Table::new(vec![
        "pivots",
        "skeleton(s)",
        "conversion(s)",
        "redistribution(s)",
    ]);
    for &r in &pivot_counts {
        let cfg = experiment_config(n).with_pivots(r);
        let store = MemStore::new();
        let (_, report) = IndexBuilder::new(cfg).build(&ds, &store);
        ta.row(vec![
            r.to_string(),
            f2(report.skeleton_secs),
            f2(report.conversion_secs),
            f2(report.redistribution_secs),
        ]);
    }
    ta.print();

    // (b) recall per domain
    println!("\n(b) recall vs pivots:");
    let mut tb = Table::new(vec![
        "pivots",
        "RandomWalk",
        "TexMex",
        "EEG",
        "DNA",
        "paper-avg",
    ]);
    for (i, &r) in pivot_counts.iter().enumerate() {
        let mut cells = vec![r.to_string()];
        for domain in climber_bench::FIGURE_DOMAINS {
            let ds = dataset(domain, n);
            let cfg = experiment_config(n).with_pivots(r);
            let climber = Climber::build_in_memory(&ds, cfg);
            let (queries, truth) = workload(&ds, nq, k, QUERY_SEED);
            let s = sweep(&ds, &queries, &truth, |q| {
                let o = climber.knn_adaptive(q, k, 4);
                (o.results, o.records_scanned, o.partitions_opened)
            });
            cells.push(f3(s.recall));
        }
        cells.push(f3(FIG10B_RECALL_VS_PIVOTS[i].1));
        tb.row(cells);
    }
    tb.print();
    println!("\npaper-avg column: Figure 10(b), averaged over its four curves.");
}
