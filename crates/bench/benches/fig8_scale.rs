//! Figure 8(c)+(d): construction time and global index size vs dataset
//! size (RandomWalk).
//!
//! Shape to reproduce: all three systems grow **linearly** in build time
//! with the dataset; global index sizes stay small and grow sublinearly.

use climber_bench::runner::{build_climber, build_dpisax, build_tardis, dataset};
use climber_bench::table::{f2, kib, Table};
use climber_bench::{banner, default_n, experiment_config};
use climber_core::series::gen::Domain;

fn main() {
    let base = default_n();
    banner(
        "Figure 8(c)+(d) — construction time & index size vs dataset size",
        "paper: 200GB-1TB RandomWalk; shape: linear build-time growth for all systems",
    );

    let sizes: Vec<usize> = [2, 4, 6, 8, 10].iter().map(|m| base * m / 4).collect();
    let mut table = Table::new(vec!["N", "system", "build(s)", "index(KiB)"]);
    let mut climber_times = Vec::new();
    for &n in &sizes {
        let ds = dataset(Domain::RandomWalk, n);
        let cap = experiment_config(n).capacity;

        let c = build_climber(&ds, experiment_config(n));
        climber_times.push((n, c.build_secs));
        table.row(vec![
            n.to_string(),
            "CLIMBER".into(),
            f2(c.build_secs),
            kib(c.index_bytes),
        ]);
        let dp = build_dpisax(&ds, cap, 5);
        table.row(vec![
            n.to_string(),
            "DPiSAX".into(),
            f2(dp.build_secs),
            kib(dp.index_bytes),
        ]);
        let td = build_tardis(&ds, cap, 7);
        table.row(vec![
            n.to_string(),
            "TARDIS".into(),
            f2(td.build_secs),
            kib(td.index_bytes),
        ]);
    }
    table.print();

    // Linearity check: time(max)/time(min) ≈ N(max)/N(min).
    let (n0, t0) = climber_times[0];
    let (n4, t4) = climber_times[climber_times.len() - 1];
    println!(
        "\nlinearity (CLIMBER): sizes grew {:.1}x, build time grew {:.1}x (paper: linear, Fig 8(c))",
        n4 as f64 / n0 as f64,
        t4 / t0.max(1e-9)
    );
}
