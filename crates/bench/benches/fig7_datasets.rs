//! Figure 7(a)+(b): query execution time and recall across the four
//! evaluation datasets for CLIMBER, DPiSAX, TARDIS and Dss.
//!
//! Paper setting: 200 GB per dataset, K = 500, 50 queries. Repo setting:
//! `CLIMBER_N` series per dataset (default 20 000), K = `CLIMBER_K`.
//! The shape to reproduce: Dss is orders of magnitude slower with recall
//! 1.0; the three indexes are in the same time ballpark; CLIMBER's recall
//! is 25-35+ points above DPiSAX and TARDIS on every dataset.

use climber_bench::paper::FIG7B_RECALL;
use climber_bench::runner::{build_climber, build_dpisax, build_tardis, dataset, sweep, workload};
use climber_bench::table::{f3, ms, Table};
use climber_bench::{banner, default_k, default_n, default_queries, experiment_config, QUERY_SEED};
use climber_core::baselines::dss::dss_query;

fn main() {
    let n = default_n();
    let k = default_k();
    let nq = default_queries();
    banner(
        "Figure 7(a)+(b) — query time & recall per dataset",
        "paper: 200GB/dataset, K=500; shape: Dss exact but ~70x slower; CLIMBER recall >> DPiSAX/TARDIS",
    );

    let mut table = Table::new(vec![
        "dataset",
        "system",
        "time(ms)",
        "recall",
        "paper-recall",
    ]);
    for (domain, paper) in climber_bench::FIGURE_DOMAINS
        .iter()
        .zip(FIG7B_RECALL.iter())
    {
        let ds = dataset(*domain, n);
        let (queries, truth) = workload(&ds, nq, k, QUERY_SEED);
        let cap = experiment_config(n).capacity;

        let built = build_climber(&ds, experiment_config(n));
        let s = sweep(&ds, &queries, &truth, |q| {
            let o = built.climber.knn_adaptive(q, k, 4);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            domain.name().to_string(),
            "CLIMBER-4X".into(),
            ms(s.secs),
            f3(s.recall),
            f3(paper.1),
        ]);

        let dp = build_dpisax(&ds, cap, 5);
        let s = sweep(&ds, &queries, &truth, |q| {
            let o = dp.index.query(&dp.store, q, k);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            domain.name().to_string(),
            "DPiSAX".into(),
            ms(s.secs),
            f3(s.recall),
            f3(paper.2),
        ]);

        let td = build_tardis(&ds, cap, 7);
        let s = sweep(&ds, &queries, &truth, |q| {
            let o = td.index.query(&td.store, q, k);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            domain.name().to_string(),
            "TARDIS".into(),
            ms(s.secs),
            f3(s.recall),
            f3(paper.3),
        ]);

        let s = sweep(&ds, &queries, &truth, |q| {
            let o = dss_query(built.climber.store(), q, k);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        table.row(vec![
            domain.name().to_string(),
            "Dss (exact)".into(),
            ms(s.secs),
            f3(s.recall),
            f3(paper.4),
        ]);
    }
    table.print();
    println!("\npaper-recall column: Figure 7(b) values at 200GB (read off the chart).");
}
