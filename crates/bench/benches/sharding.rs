//! Scatter-gather scaling: a sharded index vs the single-index engine
//! over the identical workload.
//!
//! Builds one dataset, then measures build time and sustained batch QPS
//! for the single [`Climber`] and for [`ShardedClimber`] sets of 1, 2 and
//! 4 shards, each at 1 worker thread and at all available cores. Every
//! configuration answers the same requests with bit-identical outcomes
//! (spot-checked before timing), so the table isolates pure orchestration
//! cost: what the scatter, the shared cross-shard bound, and the k-way
//! merge add — and what shard-level parallelism buys back.
//!
//! Emits `BENCH_sharding.json`. Scale with `CLIMBER_N` /
//! `CLIMBER_QUERIES`, or pass `--quick` for the CI smoke scale. Under
//! `CLIMBER_BENCH_STRICT=1` the best sharded configuration must not lose
//! to the single index on one core (>= 1.0x), and must reach >= 1.3x on
//! multi-core machines, where independent shards scan in parallel.

use climber_bench::runner::{build_climber, dataset};
use climber_bench::table::{f2, Table};
use climber_bench::{default_k, env_usize, experiment_config, QUERY_SEED};
use climber_core::series::gen::{query_workload, Domain};
use climber_core::{SearchRequest, ShardedClimber};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured configuration.
struct Row {
    mode: String,
    shards: usize,
    threads: usize,
    build_secs: f64,
    qps: f64,
    secs: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick {
        4_000
    } else {
        env_usize("CLIMBER_N", 20_000)
    };
    let total = env_usize("CLIMBER_QUERIES", if quick { 256 } else { 512 });
    let k = default_k();
    let reps = if quick { 2 } else { 3 };
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("==========================================================================");
    println!("Sharding — scatter-gather ShardedClimber vs the single-index engine");
    println!("workload: {total} batched requests, K={k}, Adaptive-4X, best of {reps}");
    println!(
        "scale: N={n} cores={cores}{} (CLIMBER_N / CLIMBER_QUERIES)",
        if quick { " [--quick]" } else { "" }
    );
    println!("==========================================================================");

    let ds = dataset(Domain::RandomWalk, n);
    let config = experiment_config(n);
    let built = build_climber(&ds, config);
    let single = built.climber;

    let qids = query_workload(&ds, total, QUERY_SEED);
    let requests: Vec<SearchRequest> = qids
        .iter()
        .map(|&q| SearchRequest::new(ds.get(q), k).adaptive(4))
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    let time_qps = |run: &dyn Fn() -> Vec<climber_core::QueryOutcome>| {
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let out = run();
                assert_eq!(out.len(), requests.len());
                t.elapsed().as_secs_f64()
            })
            .min_by(f64::total_cmp)
            .expect("reps >= 1")
    };

    let secs = time_qps(&|| single.search_many(&requests));
    println!(
        "single index: built in {:.2}s, {:.1} QPS",
        built.build_secs,
        total as f64 / secs
    );
    rows.push(Row {
        mode: "single".into(),
        shards: 1,
        threads: 0,
        build_secs: built.build_secs,
        qps: total as f64 / secs,
        secs,
    });

    for shards in [1usize, 2, 4] {
        let t = Instant::now();
        let sharded = ShardedClimber::build_in_memory(&ds, config, shards);
        let build_secs = t.elapsed().as_secs_f64();
        // The bit-identity contract, spot-checked before timing anything.
        for req in requests.iter().take(4) {
            assert_eq!(
                sharded.search(req),
                single.search(req),
                "sharded outcome diverged from the single index"
            );
        }
        for threads in [1usize, 0] {
            let secs = time_qps(&|| sharded.search_many_with_threads(&requests, threads));
            println!(
                "sharded x{shards} @ {} thread(s): built in {build_secs:.2}s, {:.1} QPS",
                if threads == 0 { cores } else { threads },
                total as f64 / secs
            );
            rows.push(Row {
                mode: format!("sharded-{shards}"),
                shards,
                threads,
                build_secs,
                qps: total as f64 / secs,
                secs,
            });
        }
    }

    let mut table = Table::new(vec!["mode", "shards", "threads", "build_s", "QPS", "secs"]);
    for r in &rows {
        table.row(vec![
            r.mode.clone(),
            r.shards.to_string(),
            if r.threads == 0 {
                format!("{cores}")
            } else {
                r.threads.to_string()
            },
            f2(r.build_secs),
            f2(r.qps),
            f2(r.secs),
        ]);
    }
    table.print();

    let single_qps = rows[0].qps;
    let best = rows[1..]
        .iter()
        .max_by(|a, b| a.qps.total_cmp(&b.qps))
        .expect("sharded rows exist");
    let speedup = best.qps / single_qps;
    let target = if cores > 1 { 1.3 } else { 1.0 };
    println!(
        "\nbest sharded ({} @ {} thread(s)) {:.1} QPS vs single {:.1} QPS -> {speedup:.2}x \
         (target >= {target}x on {cores} core(s))",
        best.mode,
        if best.threads == 0 {
            cores
        } else {
            best.threads
        },
        best.qps,
        single_qps
    );

    // BENCH_*.json record (consumed by tooling; schema kept flat).
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"sharding\",\n  \"n\": {n},\n  \"queries\": {total},\n  \"k\": {k},\n  \"cores\": {cores},\n  \"rows\": ["
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"mode\": \"{}\", \"shards\": {}, \"threads\": {}, \"build_secs\": {:.4}, \"qps\": {:.2}, \"secs\": {:.4}}}",
            if i == 0 { "" } else { "," },
            r.mode,
            r.shards,
            r.threads,
            r.build_secs,
            r.qps,
            r.secs
        );
    }
    let _ = write!(
        json,
        "\n  ],\n  \"speedup_best_sharded_vs_single\": {speedup:.2}\n}}\n"
    );
    let path =
        std::env::var("CLIMBER_BENCH_JSON").unwrap_or_else(|_| "BENCH_sharding.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if std::env::var("CLIMBER_BENCH_STRICT").as_deref() == Ok("1") {
        assert!(
            speedup >= target,
            "best sharded speedup {speedup:.2}x below the {target}x target on {cores} core(s)"
        );
    }
}
