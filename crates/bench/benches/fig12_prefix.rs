//! Figure 12: impact of the prefix length m (paper: RandomWalk 400 GB,
//! K = 500, m ∈ {6..40}, everything reported relative to m = 10).
//!
//! Shape to reproduce: short prefixes (6-8) lose accuracy quickly; the
//! index size and construction time grow with m and the size growth
//! saturates; query time is flat until m gets large; recall peaks around
//! 10-20 then declines as the space over-fragments.

use climber_bench::paper::FIG12_PREFIX_RELATIVE;
use climber_bench::runner::{dataset, sweep, workload};
use climber_bench::table::{f2, Table};
use climber_bench::{banner, default_k, default_n, default_queries, experiment_config, QUERY_SEED};
use climber_core::dfs::store::MemStore;
use climber_core::index::builder::IndexBuilder;
use climber_core::series::gen::Domain;
use climber_core::Climber;
use climber_pivot::decay::DecayFunction;

fn main() {
    let n = default_n();
    let k = default_k();
    let nq = default_queries();
    banner(
        "Figure 12 — impact of the prefix length (relative to m = 10)",
        "paper shape: accuracy collapses below m=10, peaks 10-20, over-fragments at 25+; size/time grow with m",
    );
    // Optional decay ablation: CLIMBER_DECAY=linear switches Def. 9's decay.
    let decay = match std::env::var("CLIMBER_DECAY").as_deref() {
        Ok("linear") => DecayFunction::Linear,
        _ => DecayFunction::DEFAULT,
    };

    let prefixes = [6usize, 8, 10, 15, 20, 25, 30, 40];
    let ds = dataset(Domain::RandomWalk, n);
    let (queries, truth) = workload(&ds, nq, k, QUERY_SEED);

    struct Point {
        m: usize,
        index_bytes: f64,
        build_secs: f64,
        query_secs: f64,
        recall: f64,
    }
    let mut points = Vec::new();
    for &m in &prefixes {
        // The paper's index-size growth comes from the number of distinct
        // prefixes (groups + trie nodes) growing with m; leave the group
        // count to Algorithm 2's own stopping rules rather than the capped
        // geometry the other experiments use.
        let mut cfg = experiment_config(n).with_prefix_len(m).with_decay(decay);
        cfg.max_centroids = None;
        cfg.epsilon = (m / 5).max(1);
        let store = MemStore::new();
        let builder = IndexBuilder::new(cfg);
        let t = std::time::Instant::now();
        let (skeleton, report) = builder.build(&ds, &store);
        let build_secs = t.elapsed().as_secs_f64();
        let climber = Climber::from_parts(skeleton, store);
        let s = sweep(&ds, &queries, &truth, |q| {
            let o = climber.knn_adaptive(q, k, 4);
            (o.results, o.records_scanned, o.partitions_opened)
        });
        points.push(Point {
            m,
            index_bytes: report.skeleton_bytes as f64,
            build_secs,
            query_secs: s.secs,
            recall: s.recall,
        });
    }

    let reference = points
        .iter()
        .find(|p| p.m == 10)
        .expect("m=10 is in the sweep");
    let (rb, rt, rq, rr) = (
        reference.index_bytes,
        reference.build_secs,
        reference.query_secs,
        reference.recall,
    );
    println!(
        "\nreference point m=10: index {:.1} KiB, build {:.2}s, query {:.2}ms, recall {:.3}",
        rb / 1024.0,
        rt,
        rq * 1000.0,
        rr
    );
    let mut table = Table::new(vec![
        "prefix",
        "size-x",
        "build-x",
        "query-x",
        "recall-x",
        "paper(size,build,query,recall)",
    ]);
    for p in &points {
        let paper = FIG12_PREFIX_RELATIVE
            .iter()
            .find(|&&(m, ..)| m == p.m)
            .expect("paper row");
        table.row(vec![
            p.m.to_string(),
            f2(p.index_bytes / rb),
            f2(p.build_secs / rt),
            f2(p.query_secs / rq),
            f2(p.recall / rr.max(1e-9)),
            format!(
                "{:.2}, {:.2}, {:.2}, {:.2}",
                paper.1, paper.2, paper.3, paper.4
            ),
        ]);
    }
    table.print();
    println!("\n(paper reference at m=10: 2.5MB index, 91min build, 12.3s query, recall 0.71)");
}
