//! # climber-bench
//!
//! Shared machinery for the experiment harnesses that regenerate every
//! table and figure of the paper's evaluation (§VII). Each `benches/`
//! target is a standalone binary (`harness = false`) printing a
//! paper-vs-measured table; `cargo bench` runs them all.
//!
//! Scale knobs (environment variables):
//!
//! | variable           | default | meaning                              |
//! |--------------------|---------|--------------------------------------|
//! | `CLIMBER_N`        | 20000   | dataset size (series)               |
//! | `CLIMBER_QUERIES`  | 15      | queries averaged per point          |
//! | `CLIMBER_K`        | 100     | default answer size                 |
//! | `CLIMBER_CAPACITY` | 1000    | partition capacity (records)        |
//! | `CLIMBER_PIVOTS`   | 200     | pivot count                         |
//!
//! The paper ran 200 GB–1.5 TB datasets on a 2-node Spark cluster; the
//! defaults here reproduce the *shape* of each experiment in minutes on a
//! laptop. Every harness prints the scale it ran at.

pub mod paper;
pub mod runner;
pub mod table;

use climber_core::series::gen::Domain;
use climber_core::ClimberConfig;

/// Reads an integer environment knob with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Dataset size for experiments (`CLIMBER_N`).
pub fn default_n() -> usize {
    env_usize("CLIMBER_N", 20_000)
}

/// Queries averaged per measurement point (`CLIMBER_QUERIES`).
pub fn default_queries() -> usize {
    env_usize("CLIMBER_QUERIES", 15)
}

/// Default answer size `K` (`CLIMBER_K`).
pub fn default_k() -> usize {
    env_usize("CLIMBER_K", 100)
}

/// Default partition capacity (`CLIMBER_CAPACITY`).
pub fn default_capacity() -> u64 {
    env_usize("CLIMBER_CAPACITY", 1_000) as u64
}

/// Default pivot count (`CLIMBER_PIVOTS`).
pub fn default_pivots() -> usize {
    env_usize("CLIMBER_PIVOTS", 200)
}

/// The standard CLIMBER configuration for experiments at size `n`:
/// paper defaults (200 pivots, prefix 10) with the group count capped so
/// the two-level geometry matches the paper's (each group spans several
/// partitions; see DESIGN.md "Scaled defaults").
pub fn experiment_config(n: usize) -> ClimberConfig {
    let capacity = default_capacity().min((n as u64 / 8).max(50));
    let partitions = (n as u64 / capacity).max(1);
    ClimberConfig::default()
        .with_paa_segments(16)
        .with_pivots(default_pivots())
        .with_prefix_len(10)
        .with_capacity(capacity)
        // The paper samples 1% of 10^9 records — millions of series; at
        // repo scale the same trie fidelity needs a larger fraction.
        .with_alpha(0.25)
        .with_epsilon(2)
        .with_max_centroids(((partitions / 3).clamp(4, 24)) as usize)
        .with_seed(0xC11B)
}

/// Standard seed for dataset generation in experiments.
pub const DATA_SEED: u64 = 2024;

/// Standard seed for query workloads.
pub const QUERY_SEED: u64 = 4711;

/// Banner printed by every harness.
pub fn banner(figure: &str, detail: &str) {
    println!("==========================================================================");
    println!("{figure}");
    println!("{detail}");
    println!(
        "scale: N={} queries={} K={} capacity={} pivots={} (env-overridable)",
        default_n(),
        default_queries(),
        default_k(),
        default_capacity(),
        default_pivots()
    );
    println!("==========================================================================");
}

/// The domain order the paper's bar charts use.
pub const FIGURE_DOMAINS: [Domain; 4] =
    [Domain::RandomWalk, Domain::TexMex, Domain::Eeg, Domain::Dna];
