//! Experiment runner helpers: system construction, timed query sweeps and
//! recall measurement shared by all figure harnesses.

use climber_core::baselines::dpisax::{DpisaxConfig, DpisaxIndex};
use climber_core::baselines::tardis::{TardisConfig, TardisIndex};
use climber_core::dfs::store::{DiskStore, MemStore, PartitionStore};
use climber_core::series::dataset::Dataset;
use climber_core::series::gen::{query_workload, Domain};
use climber_core::series::ground_truth::exact_knn;
use climber_core::series::recall::recall_of_results;
use climber_core::{BuildOptions, Climber, ClimberConfig};
use std::path::PathBuf;
use std::time::Instant;

/// One measured query sweep: mean recall, mean wall time, mean records
/// scanned, mean partitions opened.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sweep {
    /// Mean recall against the exact answer.
    pub recall: f64,
    /// Mean per-query wall-clock seconds.
    pub secs: f64,
    /// Mean records compared.
    pub records: f64,
    /// Mean partitions opened.
    pub partitions: f64,
}

/// Runs `run` over every query, comparing against the exact `truth`.
pub fn sweep<F>(ds: &Dataset, queries: &[u64], truth: &[Vec<(u64, f64)>], mut run: F) -> Sweep
where
    F: FnMut(&[f32]) -> (Vec<(u64, f64)>, u64, usize),
{
    let mut out = Sweep::default();
    let nq = queries.len() as f64;
    for (i, &qid) in queries.iter().enumerate() {
        let t = Instant::now();
        let (results, records, partitions) = run(ds.get(qid));
        out.secs += t.elapsed().as_secs_f64() / nq;
        out.recall += recall_of_results(&results, &truth[i]) / nq;
        out.records += records as f64 / nq;
        out.partitions += partitions as f64 / nq;
    }
    out
}

/// Generates the standard workload + ground truth for a dataset.
pub fn workload(
    ds: &Dataset,
    queries: usize,
    k: usize,
    seed: u64,
) -> (Vec<u64>, Vec<Vec<(u64, f64)>>) {
    let qs = query_workload(ds, queries, seed);
    let truth: Vec<Vec<(u64, f64)>> = qs.iter().map(|&q| exact_knn(ds, ds.get(q), k)).collect();
    (qs, truth)
}

/// A fully built CLIMBER system plus its build metrics.
pub struct BuiltClimber {
    /// The index (in-memory store).
    pub climber: Climber<MemStore>,
    /// Build wall time in seconds.
    pub build_secs: f64,
    /// Global index size in bytes.
    pub index_bytes: usize,
}

/// Builds CLIMBER with the experiment configuration.
pub fn build_climber(ds: &Dataset, config: ClimberConfig) -> BuiltClimber {
    build_climber_with(
        ds,
        config,
        BuildOptions::default().with_threads(config.workers),
    )
}

/// Builds CLIMBER with explicit [`BuildOptions`] (thread count / block
/// size) — the entry point of the sequential-vs-parallel build comparison
/// in `fig8_index`.
pub fn build_climber_with(
    ds: &Dataset,
    config: ClimberConfig,
    options: BuildOptions,
) -> BuiltClimber {
    let t = Instant::now();
    let climber = Climber::build_in_memory_with(ds, config, options);
    let build_secs = t.elapsed().as_secs_f64();
    let index_bytes = climber.global_index_bytes();
    BuiltClimber {
        climber,
        build_secs,
        index_bytes,
    }
}

/// A persisted-and-reopened CLIMBER index with its cold-start cost.
pub struct ColdOpen {
    /// The reopened, manifest-validated, read-only index.
    pub climber: Climber<DiskStore>,
    /// Wall time of `Climber::save` (partition copy + checksums + manifest).
    pub save_secs: f64,
    /// Wall time of `Climber::open` (manifest + checksum validation +
    /// skeleton decode) — the serve process's cold-start latency.
    pub open_secs: f64,
    /// The index directory (caller removes it when done).
    pub dir: PathBuf,
}

/// Saves `climber` into a scratch directory and times a cold
/// [`Climber::open`] — the build/serve process-separation path.
pub fn cold_open<S: PartitionStore>(climber: &Climber<S>, tag: &str) -> ColdOpen {
    let dir = std::env::temp_dir().join(format!("climber-bench-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let t = Instant::now();
    climber.save(&dir).expect("save index");
    let save_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let reopened = Climber::open(&dir).expect("reopen index");
    let open_secs = t.elapsed().as_secs_f64();
    ColdOpen {
        climber: reopened,
        save_secs,
        open_secs,
        dir,
    }
}

/// A built DPiSAX system.
pub struct BuiltDpisax {
    /// The index.
    pub index: DpisaxIndex,
    /// Its partition store.
    pub store: MemStore,
    /// Build wall time in seconds.
    pub build_secs: f64,
    /// Global partition-table size in bytes.
    pub index_bytes: usize,
}

/// Builds the DPiSAX baseline with a capacity matching CLIMBER's.
pub fn build_dpisax(ds: &Dataset, capacity: u64, seed: u64) -> BuiltDpisax {
    let store = MemStore::new();
    let t = Instant::now();
    let (index, stats) = DpisaxIndex::build(
        ds,
        &store,
        DpisaxConfig {
            segments: 16,
            max_bits: 8,
            capacity,
            alpha: 0.1,
            seed,
        },
    );
    BuiltDpisax {
        index,
        store,
        build_secs: t.elapsed().as_secs_f64(),
        index_bytes: stats.index_bytes,
    }
}

/// A built TARDIS system.
pub struct BuiltTardis {
    /// The index.
    pub index: TardisIndex,
    /// Its partition store.
    pub store: MemStore,
    /// Build wall time in seconds.
    pub build_secs: f64,
    /// Global sigTree size in bytes.
    pub index_bytes: usize,
}

/// Builds the TARDIS baseline (short word, the sigTree preference).
pub fn build_tardis(ds: &Dataset, capacity: u64, seed: u64) -> BuiltTardis {
    let store = MemStore::new();
    let t = Instant::now();
    let (index, stats) = TardisIndex::build(
        ds,
        &store,
        TardisConfig {
            segments: 8,
            max_bits: 6,
            capacity,
            alpha: 0.1,
            seed,
        },
    );
    BuiltTardis {
        index,
        store,
        build_secs: t.elapsed().as_secs_f64(),
        index_bytes: stats.index_bytes,
    }
}

/// Generates the standard dataset for a domain at size `n`.
pub fn dataset(domain: Domain, n: usize) -> Dataset {
    domain.generate(n, crate::DATA_SEED)
}
