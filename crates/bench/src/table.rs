//! Minimal aligned-table printing for experiment output (no dependencies —
//! the harnesses print text that goes straight into EXPERIMENTS.md).

/// A simple column-aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cells[i].len());
                // right-align numbers-ish cells, left-align first column
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats milliseconds with 2 decimals.
pub fn ms(x: f64) -> String {
    format!("{:.2}", x * 1000.0)
}

/// Formats a byte count as KiB.
pub fn kib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(1.005), "1.00"); // rounding to even is fine
        assert_eq!(ms(0.0123), "12.30");
        assert_eq!(kib(2048), "2.0");
    }
}
