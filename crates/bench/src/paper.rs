//! The paper's reported numbers, transcribed from §VII's figures and
//! Table I, so every harness can print paper-vs-measured side by side.
//!
//! Values are read off the published charts (bar charts are approximate to
//! the grid resolution); Table I and the Figure 9(b) table are exact.

/// Figure 7(b): recall at 200 GB, K = 500, per dataset.
/// Rows: (dataset, CLIMBER, DPiSAX, TARDIS, Dss).
pub const FIG7B_RECALL: [(&str, f64, f64, f64, f64); 4] = [
    ("RandomWalk", 0.77, 0.10, 0.40, 1.0),
    ("TexMex", 0.80, 0.12, 0.42, 1.0),
    ("EEG", 0.78, 0.11, 0.40, 1.0),
    ("DNA", 0.75, 0.10, 0.38, 1.0),
];

/// Figure 7(d): recall vs dataset size (GB) on RandomWalk, K = 500.
/// Rows: (size GB, CLIMBER, DPiSAX, TARDIS).
pub const FIG7D_RECALL_VS_SIZE: [(u32, f64, f64, f64); 5] = [
    (200, 0.77, 0.10, 0.40),
    (400, 0.71, 0.10, 0.38),
    (600, 0.68, 0.09, 0.36),
    (800, 0.63, 0.09, 0.35),
    (1000, 0.62, 0.08, 0.33),
];

/// Figure 8(a): index construction time (minutes) at 200 GB.
/// Rows: (dataset, CLIMBER, DPiSAX, TARDIS).
pub const FIG8A_BUILD_MIN: [(&str, f64, f64, f64); 4] = [
    ("RandomWalk", 27.0, 160.0, 22.0),
    ("TexMex", 18.0, 110.0, 15.0),
    ("EEG", 26.0, 150.0, 21.0),
    ("DNA", 23.0, 130.0, 19.0),
];

/// Figure 8(b): global index size (MB) at 200 GB.
/// Rows: (dataset, CLIMBER, DPiSAX, TARDIS).
pub const FIG8B_INDEX_MB: [(&str, f64, f64, f64); 4] = [
    ("RandomWalk", 2.0, 1.0, 5.5),
    ("TexMex", 1.8, 0.9, 5.0),
    ("EEG", 2.0, 1.0, 5.5),
    ("DNA", 1.9, 1.0, 5.2),
];

/// Figure 9(a): recall vs K on RandomWalk 400 GB.
/// Rows: (K, CLIMBER-Adaptive-4X, CLIMBER-kNN, DPiSAX, TARDIS).
pub const FIG9A_RECALL_VS_K: [(usize, f64, f64, f64, f64); 5] = [
    (50, 0.72, 0.72, 0.10, 0.38),
    (100, 0.72, 0.72, 0.10, 0.38),
    (500, 0.71, 0.71, 0.10, 0.37),
    (1000, 0.70, 0.66, 0.09, 0.36),
    (2000, 0.69, 0.60, 0.09, 0.35),
];

/// Figure 9(b): query time (seconds) vs K on RandomWalk 400 GB (exact
/// table from the paper). Rows: (K, Dss, Adaptive-4X, Adaptive-2X, kNN,
/// TARDIS, DPiSAX).
pub const FIG9B_TIME_VS_K: [(usize, f64, f64, f64, f64, f64, f64); 5] = [
    (50, 862.0, 11.2, 11.2, 11.2, 10.2, 10.0),
    (100, 871.0, 12.0, 12.0, 12.0, 10.6, 10.7),
    (500, 876.0, 12.0, 12.0, 12.0, 11.0, 11.0),
    (1000, 877.0, 13.0, 12.4, 12.3, 11.2, 11.0),
    (2000, 881.0, 13.5, 12.7, 12.4, 11.3, 11.3),
];

/// Figure 10(b): recall vs number of pivots (200 GB, K = 500); the sweet
/// spot is 150-250 pivots. Rows: (pivots, recall averaged over datasets).
pub const FIG10B_RECALL_VS_PIVOTS: [(usize, f64); 7] = [
    (50, 0.55),
    (100, 0.68),
    (150, 0.75),
    (200, 0.78),
    (250, 0.76),
    (300, 0.70),
    (350, 0.65),
];

/// Figure 11(a): recall boost of the adaptive variants over plain kNN when
/// K is a multiple of the target node size m; bubbles give kNN's absolute
/// recall. Rows: (K/m, boost-2X %, boost-4X %, kNN absolute recall).
pub const FIG11A_BOOST: [(usize, f64, f64, f64); 5] = [
    (1, 0.0, 0.0, 0.76),
    (2, 4.0, 5.0, 0.73),
    (4, 10.0, 14.0, 0.56),
    (8, 22.0, 30.0, 0.51),
    (10, 28.0, 42.0, 0.47),
];

/// Figure 11(b): OD-Smallest relative to each variant (DNA dataset):
/// (variant, additional data access ×, recall improvement ×).
pub const FIG11B_DNA: [(&str, f64, f64); 3] = [
    ("kNN", 7.2, 1.23),
    ("Adapt-2X", 5.5, 1.09),
    ("Adapt-4X", 3.6, 1.08),
];

/// Figure 11(b), EEG dataset.
pub const FIG11B_EEG: [(&str, f64, f64); 3] = [
    ("kNN", 6.8, 1.21),
    ("Adapt-2X", 5.2, 1.13),
    ("Adapt-4X", 3.4, 1.06),
];

/// Figure 12: metrics relative to prefix length 10 (RandomWalk 400 GB,
/// K = 500). Rows: (prefix, index-size×, build-time×, query-time×,
/// recall×). Absolute reference scores at m=10: 2.5 MB, 91 min, 12.3 s,
/// recall 0.71.
pub const FIG12_PREFIX_RELATIVE: [(usize, f64, f64, f64, f64); 8] = [
    (6, 0.55, 0.80, 0.98, 0.75),
    (8, 0.80, 0.90, 0.99, 0.90),
    (10, 1.00, 1.00, 1.00, 1.00),
    (15, 1.60, 1.25, 1.00, 1.03),
    (20, 2.10, 1.55, 1.02, 1.04),
    (25, 2.40, 1.90, 1.10, 0.97),
    (30, 2.60, 2.40, 1.25, 0.92),
    (40, 2.70, 3.40, 1.55, 0.85),
];

/// Table I: CLIMBER vs Odyssey vs ParlayANN-HNSW.
/// Rows: (size GB, system, I.C.T minutes, Q.R.T seconds, recall);
/// `None` marks the paper's X cells (system cannot run).
pub type Table1Row = (u32, &'static str, Option<f64>, Option<f64>, Option<f64>);

/// The full Table I transcription.
pub const TABLE1: [Table1Row; 21] = [
    (200, "CLIMBER", Some(27.0), Some(13.0), Some(0.77)),
    (200, "Odyssey", Some(14.0), Some(0.7), Some(1.0)),
    (200, "ParlayANN", Some(218.0), Some(0.14), Some(0.92)),
    (400, "CLIMBER", Some(91.0), Some(12.3), Some(0.71)),
    (400, "Odyssey", Some(48.3), Some(1.4), Some(1.0)),
    (400, "ParlayANN", Some(776.0), Some(0.21), Some(0.92)),
    (600, "CLIMBER", Some(280.0), Some(13.1), Some(0.68)),
    (600, "Odyssey", Some(67.3), Some(1.6), Some(1.0)),
    (600, "ParlayANN", None, None, None),
    (800, "CLIMBER", Some(390.0), Some(14.0), Some(0.63)),
    (800, "Odyssey", Some(112.8), Some(2.0), Some(1.0)),
    (800, "ParlayANN", None, None, None),
    (1000, "CLIMBER", Some(576.0), Some(14.4), Some(0.62)),
    (1000, "Odyssey", None, None, None),
    (1000, "ParlayANN", None, None, None),
    (1500, "CLIMBER", Some(875.0), Some(17.2), Some(0.56)),
    (1500, "Odyssey", None, None, None),
    (1500, "ParlayANN", None, None, None),
    // sentinel rows so the array length is fixed; unused sizes
    (0, "-", None, None, None),
    (0, "-", None, None, None),
    (0, "-", None, None, None),
];

/// Formats an `Option<f64>` with `X` for the paper's out-of-memory cells.
pub fn opt(v: Option<f64>, decimals: usize) -> String {
    match v {
        Some(x) => format!("{x:.decimals$}"),
        None => "X".to_string(),
    }
}
