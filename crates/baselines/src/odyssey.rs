//! An Odyssey-like distributed in-memory **exact** engine (Chatzakis et
//! al., PVLDB 2023) for the Table I comparison.
//!
//! Odyssey answers kNN queries exactly over an in-memory iSAX tree with
//! lower-bound pruning. What Table I measures is: recall 1.0 always, very
//! fast in-memory queries, cheaper index construction than CLIMBER — and a
//! hard cliff when the dataset no longer fits in memory (the `X` cells).
//! This module reproduces those behaviours: a bulk-built whole-word
//! refinement iSAX tree over the in-memory dataset, best-first mindist
//! search with TopK pruning, and a configurable memory budget that fails
//! construction when exceeded.

use crate::BaselineOutcome;
use climber_repr::isax::{ISaxSymbol, ISaxWord};
use climber_repr::paa::paa;
use climber_series::dataset::Dataset;
use climber_series::distance::ed_early_abandon;
use climber_series::topk::TopK;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::time::Instant;

/// Odyssey-like engine parameters.
#[derive(Debug, Clone, Copy)]
pub struct OdysseyConfig {
    /// iSAX word length (PAA segments).
    pub segments: usize,
    /// Maximum bits per segment (tree depth bound).
    pub max_bits: u8,
    /// Leaf capacity in records.
    pub leaf_capacity: usize,
    /// Optional memory budget in bytes; construction fails when the
    /// dataset + index estimate exceeds it (Table I's `X` cells).
    pub memory_budget: Option<u64>,
}

impl Default for OdysseyConfig {
    fn default() -> Self {
        Self {
            segments: 16,
            max_bits: 8,
            leaf_capacity: 256,
            memory_budget: None,
        }
    }
}

#[derive(Debug)]
struct Node {
    /// Bits per segment of this node's label (root = 0).
    level: u8,
    /// Children keyed by `(level+1)`-bit whole-word symbols.
    children: BTreeMap<Vec<u16>, u32>,
    /// Record ids (leaves only).
    records: Vec<u64>,
}

/// Build statistics.
#[derive(Debug, Clone, Copy)]
pub struct OdysseyBuildStats {
    /// Construction wall time.
    pub build_secs: f64,
    /// Estimated resident memory (dataset + index).
    pub memory_bytes: u64,
    /// Number of tree nodes.
    pub num_nodes: usize,
}

/// Error returned when the memory budget is exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the build would need.
    pub required: u64,
    /// The configured budget.
    pub budget: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: need {} bytes, budget {} bytes",
            self.required, self.budget
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// The in-memory exact engine.
#[derive(Debug)]
pub struct OdysseyIndex {
    config: OdysseyConfig,
    nodes: Vec<Node>,
    series_len: usize,
}

impl OdysseyIndex {
    /// Builds the engine over `ds` (which must stay resident for queries).
    pub fn build(
        ds: &Dataset,
        config: OdysseyConfig,
    ) -> Result<(Self, OdysseyBuildStats), OutOfMemory> {
        assert!(ds.num_series() > 0, "cannot index an empty dataset");
        assert!(config.leaf_capacity > 0, "leaf capacity must be positive");
        let t0 = Instant::now();

        // The memory cliff must fire *before* paying the build cost, like a
        // real engine failing to load the dataset.
        let payload = ds.payload_bytes() as u64;
        if let Some(budget) = config.memory_budget {
            if payload > budget {
                return Err(OutOfMemory {
                    required: payload,
                    budget,
                });
            }
        }

        let words: Vec<ISaxWord> = (0..ds.num_series() as u64)
            .map(|id| ISaxWord::from_paa(&paa(ds.get(id), config.segments), config.max_bits))
            .collect();
        let mut index = OdysseyIndex {
            config,
            nodes: vec![Node {
                level: 0,
                children: BTreeMap::new(),
                records: Vec::new(),
            }],
            series_len: ds.series_len(),
        };
        let all_ids: Vec<u64> = (0..ds.num_series() as u64).collect();
        index.split(0, all_ids, &words);

        let memory_bytes = payload + index.index_bytes();
        if let Some(budget) = config.memory_budget {
            if memory_bytes > budget {
                return Err(OutOfMemory {
                    required: memory_bytes,
                    budget,
                });
            }
        }
        let stats = OdysseyBuildStats {
            build_secs: t0.elapsed().as_secs_f64(),
            memory_bytes,
            num_nodes: index.nodes.len(),
        };
        Ok((index, stats))
    }

    fn split(&mut self, idx: u32, ids: Vec<u64>, words: &[ISaxWord]) {
        let level = self.nodes[idx as usize].level;
        if ids.len() <= self.config.leaf_capacity || level >= self.config.max_bits {
            self.nodes[idx as usize].records = ids;
            return;
        }
        let next = level + 1;
        let mut groups: BTreeMap<Vec<u16>, Vec<u64>> = BTreeMap::new();
        for id in ids {
            groups
                .entry(reduced(&words[id as usize], next))
                .or_default()
                .push(id);
        }
        // A single populated child produces a unary chain; chains are
        // bounded by max_bits and keep the level bookkeeping trivial.
        let mut children = BTreeMap::new();
        for (key, members) in groups {
            let child_idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                level: next,
                children: BTreeMap::new(),
                records: Vec::new(),
            });
            children.insert(key, child_idx);
            self.split(child_idx, members, words);
        }
        self.nodes[idx as usize].children = children;
    }

    /// Tree size estimate in bytes.
    pub fn index_bytes(&self) -> u64 {
        let w = self.config.segments as u64;
        self.nodes
            .iter()
            .map(|n| 16 + n.records.len() as u64 * 8 + n.children.len() as u64 * (2 * w + 4))
            .sum()
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Exact kNN by best-first mindist search (recall is 1.0 by
    /// construction: a subtree is pruned only when its lower bound exceeds
    /// the current k-th distance).
    pub fn query(&self, ds: &Dataset, query: &[f32], k: usize) -> BaselineOutcome {
        assert!(k > 0, "k must be positive");
        assert_eq!(query.len(), self.series_len, "query length mismatch");
        let qpaa = paa(query, self.config.segments);
        let n = self.series_len;

        let mut top = TopK::new(k);
        let mut scanned = 0u64;
        // min-heap over (mindist², node)
        let mut heap: BinaryHeap<(Reverse<OrderedF64>, u32)> = BinaryHeap::new();
        heap.push((Reverse(OrderedF64(0.0)), 0));
        while let Some((Reverse(OrderedF64(lb)), idx)) = heap.pop() {
            if lb > top.bound() {
                break; // everything remaining is provably farther
            }
            let node = &self.nodes[idx as usize];
            if node.children.is_empty() {
                for &id in &node.records {
                    scanned += 1;
                    if let Some(d) = ed_early_abandon(query, ds.get(id), top.bound()) {
                        top.offer(id, d);
                    }
                }
            } else {
                for (key, &child) in &node.children {
                    let md = label_mindist(key, node.level + 1, &qpaa, n);
                    let md2 = md * md;
                    if md2 <= top.bound() {
                        heap.push((Reverse(OrderedF64(md2)), child));
                    }
                }
            }
        }
        BaselineOutcome {
            results: top.into_sorted(),
            records_scanned: scanned,
            partitions_opened: 0,
        }
    }
}

fn reduced(word: &ISaxWord, bits: u8) -> Vec<u16> {
    word.symbols
        .iter()
        .map(|s| s.reduce_to(bits).symbol)
        .collect()
}

fn label_mindist(symbols: &[u16], bits: u8, qpaa: &[f64], n: usize) -> f64 {
    let word = ISaxWord {
        symbols: symbols.iter().map(|&s| ISaxSymbol::new(s, bits)).collect(),
    };
    word.mindist(qpaa, n)
}

/// f64 wrapper with total order for the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_series::gen::Domain;
    use climber_series::ground_truth::exact_knn;

    fn cfg() -> OdysseyConfig {
        OdysseyConfig {
            segments: 8,
            max_bits: 6,
            leaf_capacity: 32,
            memory_budget: None,
        }
    }

    #[test]
    fn queries_are_exact() {
        let ds = Domain::RandomWalk.generate(500, 43);
        let (index, _) = OdysseyIndex::build(&ds, cfg()).unwrap();
        for qid in [0u64, 123, 499] {
            let got = index.query(&ds, ds.get(qid), 10);
            let want = exact_knn(&ds, ds.get(qid), 10);
            assert_eq!(got.results, want, "query {qid}");
        }
    }

    #[test]
    fn exact_across_domains() {
        for d in Domain::ALL {
            let ds = d.generate(200, 45);
            let (index, _) = OdysseyIndex::build(&ds, cfg()).unwrap();
            let got = index.query(&ds, ds.get(7), 5);
            let want = exact_knn(&ds, ds.get(7), 5);
            assert_eq!(got.results, want, "domain {}", d.name());
        }
    }

    #[test]
    fn pruning_skips_records() {
        // mindist pruning must avoid scanning the entire dataset for most
        // queries. Random-walk series are the canonical iSAX-friendly
        // workload: their segment means carry real signal, so the lower
        // bounds bite. (SIFT-like descriptors are a known worst case —
        // i.i.d. per-dimension structure washes out under coarse PAA and
        // every mindist collapses toward zero, scanning everything.)
        let ds = Domain::RandomWalk.generate(2000, 47);
        let (index, _) = OdysseyIndex::build(&ds, cfg()).unwrap();
        let mut total = 0u64;
        for qid in (0..10u64).map(|i| i * 199) {
            total += index.query(&ds, ds.get(qid), 10).records_scanned;
        }
        assert!(
            total < 10 * 2000,
            "no pruning happened: {total} records scanned"
        );
    }

    #[test]
    fn memory_budget_cliff() {
        let ds = Domain::Eeg.generate(300, 49);
        let payload = ds.payload_bytes() as u64;
        // generous budget: builds
        let ok = OdysseyIndex::build(
            &ds,
            OdysseyConfig {
                memory_budget: Some(payload * 4),
                ..cfg()
            },
        );
        assert!(ok.is_ok());
        // tight budget: fails with OutOfMemory
        let err = OdysseyIndex::build(
            &ds,
            OdysseyConfig {
                memory_budget: Some(payload / 2),
                ..cfg()
            },
        )
        .unwrap_err();
        assert!(err.required > err.budget);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn stats_are_populated() {
        let ds = Domain::Dna.generate(300, 51);
        let (index, stats) = OdysseyIndex::build(&ds, cfg()).unwrap();
        assert!(stats.memory_bytes >= ds.payload_bytes() as u64);
        assert_eq!(stats.num_nodes, index.num_nodes());
        assert!(stats.num_nodes > 1);
    }

    #[test]
    fn k_larger_than_leaf_capacity() {
        let ds = Domain::RandomWalk.generate(300, 53);
        let (index, _) = OdysseyIndex::build(&ds, cfg()).unwrap();
        let got = index.query(&ds, ds.get(0), 100);
        let want = exact_knn(&ds, ds.get(0), 100);
        assert_eq!(got.results, want);
    }
}
