//! Dss: the distributed sequential scan (§VII-A).
//!
//! "The vanilla full scan solution that scans all data partitions in
//! parallel to generate the exact answer set." Used both as the ground
//! truth and as the exorbitant-cost baseline in Figures 7 and 9.

use crate::BaselineOutcome;
use climber_dfs::store::PartitionStore;
use climber_series::distance::ed_early_abandon;
use climber_series::topk::TopK;
use rayon::prelude::*;

/// Scans every partition of `store` in parallel, returning the exact
/// top-`k` by squared ED.
///
/// # Panics
/// If `k == 0`.
pub fn dss_query<S: PartitionStore>(store: &S, query: &[f32], k: usize) -> BaselineOutcome {
    assert!(k > 0, "k must be positive");
    let ids = store.ids();
    let partials: Vec<(TopK, u64)> = ids
        .par_iter()
        .map(|&pid| {
            let mut top = TopK::new(k);
            let mut scanned = 0u64;
            if let Ok(reader) = store.open(pid) {
                let bytes: usize = reader
                    .cluster_ids()
                    .iter()
                    .filter_map(|&n| reader.cluster_bytes(n))
                    .sum();
                scanned += reader.for_each(|id, vals| {
                    if let Some(d) = ed_early_abandon(query, vals, top.bound()) {
                        top.offer(id, d);
                    }
                });
                store.stats().on_read(bytes as u64);
                store.stats().on_records_read(scanned);
            }
            (top, scanned)
        })
        .collect();
    let mut merged = TopK::new(k);
    let mut records_scanned = 0;
    for (t, s) in partials {
        merged.merge(t);
        records_scanned += s;
    }
    BaselineOutcome {
        results: merged.into_sorted(),
        records_scanned,
        partitions_opened: ids.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_dfs::sample::scatter_dataset;
    use climber_dfs::store::MemStore;
    use climber_series::gen::Domain;
    use climber_series::ground_truth::exact_knn;

    #[test]
    fn dss_matches_exact_ground_truth() {
        let ds = Domain::RandomWalk.generate(300, 3);
        let store = MemStore::new();
        scatter_dataset(&store, &ds, 7);
        for qid in [0u64, 100, 299] {
            let out = dss_query(&store, ds.get(qid), 10);
            let exact = exact_knn(&ds, ds.get(qid), 10);
            assert_eq!(out.results, exact, "query {qid}");
        }
    }

    #[test]
    fn dss_scans_everything() {
        let ds = Domain::Eeg.generate(120, 5);
        let store = MemStore::new();
        scatter_dataset(&store, &ds, 4);
        let out = dss_query(&store, ds.get(0), 5);
        assert_eq!(out.records_scanned, 120);
        assert_eq!(out.partitions_opened, 4);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let store = MemStore::new();
        dss_query(&store, &[0.0; 8], 0);
    }
}
